//! Cost of the Algorithm 1 building blocks: the ~250-counter correlation
//! matrix (step 1), one per-machine lasso (step 3), and one stepwise
//! elimination (step 4) — the three fits the selection pipeline repeats
//! across machines and workloads.

use chaos_core::dataset::pooled_dataset;
use chaos_core::features::FeatureSpec;
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stats::corr::correlation_matrix;
use chaos_stats::lasso::{lambda_max, LassoConfig, LassoFit};
use chaos_stats::stepwise::{backward_eliminate, StepwiseConfig};
use chaos_stats::Matrix;
use chaos_workloads::{SimConfig, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn traces() -> (Vec<RunTrace>, CounterCatalog) {
    let cluster = Cluster::homogeneous(Platform::Core2, 3, 1);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let traces = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), r).unwrap())
        .collect();
    (traces, catalog)
}

fn candidate_matrix(
    traces: &[RunTrace],
    catalog: &CounterCatalog,
    rows: usize,
) -> (Matrix, Vec<f64>) {
    let spec = FeatureSpec::new((0..catalog.len()).collect());
    let ds = pooled_dataset(traces, &spec).unwrap().thinned(rows);
    (ds.x, ds.y)
}

fn bench_correlation_matrix(c: &mut Criterion) {
    let (traces, catalog) = traces();
    let (x, _) = candidate_matrix(&traces, &catalog, 1_000);
    let mut group = c.benchmark_group("selection_steps");
    group.sample_size(10);
    group.bench_function("step1_correlation_250x250", |b| {
        b.iter(|| correlation_matrix(std::hint::black_box(&x)).unwrap())
    });
    group.finish();
}

fn bench_lasso(c: &mut Criterion) {
    let (traces, catalog) = traces();
    let (x, y) = candidate_matrix(&traces, &catalog, 1_000);
    // Use the first 120 live-ish columns as the post-step-2 candidate set.
    let cols: Vec<usize> = (0..120.min(x.cols())).collect();
    let xs = x.select_cols(&cols);
    let lmax = lambda_max(&xs, &y).unwrap();
    let cfg = LassoConfig {
        lambda: 0.02 * lmax,
        ..LassoConfig::default()
    };
    let mut group = c.benchmark_group("selection_steps");
    group.sample_size(10);
    group.bench_function("step3_lasso_1000x120", |b| {
        b.iter(|| LassoFit::fit(std::hint::black_box(&xs), &y, &cfg).unwrap())
    });
    group.finish();
}

fn bench_stepwise(c: &mut Criterion) {
    let (traces, catalog) = traces();
    let (x, y) = candidate_matrix(&traces, &catalog, 1_000);
    let cols: Vec<usize> = (0..24.min(x.cols())).collect();
    let xs = x.select_cols(&cols);
    let cfg = StepwiseConfig::default();
    let mut group = c.benchmark_group("selection_steps");
    group.sample_size(10);
    group.bench_function("step4_stepwise_1000x24", |b| {
        b.iter(|| backward_eliminate(std::hint::black_box(&xs), &y, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_correlation_matrix,
    bench_lasso,
    bench_stepwise
);
criterion_main!(benches);
