//! Fitting cost of the four modeling techniques (Section IV-B) on a
//! realistic training-fold-sized dataset.
//!
//! The paper trains on sets roughly ten times smaller than the test data;
//! these benches use a 1,500 × 8 design, the same shape the sweep
//! harness feeds the estimators.

use chaos_core::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_stats::Matrix;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn training_fold(n: usize, p: usize) -> (Matrix, Vec<f64>) {
    let det = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract();
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let util = det(i * 7 + 1);
        let freq = 1600.0 + 700.0 * (det(i * 13 + 2) * 3.0).floor().clamp(0.0, 2.0) / 2.0;
        let mut row = vec![100.0 * util, freq];
        for j in 2..p {
            row.push(det(i * p + j) * 1e4);
        }
        let power = 135.0 + 40.0 * util * (freq / 2300.0).powi(2) + 5.0 * det(i * 31 + 3);
        rows.push(row);
        y.push(power);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn bench_fits(c: &mut Criterion) {
    let (x, y) = training_fold(1_500, 8);
    let opts = FitOptions::fast().with_freq_column(Some(1));
    let mut group = c.benchmark_group("model_fit_1500x8");
    group.sample_size(10);
    for technique in ModelTechnique::ALL {
        group.bench_function(technique.name(), |b| {
            b.iter_batched(
                || (x.clone(), y.clone()),
                |(x, y)| FittedModel::fit(technique, &x, &y, &opts).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_fit_scaling(c: &mut Criterion) {
    // How fitting cost grows with the training-set size (the paper's
    // "training and model building requires up to 2 hours" is dominated
    // by collection, not fitting).
    let opts = FitOptions::fast().with_freq_column(Some(1));
    let mut group = c.benchmark_group("quadratic_fit_scaling");
    group.sample_size(10);
    for n in [500usize, 1_500, 3_000] {
        let (x, y) = training_fold(n, 8);
        group.bench_function(format!("n={n}"), |b| {
            b.iter_batched(
                || (x.clone(), y.clone()),
                |(x, y)| FittedModel::fit(ModelTechnique::Quadratic, &x, &y, &opts).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fits, bench_fit_scaling);
criterion_main!(benches);
