//! The paper's overhead claim: "less than 1% CPU utilization on a
//! mobile-class processor" for online power modeling.
//!
//! At a 1 Hz sampling rate, 1% of the budget is 10 ms per sample. These
//! benches measure the two per-second costs of a deployed CHAOS agent —
//! producing the counter readings and evaluating the model — which land
//! orders of magnitude below that bound.

use chaos_core::dataset::pooled_dataset;
use chaos_core::features::FeatureSpec;
use chaos_core::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog, CounterSynth};
use chaos_sim::{Cluster, Platform, ResourceDemand};
use chaos_workloads::{SimConfig, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn trained_model(technique: ModelTechnique) -> (FittedModel, FeatureSpec, CounterCatalog) {
    let platform = Platform::Core2;
    let cluster = Cluster::homogeneous(platform, 3, 1);
    let catalog = CounterCatalog::for_platform(&platform.spec());
    let train: Vec<_> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), r).unwrap())
        .collect();
    let spec = FeatureSpec::general(&catalog);
    let ds = pooled_dataset(&train, &spec).unwrap().thinned(1_000);
    let opts = FitOptions::fast().with_freq_column(spec.freq_column(&catalog));
    let model = FittedModel::fit(technique, &ds.x, &ds.y, &opts).unwrap();
    (model, spec, catalog)
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_predict_per_sample");
    for technique in ModelTechnique::ALL {
        let (model, spec, _) = trained_model(technique);
        let row: Vec<f64> = (0..spec.width()).map(|j| 10.0 * j as f64).collect();
        group.bench_function(technique.name(), |b| {
            b.iter(|| model.predict_row(std::hint::black_box(&row)).unwrap())
        });
    }
    group.finish();
}

fn bench_counter_collection(c: &mut Criterion) {
    // One second of the agent's life: turn machine activity into the full
    // ~250-counter reading (a real agent reads the OS; we synthesize).
    let platform = Platform::Core2;
    let spec = platform.spec();
    let catalog = CounterCatalog::for_platform(&spec);
    let machine = chaos_sim::Machine::nominal(platform, 0);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let state = machine.apply_demand(&ResourceDemand::cpu_only(1.5), &mut rng);
    let mut synth = CounterSynth::new(&catalog, &spec, 7);
    c.bench_function("counter_synthesis_250_per_second", |b| {
        b.iter(|| synth.step(&catalog, std::hint::black_box(&state)))
    });
}

fn bench_full_agent_second(c: &mut Criterion) {
    // Counter production + feature extraction + prediction: everything a
    // deployed agent does per second.
    let (model, spec, catalog) = trained_model(ModelTechnique::Quadratic);
    let platform = Platform::Core2;
    let pspec = platform.spec();
    let machine = chaos_sim::Machine::nominal(platform, 0);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let state = machine.apply_demand(&ResourceDemand::cpu_only(1.2), &mut rng);
    let mut synth = CounterSynth::new(&catalog, &pspec, 3);
    c.bench_function("full_agent_second", |b| {
        b.iter(|| {
            let row = synth.step(&catalog, &state);
            let feats: Vec<f64> = spec.counters.iter().map(|&i| row[i]).collect();
            model.predict_row(&feats).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_predict,
    bench_counter_collection,
    bench_full_agent_second
);
criterion_main!(benches);
