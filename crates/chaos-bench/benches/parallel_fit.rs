//! Serial vs parallel wall-clock for the engine's fan-out stages.
//!
//! The per-machine fit stage is the paper's dominant cost (one MARS fit
//! per machine per fold); on a ≥4-core machine the 4-thread policy is
//! expected to reach ≥2× over serial. Results are bit-identical across
//! policies — only wall-clock changes — so these benches pair with the
//! determinism tests rather than replacing them.
//!
//! `cargo bench -p chaos-bench --bench parallel_fit`; the
//! `ablation_parallel` binary records the same comparison (plus sweep
//! and selection stages) to `results/BENCH_parallel.json`.

use chaos_core::eval::{evaluate, EvalConfig};
use chaos_core::pooling::{evaluate_pooling, PoolingStrategy};
use chaos_core::{ExecPolicy, FeatureSpec, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stats::batch::CoefBlock;
use chaos_stats::gram::GramCache;
use chaos_stats::Matrix;
use chaos_workloads::{SimConfig, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const POLICIES: [(&str, ExecPolicy); 2] = [
    ("serial", ExecPolicy::Serial),
    ("parallel_4", ExecPolicy::Parallel { threads: 4 }),
];

fn setup() -> (Vec<RunTrace>, Cluster, FeatureSpec) {
    let cluster = Cluster::homogeneous(Platform::Core2, 4, 2012);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let traces: Vec<RunTrace> = (0..4)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                Workload::Prime,
                &SimConfig::paper(),
                40 + r,
            )
            .unwrap()
        })
        .collect();
    let spec = FeatureSpec::general(&catalog);
    (traces, cluster, spec)
}

fn bench_per_machine_fit(c: &mut Criterion) {
    let (traces, cluster, spec) = setup();
    let mut group = c.benchmark_group("per_machine_fit");
    group.sample_size(10);
    for (label, exec) in POLICIES {
        let config = EvalConfig::fast().with_exec(exec);
        group.bench_function(label, |b| {
            b.iter(|| {
                evaluate_pooling(
                    &traces,
                    &cluster,
                    &spec,
                    ModelTechnique::PiecewiseLinear,
                    PoolingStrategy::PerMachine,
                    &config,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_cv_folds(c: &mut Criterion) {
    let (traces, cluster, spec) = setup();
    let mut group = c.benchmark_group("cv_folds");
    group.sample_size(10);
    for (label, exec) in POLICIES {
        let config = EvalConfig::fast().with_exec(exec);
        group.bench_function(label, |b| {
            b.iter(|| {
                evaluate(
                    &traces,
                    &cluster,
                    &spec,
                    ModelTechnique::PiecewiseLinear,
                    &config,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Overhead of the observability layer on the hot evaluation path.
///
/// `obs_off` is the baseline; `obs_summary` runs the identical workload
/// with counters, histograms, and spans live. The acceptance bar is
/// < 2% overhead for `obs_off` relative to a build without the layer —
/// every instrumentation site is behind one relaxed atomic load, so the
/// two cases here should be near-indistinguishable and `obs_summary`
/// only a few percent above.
fn bench_obs_overhead(c: &mut Criterion) {
    let (traces, cluster, spec) = setup();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    let config = EvalConfig::fast().with_exec(ExecPolicy::Parallel { threads: 4 });
    for (label, level) in [
        ("obs_off", chaos_obs::ObsLevel::Off),
        ("obs_summary", chaos_obs::ObsLevel::Summary),
    ] {
        chaos_obs::set_level(level);
        group.bench_function(label, |b| {
            b.iter(|| {
                evaluate(
                    &traces,
                    &cluster,
                    &spec,
                    ModelTechnique::PiecewiseLinear,
                    &config,
                )
                .unwrap()
            })
        });
        chaos_obs::set_level(chaos_obs::ObsLevel::Off);
        chaos_obs::reset();
    }
    group.finish();
}

/// Deterministic pseudo-random double in [-0.5, 0.5) — the kernel
/// benches measure pure numeric loops and need no simulator.
fn det(i: usize) -> f64 {
    ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
}

/// Raw-speed kernels: the SoA fleet predictor against the per-machine
/// scalar dot, and the blocked Gram builder against the row-at-a-time
/// reference. Both pairs are bit-identical (pinned by
/// `tests/kernel_identity.rs`); only wall-clock may differ.
fn bench_kernel_suite(c: &mut Criterion) {
    let (m, k) = (1024usize, 8usize);
    let mut coefs = CoefBlock::new(k);
    let mut rows = CoefBlock::new(k);
    let mut coef_vecs = Vec::with_capacity(m);
    let mut row_vecs = Vec::with_capacity(m);
    for j in 0..m {
        let cv: Vec<f64> = (0..k).map(|f| 10.0 * det(j * k + f)).collect();
        let rv: Vec<f64> = (0..k).map(|f| 4.0 * det(7919 + j * k + f)).collect();
        coefs.push(&cv).unwrap();
        rows.push(&rv).unwrap();
        coef_vecs.push(cv);
        row_vecs.push(rv);
    }
    coefs.seal();
    rows.seal();

    let n = 1500usize;
    let p = 16usize;
    let xr: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..p).map(|j| 6.0 * det(i * p + j)).collect())
        .collect();
    let x = Matrix::from_rows(&xr).unwrap();
    let y: Vec<f64> = (0..n).map(|i| 100.0 * det(31337 + i)).collect();

    let mut group = c.benchmark_group("kernel_suite");
    let mut out = vec![0.0; m];
    group.bench_function("soa_batch_predict", |b| {
        b.iter(|| {
            coefs.predict_into(&rows, &mut out).unwrap();
            black_box(out[m - 1])
        })
    });
    group.bench_function("scalar_predict", |b| {
        b.iter(|| {
            let mut last = 0.0;
            for (cv, rv) in coef_vecs.iter().zip(&row_vecs) {
                let mut acc = 0.0;
                for (c, x) in cv.iter().zip(rv) {
                    acc += c * x;
                }
                last = acc;
            }
            black_box(last)
        })
    });
    group.bench_function("gram_blocked", |b| {
        b.iter(|| black_box(GramCache::new(&x, &y).unwrap()))
    });
    group.bench_function("gram_reference", |b| {
        b.iter(|| black_box(GramCache::new_reference(&x, &y).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_per_machine_fit,
    bench_cv_folds,
    bench_obs_overhead,
    bench_kernel_suite
);
criterion_main!(benches);
