//! Serial vs parallel wall-clock for the engine's fan-out stages.
//!
//! The per-machine fit stage is the paper's dominant cost (one MARS fit
//! per machine per fold); on a ≥4-core machine the 4-thread policy is
//! expected to reach ≥2× over serial. Results are bit-identical across
//! policies — only wall-clock changes — so these benches pair with the
//! determinism tests rather than replacing them.
//!
//! `cargo bench -p chaos-bench --bench parallel_fit`; the
//! `ablation_parallel` binary records the same comparison (plus sweep
//! and selection stages) to `results/BENCH_parallel.json`.

use chaos_core::eval::{evaluate, EvalConfig};
use chaos_core::pooling::{evaluate_pooling, PoolingStrategy};
use chaos_core::{ExecPolicy, FeatureSpec, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

const POLICIES: [(&str, ExecPolicy); 2] = [
    ("serial", ExecPolicy::Serial),
    ("parallel_4", ExecPolicy::Parallel { threads: 4 }),
];

fn setup() -> (Vec<RunTrace>, Cluster, FeatureSpec) {
    let cluster = Cluster::homogeneous(Platform::Core2, 4, 2012);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let traces: Vec<RunTrace> = (0..4)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                Workload::Prime,
                &SimConfig::paper(),
                40 + r,
            )
            .unwrap()
        })
        .collect();
    let spec = FeatureSpec::general(&catalog);
    (traces, cluster, spec)
}

fn bench_per_machine_fit(c: &mut Criterion) {
    let (traces, cluster, spec) = setup();
    let mut group = c.benchmark_group("per_machine_fit");
    group.sample_size(10);
    for (label, exec) in POLICIES {
        let config = EvalConfig::fast().with_exec(exec);
        group.bench_function(label, |b| {
            b.iter(|| {
                evaluate_pooling(
                    &traces,
                    &cluster,
                    &spec,
                    ModelTechnique::PiecewiseLinear,
                    PoolingStrategy::PerMachine,
                    &config,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_cv_folds(c: &mut Criterion) {
    let (traces, cluster, spec) = setup();
    let mut group = c.benchmark_group("cv_folds");
    group.sample_size(10);
    for (label, exec) in POLICIES {
        let config = EvalConfig::fast().with_exec(exec);
        group.bench_function(label, |b| {
            b.iter(|| {
                evaluate(
                    &traces,
                    &cluster,
                    &spec,
                    ModelTechnique::PiecewiseLinear,
                    &config,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Overhead of the observability layer on the hot evaluation path.
///
/// `obs_off` is the baseline; `obs_summary` runs the identical workload
/// with counters, histograms, and spans live. The acceptance bar is
/// < 2% overhead for `obs_off` relative to a build without the layer —
/// every instrumentation site is behind one relaxed atomic load, so the
/// two cases here should be near-indistinguishable and `obs_summary`
/// only a few percent above.
fn bench_obs_overhead(c: &mut Criterion) {
    let (traces, cluster, spec) = setup();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    let config = EvalConfig::fast().with_exec(ExecPolicy::Parallel { threads: 4 });
    for (label, level) in [
        ("obs_off", chaos_obs::ObsLevel::Off),
        ("obs_summary", chaos_obs::ObsLevel::Summary),
    ] {
        chaos_obs::set_level(level);
        group.bench_function(label, |b| {
            b.iter(|| {
                evaluate(
                    &traces,
                    &cluster,
                    &spec,
                    ModelTechnique::PiecewiseLinear,
                    &config,
                )
                .unwrap()
            })
        });
        chaos_obs::set_level(chaos_obs::ObsLevel::Off);
        chaos_obs::reset();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_per_machine_fit,
    bench_cv_folds,
    bench_obs_overhead
);
criterion_main!(benches);
