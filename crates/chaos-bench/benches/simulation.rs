//! Simulator throughput: how fast the substrate generates testbed data.
//!
//! The paper spends up to 2 hours collecting a cluster's training data on
//! real hardware; the simulator regenerates an entire (cluster, workload,
//! run) trace in milliseconds, which is what makes the >1200-model sweep
//! cheap to reproduce.

use chaos_counters::{collect_run, CounterCatalog};
use chaos_sim::{Cluster, Machine, Platform, ResourceDemand};
use chaos_workloads::{simulate, SimConfig, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_machine_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_tick");
    for platform in [Platform::Atom, Platform::XeonSas] {
        let m = Machine::nominal(platform, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let demand = ResourceDemand {
            disk_read_bytes: 50e6,
            net_rx_bytes: 20e6,
            ..ResourceDemand::cpu_only(2.0)
        };
        group.bench_function(platform.name(), |b| {
            b.iter(|| {
                let state = m.apply_demand(std::hint::black_box(&demand), &mut rng);
                m.true_power(&state)
            })
        });
    }
    group.finish();
}

fn bench_schedule_run(c: &mut Criterion) {
    let cluster = Cluster::homogeneous(Platform::Core2, 5, 1);
    let cfg = SimConfig::quick();
    let mut group = c.benchmark_group("schedule_full_run");
    group.sample_size(10);
    for w in [Workload::Prime, Workload::Sort] {
        group.bench_function(w.name(), |b| {
            b.iter(|| simulate(&cluster, w, &cfg, std::hint::black_box(42)))
        });
    }
    group.finish();
}

fn bench_collect_run(c: &mut Criterion) {
    // The full pipeline the experiments use: schedule + governor + counter
    // synthesis + metering for a 5-machine cluster run.
    let cluster = Cluster::homogeneous(Platform::Core2, 5, 1);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let cfg = SimConfig::quick();
    let mut group = c.benchmark_group("collect_full_run");
    group.sample_size(10);
    group.bench_function("wordcount_5_machines", |b| {
        b.iter(|| {
            collect_run(
                &cluster,
                &catalog,
                Workload::WordCount,
                &cfg,
                std::hint::black_box(7),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_machine_tick,
    bench_schedule_run,
    bench_collect_run
);
criterion_main!(benches);
