//! Ablation: sensitivity of the step-1 correlation threshold.
//!
//! The paper prunes counter pairs above |0.95| and reports that "we
//! performed a sensitivity analysis on this threshold value and found
//! that reducing it below 0.95 provided diminishing returns." This
//! ablation sweeps the threshold on the Core2 cluster and reports the
//! funnel (survivors, final set size) and the resulting model accuracy.

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_core::models::ModelTechnique;
use chaos_core::selection::{select_features, SelectionConfig};
use chaos_sim::Platform;
use chaos_workloads::Workload;

fn main() {
    chaos_bench::obs_init("ablation_corr_threshold");
    let cfg = ExperimentConfig::paper();
    let exp = ClusterExperiment::collect(Platform::Core2, &cfg);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut dre_at = Vec::new();
    for threshold in [0.80, 0.85, 0.90, 0.95, 0.99] {
        let scfg = SelectionConfig {
            corr_threshold: threshold,
            ..cfg.selection
        };
        let selection =
            select_features(exp.traces(), &exp.catalog, &scfg).expect("selection succeeds");
        let outcome = exp
            .evaluate(
                Workload::Prime,
                &selection.feature_spec(),
                ModelTechnique::Quadratic,
            )
            .expect("evaluation succeeds");
        rows.push(vec![
            format!("{threshold:.2}"),
            format!("{}", selection.survivors_step1),
            format!("{}", selection.selected.len()),
            pct(outcome.avg_dre()),
        ]);
        csv.push(vec![
            format!("{threshold}"),
            format!("{}", selection.survivors_step1),
            format!("{}", selection.selected.len()),
            format!("{:.4}", outcome.avg_dre()),
        ]);
        dre_at.push((threshold, outcome.avg_dre()));
    }

    println!("Ablation: step-1 correlation threshold (Core2, QC on Prime)\n");
    println!(
        "{}",
        format_table(
            &["|r| threshold", "step-1 survivors", "final features", "DRE"],
            &rows
        )
    );
    let path = write_csv(
        "ablation_corr_threshold.csv",
        &["threshold", "step1_survivors", "final_features", "dre"],
        &csv,
    );
    println!("CSV written to {}", path.display());

    // Shape check (the paper's finding): tightening below 0.95 does not
    // meaningfully improve accuracy — every threshold lands in the same
    // accuracy band.
    let dre95 = dre_at
        .iter()
        .find(|(t, _)| (*t - 0.95).abs() < 1e-9)
        .map(|(_, d)| *d)
        .expect("0.95 entry exists");
    for (t, d) in &dre_at {
        assert!(
            (d - dre95).abs() < 0.05,
            "threshold {t} diverges: {d} vs {dre95} at 0.95"
        );
    }
    println!("\ndiminishing returns confirmed: all thresholds within 5pp DRE of 0.95");

    chaos_bench::obs_finish(
        "ablation_corr_threshold",
        Some(cfg.cluster_seed),
        serde_json::to_string(&cfg).ok(),
    );
}
