//! Ablation: fault tolerance (the degradation curve).
//!
//! Trains the paper's quadratic/general model on clean runs, then
//! replays the test runs through a seeded fault injector at increasing
//! counter-dropout rates (plus a constant background of meter outages
//! and glitches) and measures three things at each rate:
//!
//! * the robust fallback chain's DRE — should stay bounded,
//! * its coverage (fraction of samples answered above the idle-power
//!   floor) — the quantity that actually decays with fault rate,
//! * the bare pipeline's behaviour — the fraction of samples it rejects
//!   with a typed error, and the DRE of the naive zero-fill recovery.
//!
//! The headline: at 20% dropout the bare model fails on most samples
//! and the zero-fill workaround's error explodes, while the robust
//! chain keeps answering with accuracy close to its clean baseline.

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::eval::fault_sweep;
use chaos_core::features::FeatureSpec;
use chaos_core::robust::RobustConfig;
use chaos_counters::{collect_run, CounterCatalog, FaultPlan, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};

fn main() {
    chaos_bench::obs_init("ablation_faults");
    let platform = Platform::Core2;
    let cluster = Cluster::homogeneous(platform, 4, 2012);
    let catalog = CounterCatalog::for_platform(&platform.spec());
    let sim = SimConfig::paper();

    let runs: Vec<RunTrace> = (0..3)
        .map(|r| collect_run(&cluster, &catalog, Workload::PageRank, &sim, 700 + r).unwrap())
        .collect();
    let spec = FeatureSpec::general(&catalog);

    // Constant background faults; the sweep varies counter dropout.
    let base = FaultPlan::new(2012)
        .with_meter_outages(0.005, 10)
        .with_glitches(0.01, 0.3);
    let rates = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4];
    // CHAOS_THREADS=auto|N|serial fans the sweep points out; results are
    // bit-identical across policies.
    let config = RobustConfig {
        exec: chaos_core::ExecPolicy::from_env(),
        ..RobustConfig::fast()
    };
    let outcomes = fault_sweep(
        &runs[..2],
        &runs[2..],
        &cluster,
        &spec,
        &base,
        &rates,
        &config,
    )
    .expect("fault sweep");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for o in &outcomes {
        rows.push(vec![
            pct(o.fault_rate),
            format!("{:.3}", o.robust_dre),
            format!("{:.1} W", o.robust_rmse),
            pct(o.coverage),
            pct(o.bare_failure_fraction),
            format!("{:.3}", o.naive_dre),
        ]);
        csv.push(vec![
            format!("{:.2}", o.fault_rate),
            format!("{:.4}", o.robust_dre),
            format!("{:.3}", o.robust_rmse),
            format!("{:.4}", o.coverage),
            format!("{:.4}", o.bare_failure_fraction),
            format!("{:.4}", o.naive_dre),
        ]);
    }

    println!("Ablation: fault tolerance (Core2, PageRank, quadratic/general)\n");
    println!(
        "{}",
        format_table(
            &[
                "Dropout",
                "Robust DRE",
                "Robust rMSE",
                "Coverage",
                "Bare failures",
                "Zero-fill DRE",
            ],
            &rows
        )
    );
    let path = write_csv(
        "ablation_faults.csv",
        &[
            "dropout_rate",
            "robust_dre",
            "robust_rmse_w",
            "coverage",
            "bare_failure_fraction",
            "naive_zero_fill_dre",
        ],
        &csv,
    );
    println!("CSV written to {}", path.display());

    // Shape checks — the claims this ablation exists to demonstrate.
    let clean = &outcomes[0];
    let at20 = outcomes.iter().find(|o| o.fault_rate == 0.2).unwrap();
    assert!(
        at20.robust_dre.is_finite() && at20.robust_dre < 0.4,
        "robust chain must stay bounded at 20% dropout: DRE {}",
        at20.robust_dre
    );
    assert!(
        at20.bare_failure_fraction > 0.5,
        "bare model should reject most samples at 20% dropout: {}",
        at20.bare_failure_fraction
    );
    assert!(
        at20.naive_dre > 2.0 * at20.robust_dre,
        "zero-fill recovery should degrade far past the robust chain: {} vs {}",
        at20.naive_dre,
        at20.robust_dre
    );
    for pair in outcomes.windows(2) {
        assert!(
            pair[1].coverage <= pair[0].coverage + 0.02,
            "coverage must not grow with fault rate"
        );
    }
    println!(
        "\nAt 20% dropout the bare model rejects {} of samples and zero-fill \
         recovery hits DRE {:.2}; the robust chain answers everything at DRE \
         {:.2} (clean baseline {:.2}) with {} coverage above the floor.",
        pct(at20.bare_failure_fraction),
        at20.naive_dre,
        at20.robust_dre,
        clean.robust_dre,
        pct(at20.coverage),
    );

    chaos_bench::obs_finish(
        "ablation_faults",
        Some(2012),
        serde_json::to_string(&sim).ok(),
    );
}
