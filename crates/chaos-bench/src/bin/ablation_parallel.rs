//! Ablation: parallel experiment engine.
//!
//! Times each fan-out stage of the pipeline — the per-machine fit stage,
//! cross-validated evaluation, the technique × feature-set sweep, and
//! Algorithm 1 feature selection — under Serial, 2-thread, and 4-thread
//! execution policies. Every stage's output is asserted bit-identical
//! across policies before any timing is reported, then the wall-clock
//! numbers and speedups are written to `results/BENCH_parallel.json`.
//!
//! Timings take the minimum of several repeats, so transient scheduler
//! noise inflates neither the serial nor the parallel numbers. Expected
//! shape on a ≥4-core machine: the per-machine fit stage and the sweep
//! reach ≥2× at 4 threads (they fan out over many independent MARS
//! fits); selection lands a little lower because steps 1–2 and 6 are
//! inherently serial.

use chaos_bench::{format_table, results_dir};
use chaos_core::eval::{evaluate, EvalConfig};
use chaos_core::pooling::{evaluate_pooling, PoolingStrategy};
use chaos_core::selection::{select_features, SelectionConfig};
use chaos_core::sweep::sweep_grid;
use chaos_core::{ExecPolicy, FeatureSpec, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};
use serde_json::json;
use std::time::Instant;

const REPEATS: usize = 3;

const POLICIES: [(&str, ExecPolicy); 3] = [
    ("serial", ExecPolicy::Serial),
    ("par2", ExecPolicy::Parallel { threads: 2 }),
    ("par4", ExecPolicy::Parallel { threads: 4 }),
];

/// Runs one stage under every policy, asserts the serialized outputs are
/// bit-identical, and returns (label, best-of-REPEATS milliseconds).
fn bench_stage(name: &str, run: &dyn Fn(ExecPolicy) -> String) -> Vec<(&'static str, f64)> {
    let mut timings = Vec::new();
    let mut digests: Vec<String> = Vec::new();
    for (label, policy) in POLICIES {
        let mut best = f64::INFINITY;
        let mut digest = String::new();
        for _ in 0..REPEATS {
            let t0 = Instant::now();
            digest = run(policy);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        timings.push((label, best));
        digests.push(digest);
    }
    assert!(
        digests.iter().all(|d| d == &digests[0]),
        "{name}: results differ across execution policies"
    );
    eprintln!(
        "[{name}] serial {:.0} ms, par2 {:.0} ms, par4 {:.0} ms (bit-identical)",
        timings[0].1, timings[1].1, timings[2].1
    );
    timings
}

fn main() {
    chaos_bench::obs_init("ablation_parallel");
    let cluster = Cluster::homogeneous(Platform::Core2, 4, 2012);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let traces: Vec<RunTrace> = (0..4)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                Workload::Prime,
                &SimConfig::paper(),
                40 + r,
            )
            .unwrap()
        })
        .collect();
    let spec = FeatureSpec::general(&catalog);
    let sets = vec![
        ("U".to_string(), FeatureSpec::cpu_only(&catalog)),
        ("G".to_string(), FeatureSpec::general(&catalog)),
    ];

    let mut rows = Vec::new();
    let mut stage_json = Vec::new();
    let mut record = |name: &str, t: Vec<(&'static str, f64)>| {
        let (serial, par2, par4) = (t[0].1, t[1].1, t[2].1);
        rows.push(vec![
            name.to_string(),
            format!("{serial:.0} ms"),
            format!("{par2:.0} ms"),
            format!("{par4:.0} ms"),
            format!("{:.2}x", serial / par2),
            format!("{:.2}x", serial / par4),
        ]);
        stage_json.push(json!({
            "stage": name,
            "serial_ms": serial,
            "par2_ms": par2,
            "par4_ms": par4,
            "speedup_2": serial / par2,
            "speedup_4": serial / par4,
            "bit_identical": true,
        }));
    };

    record(
        "per_machine_fit",
        bench_stage("per_machine_fit", &|exec| {
            let o = evaluate_pooling(
                &traces,
                &cluster,
                &spec,
                ModelTechnique::PiecewiseLinear,
                PoolingStrategy::PerMachine,
                &EvalConfig::fast().with_exec(exec),
            )
            .expect("per-machine fit");
            serde_json::to_string(&o).unwrap()
        }),
    );
    record(
        "cv_folds",
        bench_stage("cv_folds", &|exec| {
            let o = evaluate(
                &traces,
                &cluster,
                &spec,
                ModelTechnique::PiecewiseLinear,
                &EvalConfig::fast().with_exec(exec),
            )
            .expect("evaluation");
            serde_json::to_string(&o).unwrap()
        }),
    );
    record(
        "sweep_grid",
        bench_stage("sweep_grid", &|exec| {
            let o = sweep_grid(
                &traces,
                &cluster,
                &sets,
                &ModelTechnique::ALL,
                &EvalConfig::fast().with_exec(exec),
            )
            .expect("sweep");
            serde_json::to_string(&o).unwrap()
        }),
    );
    record(
        "selection",
        bench_stage("selection", &|exec| {
            let o = select_features(
                &traces,
                &catalog,
                &SelectionConfig {
                    exec,
                    ..SelectionConfig::default()
                },
            )
            .expect("selection");
            serde_json::to_string(&o).unwrap()
        }),
    );

    println!("Ablation: parallel execution (Core2, Prime, 4 machines, 4 runs)\n");
    println!(
        "{}",
        format_table(
            &["Stage", "Serial", "2 threads", "4 threads", "S/2", "S/4"],
            &rows
        )
    );

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let out = json!({
        "bench": "parallel_engine_ablation",
        "platform": "Core2",
        "workload": "prime",
        "machines": 4,
        "runs": 4,
        "repeats": REPEATS,
        "host_cores": cores,
        "stages": stage_json,
    });
    let path = results_dir().join("BENCH_parallel.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap()).expect("write results");
    println!("\nJSON written to {}", path.display());
    if cores < 4 {
        eprintln!("note: only {cores} cores available; 4-thread speedups will be deflated");
    }

    chaos_bench::obs_finish(
        "ablation_parallel",
        Some(2012),
        serde_json::to_string(&SimConfig::paper()).ok(),
    );
}
