//! Ablation: pooled vs per-machine vs mixed models (Section IV's design
//! choice).
//!
//! The paper pools counters and power across the cluster's machines and
//! reports that, per the recommended variance-comparison tests, "pooling
//! is a suitable approach with no significant loss of accuracy" compared
//! to hierarchical/mixed alternatives. This ablation measures all three
//! strategies on the Opteron cluster at two altitudes:
//!
//! * **per-machine** error, where machine-specific intercepts genuinely
//!   help (machines really do differ by up to ~10%), and
//! * **cluster-level** error — what CHAOS actually predicts (Eq. 5) —
//!   where the per-machine biases cancel in the sum and pooling loses
//!   almost nothing, which is the paper's operating point.

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_core::features::FeatureSpec;
use chaos_core::models::ModelTechnique;
use chaos_core::pooling::{evaluate_pooling, evaluate_pooling_cluster, PoolingStrategy};
use chaos_sim::Platform;
use chaos_workloads::Workload;

fn main() {
    chaos_bench::obs_init("ablation_pooling");
    let cfg = ExperimentConfig::paper();
    let exp = ClusterExperiment::collect(Platform::Opteron, &cfg);
    let spec = FeatureSpec::general(&exp.catalog);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut worst_cluster_gap: f64 = 0.0;
    for workload in Workload::ALL {
        for &strategy in &PoolingStrategy::ALL {
            let machine_level = evaluate_pooling(
                exp.traces_for(workload),
                &exp.cluster,
                &spec,
                ModelTechnique::Linear,
                strategy,
                &cfg.eval,
            )
            .expect("machine-level evaluation succeeds");
            let cluster_level = evaluate_pooling_cluster(
                exp.traces_for(workload),
                &exp.cluster,
                &spec,
                ModelTechnique::Linear,
                strategy,
                &cfg.eval,
            )
            .expect("cluster-level evaluation succeeds");
            rows.push(vec![
                workload.name().to_string(),
                strategy.name().to_string(),
                pct(machine_level.dre),
                pct(cluster_level.dre),
                format!("{:.2}", cluster_level.rmse),
            ]);
            csv.push(vec![
                workload.name().to_string(),
                strategy.name().to_string(),
                format!("{:.4}", machine_level.dre),
                format!("{:.4}", cluster_level.dre),
                format!("{:.3}", cluster_level.rmse),
            ]);
        }
        // Compare pooled vs per-machine at the cluster level.
        let get = |s: PoolingStrategy| {
            evaluate_pooling_cluster(
                exp.traces_for(workload),
                &exp.cluster,
                &spec,
                ModelTechnique::Linear,
                s,
                &cfg.eval,
            )
            .expect("evaluation succeeds")
        };
        let gap = get(PoolingStrategy::Pooled).dre - get(PoolingStrategy::PerMachine).dre;
        worst_cluster_gap = worst_cluster_gap.max(gap);
    }

    println!("Ablation: pooling strategy (Opteron, linear on general features)\n");
    println!(
        "{}",
        format_table(
            &[
                "Workload",
                "Strategy",
                "Machine DRE",
                "Cluster DRE",
                "Cluster rMSE (W)"
            ],
            &rows
        )
    );
    println!(
        "worst cluster-level DRE gap, pooled minus per-machine: {}",
        pct(worst_cluster_gap)
    );
    println!(
        "per-machine models win at machine granularity (machines differ by up to ~10%),\n\
         but the biases cancel in the Eq. 5 sum: at cluster level — the paper's operating\n\
         point — pooling loses almost nothing, matching the paper's variance-test finding."
    );
    let path = write_csv(
        "ablation_pooling.csv",
        &[
            "workload",
            "strategy",
            "machine_dre",
            "cluster_dre",
            "cluster_rmse_w",
        ],
        &csv,
    );
    println!("CSV written to {}", path.display());

    assert!(
        worst_cluster_gap < 0.04,
        "pooling should cost < 4pp DRE at cluster level, gap {}",
        pct(worst_cluster_gap)
    );

    chaos_bench::obs_finish(
        "ablation_pooling",
        Some(cfg.cluster_seed),
        serde_json::to_string(&cfg).ok(),
    );
}
