//! Ablation: sampling interval (Section II's "Sampling frequency").
//!
//! The paper samples at 1 Hz and notes that prior work using 10-minute
//! intervals or whole-workload energy "misses application-level behavior
//! patterns". This ablation trains and tests the same model at 1 s, 5 s,
//! 30 s, and 120 s intervals and reports both the model's DRE on the
//! decimated series and how much of the true power dynamics the slower
//! sampling can even *see* (the variance retained after averaging).

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::dataset::pooled_dataset;
use chaos_core::eval::EvalConfig;
use chaos_core::features::FeatureSpec;
use chaos_core::models::{FittedModel, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stats::{describe, metrics};
use chaos_workloads::{SimConfig, Workload};

fn main() {
    chaos_bench::obs_init("ablation_sampling");
    let platform = Platform::Opteron;
    let cluster = Cluster::homogeneous(platform, 5, 2012);
    let catalog = CounterCatalog::for_platform(&platform.spec());
    let sim = SimConfig::paper();

    // 3 runs of the longest, most variable workload.
    let runs: Vec<RunTrace> = (0..3)
        .map(|r| collect_run(&cluster, &catalog, Workload::PageRank, &sim, 600 + r).unwrap())
        .collect();
    let spec = FeatureSpec::general(&catalog);
    let eval_cfg = EvalConfig::fast();
    let opts = eval_cfg.fit.with_freq_column(spec.freq_column(&catalog));

    let full_variance = {
        let all: Vec<f64> = runs
            .iter()
            .flat_map(|r| r.machines.iter().flat_map(|m| m.measured_power_w.clone()))
            .collect();
        describe::variance(&all)
    };

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut dre_by_interval = Vec::new();
    for interval in [1usize, 5, 30, 120] {
        let dec: Vec<RunTrace> = runs
            .iter()
            .map(|r| r.decimated(interval).expect("non-zero interval"))
            .collect();
        // Train on run 0, test on runs 1–2 (decimated traces are short,
        // so a single split keeps the test set meaningful).
        let train = pooled_dataset(&dec[..1], &spec)
            .expect("train dataset")
            .thinned(eval_cfg.max_train_rows);
        let test = pooled_dataset(&dec[1..], &spec).expect("test dataset");
        let model = FittedModel::fit(ModelTechnique::Quadratic, &train.x, &train.y, &opts)
            .expect("model fits");
        let pred = model.predict(&test.x).expect("prediction");
        let machine = &cluster.machines()[0];
        let dre =
            metrics::dynamic_range_error(&pred, &test.y, machine.max_power(), machine.idle_power())
                .expect("dre");

        let retained = {
            let all: Vec<f64> = dec
                .iter()
                .flat_map(|r| r.machines.iter().flat_map(|m| m.measured_power_w.clone()))
                .collect();
            describe::variance(&all) / full_variance
        };
        rows.push(vec![
            format!("{interval} s"),
            format!("{}", test.len()),
            pct(retained),
            pct(dre),
        ]);
        csv.push(vec![
            format!("{interval}"),
            format!("{}", test.len()),
            format!("{retained:.4}"),
            format!("{dre:.4}"),
        ]);
        dre_by_interval.push((interval, dre, retained));
    }

    println!("Ablation: sampling interval (Opteron, PageRank, QG model)\n");
    println!(
        "{}",
        format_table(
            &["Interval", "Test samples", "Power variance seen", "DRE"],
            &rows
        )
    );
    let path = write_csv(
        "ablation_sampling.csv",
        &["interval_s", "test_samples", "variance_retained", "dre"],
        &csv,
    );
    println!("CSV written to {}", path.display());

    // Shape checks: slow sampling blurs away the dynamics the paper's
    // 1 Hz collection exists to capture.
    let seen_1s = dre_by_interval[0].2;
    let seen_120s = dre_by_interval.last().unwrap().2;
    assert!(
        seen_120s < 0.7 * seen_1s,
        "120 s sampling should lose a large share of power variance: {seen_120s} vs {seen_1s}"
    );
    println!(
        "\n120 s sampling observes only {} of the power variance 1 Hz sees — \
         the paper's motivation for 1 Hz collection",
        pct(seen_120s / seen_1s)
    );

    chaos_bench::obs_finish(
        "ablation_sampling",
        Some(2012),
        serde_json::to_string(&sim).ok(),
    );
}
