//! Figure 1: full-system cluster power for five runs of each workload on
//! the 5-machine Core 2 Duo cluster.
//!
//! The paper's figure shows that each workload has a dramatically
//! different power signature and different run times, with cluster power
//! between roughly 120 W and 220 W. This binary regenerates the series
//! (CSV, one column per run) and prints per-run summaries plus the
//! cross-workload shape checks.

use chaos_bench::{format_table, watts, write_csv};
use chaos_counters::{collect_run, CounterCatalog};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};

fn main() {
    chaos_bench::obs_init("fig1_power_traces");
    let cluster = Cluster::homogeneous(Platform::Core2, 5, 2012);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let cfg = SimConfig::paper();

    let mut rows = Vec::new();
    let mut mean_power = std::collections::BTreeMap::new();
    let mut peak_power = std::collections::BTreeMap::new();
    let mut run_len = std::collections::BTreeMap::new();

    for workload in Workload::ALL {
        let mut series: Vec<Vec<f64>> = Vec::new();
        for run in 0..5 {
            let seed = 4000 + run;
            let trace =
                collect_run(&cluster, &catalog, workload, &cfg, seed).expect("collection succeeds");
            let p = trace.cluster_measured_power();
            let mean = p.iter().sum::<f64>() / p.len() as f64;
            let peak = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = p.iter().copied().fold(f64::INFINITY, f64::min);
            rows.push(vec![
                workload.name().to_string(),
                format!("{run}"),
                format!("{}", p.len()),
                watts(min),
                watts(mean),
                watts(peak),
            ]);
            mean_power
                .entry(workload.name())
                .or_insert_with(Vec::new)
                .push(mean);
            peak_power
                .entry(workload.name())
                .or_insert_with(Vec::new)
                .push(peak);
            run_len
                .entry(workload.name())
                .or_insert_with(Vec::new)
                .push(p.len());
            series.push(p);
        }
        // One CSV per workload: second, run0..run4 (runs padded w/ blanks).
        let max_len = series.iter().map(Vec::len).max().unwrap_or(0);
        let csv_rows: Vec<Vec<String>> = (0..max_len)
            .map(|t| {
                let mut r = vec![t.to_string()];
                for s in &series {
                    r.push(s.get(t).map(|v| format!("{v:.1}")).unwrap_or_default());
                }
                r
            })
            .collect();
        write_csv(
            &format!("fig1_{}.csv", workload.name()),
            &["second", "run0", "run1", "run2", "run3", "run4"],
            &csv_rows,
        );
    }

    println!("Figure 1: Core2 cluster power, 5 runs x 4 workloads\n");
    println!(
        "{}",
        format_table(
            &["Workload", "Run", "Seconds", "Min", "Mean", "Peak"],
            &rows
        )
    );

    // Shape checks mirroring the paper's qualitative claims.
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let prime_peak = avg(&peak_power["prime"]);
    let wc_mean = avg(&mean_power["wordcount"]);
    let pr_len = avg(&run_len["pagerank"]
        .iter()
        .map(|&x| x as f64)
        .collect::<Vec<_>>());
    for w in ["sort", "prime", "wordcount"] {
        let l = avg(&run_len[w].iter().map(|&x| x as f64).collect::<Vec<_>>());
        assert!(
            pr_len > l,
            "pagerank should be the longest workload ({pr_len} vs {w} {l})"
        );
    }
    assert!(prime_peak > wc_mean, "prime saturates the CPUs");
    let global_peak = peak_power.values().flatten().copied().fold(0.0, f64::max);
    let global_min = mean_power
        .values()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    println!(
        "cluster power envelope: ~{:.0} W to ~{:.0} W (paper: 120-220 W)",
        global_min, global_peak
    );
    assert!(global_peak > 170.0 && global_peak < 245.0);
    assert!(global_min > 100.0 && global_min < 180.0);
    println!("CSV series written to results/fig1_<workload>.csv");

    chaos_bench::obs_finish(
        "fig1_power_traces",
        Some(2012),
        serde_json::to_string(&cfg).ok(),
    );
}
