//! Figure 2: feature significance across all workloads and machines of
//! the Opteron cluster, with the selection threshold.
//!
//! Prints the step-5 weighted-occurrence histogram (one bar per counter,
//! category-labeled) and the final threshold chosen by step 6.

use chaos_bench::write_csv;
use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_sim::Platform;

fn main() {
    chaos_bench::obs_init("fig2_feature_histogram");
    // CHAOS_THREADS=auto|N|serial picks the execution policy; results
    // are bit-identical across policies.
    let cfg = ExperimentConfig::paper().with_exec(chaos_core::ExecPolicy::from_env());
    let exp = ClusterExperiment::collect(Platform::Opteron, &cfg);
    let selection = exp.select_features().expect("selection succeeds");

    println!(
        "Figure 2: Opteron feature significance (threshold = {:.0})\n",
        selection.threshold
    );
    let max_w = selection.histogram.first().map(|(_, w)| *w).unwrap_or(1.0);
    let mut csv = Vec::new();
    for (j, w) in selection.histogram.iter().take(30) {
        let def = exp.catalog.def(*j);
        let bar_len = ((w / max_w) * 46.0).round() as usize;
        let selected = selection.selected.contains(j);
        println!(
            "{:>6.1} {}{} [{:>9}] {}{}",
            w,
            "#".repeat(bar_len),
            " ".repeat(46 - bar_len),
            def.category.label(),
            def.name,
            if selected { "  << selected" } else { "" },
        );
        csv.push(vec![
            def.name.clone(),
            def.category.label().to_string(),
            format!("{w:.2}"),
            if selected { "1" } else { "0" }.to_string(),
        ]);
    }
    println!(
        "\n(showing top 30 of {} counters with nonzero weight)",
        selection.histogram.len()
    );
    let path = write_csv(
        "fig2_feature_histogram.csv",
        &["counter", "category", "weight", "selected"],
        &csv,
    );
    println!("CSV written to {}", path.display());

    // Shape checks: CPU activity (utilization family or core frequency)
    // dominates the top of the histogram, as in the paper's Figure 2
    // where processor utilization was the most commonly identified
    // feature. In our substrate the frequency counter, which carries the
    // hidden DVFS state, competes for the top slot.
    let top5: Vec<&str> = selection
        .histogram
        .iter()
        .take(5)
        .map(|(j, _)| exp.catalog.def(*j).name.as_str())
        .collect();
    assert!(
        top5.iter().any(|n| {
            n.contains("Processor Time")
                || n.contains("Idle Time")
                || n.contains("User Time")
                || n.contains("Processor Frequency")
        }),
        "no CPU-activity counter among the top features: {top5:?}"
    );
    let util_family_selected = selection.selected.iter().any(|&j| {
        let n = &exp.catalog.def(j).name;
        n.contains("Processor Time") || n.contains("User Time") || n.contains("Idle Time")
    });
    assert!(
        util_family_selected,
        "a utilization-family counter must be in the final set"
    );
    // Selected features sit above the threshold.
    for &j in &selection.selected {
        let w = selection
            .histogram
            .iter()
            .find(|(k, _)| *k == j)
            .map(|(_, w)| *w)
            .unwrap_or(0.0);
        assert!(
            w >= selection.threshold - 1e-9,
            "selected feature below threshold"
        );
    }

    chaos_bench::obs_finish(
        "fig2_feature_histogram",
        Some(cfg.cluster_seed),
        serde_json::to_string(&cfg).ok(),
    );
}
