//! Figure 3: Opteron average DRE for PageRank across every modeling
//! technique × feature set — "feature selection is required".
//!
//! The paper's reading: for the network-heavy PageRank, moving from the
//! CPU-utilization-only feature set to the cluster-specific or general
//! sets cuts DRE by up to 5 percentage points, a bigger win than changing
//! the modeling technique.

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_core::sweep::SweepCell;
use chaos_sim::Platform;
use chaos_workloads::Workload;

fn main() {
    chaos_bench::obs_init("fig3_pagerank_sweep");
    // CHAOS_THREADS=auto|N|serial picks the execution policy; results
    // are bit-identical across policies.
    let cfg = ExperimentConfig::paper().with_exec(chaos_core::ExecPolicy::from_env());
    let exp = ClusterExperiment::collect(Platform::Opteron, &cfg);
    let selection = exp.select_features().expect("selection succeeds");
    let sets = exp.standard_feature_sets(&selection);
    let cells = exp
        .sweep(Workload::PageRank, &sets)
        .expect("sweep succeeds");

    print_sweep("Figure 3: Opteron / PageRank", &cells);
    write_cells("fig3_pagerank_sweep.csv", &cells, &cfg);

    // Shape checks: with the best technique fixed, richer feature sets
    // beat CPU-only by a clear margin on this I/O-heavy workload.
    let dre = |t: &str, f: &str| {
        cells
            .iter()
            .find(|c| c.technique.letter() == t && c.feature_label == f)
            .map(|c| c.outcome.avg_dre())
    };
    if let (Some(pu), Some(pc)) = (dre("P", "U"), dre("P", "C")) {
        println!("piecewise: CPU-only {} vs cluster {}", pct(pu), pct(pc));
        assert!(
            pc < pu,
            "cluster features should beat CPU-only for PageRank (P: {pc} vs {pu})"
        );
    }
    let best = chaos_core::sweep::best_cell(&cells).expect("cells nonempty");
    assert!(
        best.outcome.avg_dre() < 0.12,
        "best PageRank DRE {} exceeds the paper's 12% bound",
        best.outcome.avg_dre()
    );
    assert!(
        best.feature_label != "U",
        "the best PageRank cell should not be CPU-only"
    );
}

fn print_sweep(title: &str, cells: &[SweepCell]) {
    let mut rows = Vec::new();
    for c in cells {
        rows.push(vec![
            c.technique.name().to_string(),
            c.feature_label.clone(),
            c.label(),
            pct(c.outcome.avg_dre()),
            format!("{:.2}", c.outcome.avg_rmse()),
        ]);
    }
    println!("{title}: DRE by technique x feature set\n");
    println!(
        "{}",
        format_table(
            &["Technique", "Features", "Label", "DRE", "rMSE (W)"],
            &rows
        )
    );
}

fn write_cells(name: &str, cells: &[SweepCell], cfg: &ExperimentConfig) {
    let csv: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.technique.name().to_string(),
                c.feature_label.clone(),
                format!("{:.4}", c.outcome.avg_dre()),
                format!("{:.3}", c.outcome.avg_rmse()),
            ]
        })
        .collect();
    let path = write_csv(name, &["technique", "features", "dre", "rmse_w"], &csv);
    println!("CSV written to {}", path.display());

    chaos_bench::obs_finish(
        "fig3_pagerank_sweep",
        Some(cfg.cluster_seed),
        serde_json::to_string(cfg).ok(),
    );
}
