//! Figure 4: Opteron average DRE for Prime across every modeling
//! technique × feature set — "more complex models are required".
//!
//! The paper's reading: for the CPU-bound Prime, a piecewise-linear model
//! on CPU utilization alone already improves dramatically over the linear
//! model, i.e. the modeling technique matters more than the feature set.

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_core::models::ModelTechnique;
use chaos_sim::Platform;
use chaos_workloads::Workload;

fn main() {
    chaos_bench::obs_init("fig4_prime_sweep");
    // CHAOS_THREADS=auto|N|serial picks the execution policy; results
    // are bit-identical across policies.
    let cfg = ExperimentConfig::paper().with_exec(chaos_core::ExecPolicy::from_env());
    let exp = ClusterExperiment::collect(Platform::Opteron, &cfg);
    let selection = exp.select_features().expect("selection succeeds");
    let sets = exp.standard_feature_sets(&selection);
    let cells = exp.sweep(Workload::Prime, &sets).expect("sweep succeeds");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for c in &cells {
        rows.push(vec![
            c.technique.name().to_string(),
            c.feature_label.clone(),
            c.label(),
            pct(c.outcome.avg_dre()),
            format!("{:.2}", c.outcome.avg_rmse()),
        ]);
        csv.push(vec![
            c.technique.name().to_string(),
            c.feature_label.clone(),
            format!("{:.4}", c.outcome.avg_dre()),
            format!("{:.3}", c.outcome.avg_rmse()),
        ]);
    }
    println!("Figure 4: Opteron / Prime: DRE by technique x feature set\n");
    println!(
        "{}",
        format_table(
            &["Technique", "Features", "Label", "DRE", "rMSE (W)"],
            &rows
        )
    );
    let path = write_csv(
        "fig4_prime_sweep.csv",
        &["technique", "features", "dre", "rmse_w"],
        &csv,
    );
    println!("CSV written to {}", path.display());

    // Shape checks: nonlinear techniques beat the linear model decisively
    // on the CPU-bound workload, even with CPU utilization alone.
    let dre = |t: ModelTechnique, f: &str| {
        cells
            .iter()
            .find(|c| c.technique == t && c.feature_label == f)
            .map(|c| c.outcome.avg_dre())
    };
    let lu = dre(ModelTechnique::Linear, "U").expect("LU cell");
    let pu = dre(ModelTechnique::PiecewiseLinear, "U").expect("PU cell");
    println!(
        "\nlinear/CPU-only {} vs piecewise/CPU-only {}",
        pct(lu),
        pct(pu)
    );
    assert!(
        pu < lu,
        "piecewise on CPU-only should beat linear on CPU-only for Prime"
    );
    let best = chaos_core::sweep::best_cell(&cells).expect("cells nonempty");
    assert!(
        best.outcome.avg_dre() < 0.12,
        "best Prime DRE {} exceeds the paper's 12% bound",
        best.outcome.avg_dre()
    );
    assert!(
        best.technique != ModelTechnique::Linear,
        "the best Prime cell should use a nonlinear technique"
    );

    chaos_bench::obs_finish(
        "fig4_prime_sweep",
        Some(cfg.cluster_seed),
        serde_json::to_string(&cfg).ok(),
    );
}
