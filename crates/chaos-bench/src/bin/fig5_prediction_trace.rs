//! Figure 5: worst-case full-system power prediction for the desktop
//! (Athlon) cluster — a strawman scaled single-machine linear model on
//! CPU utilization alone vs the cluster quadratic model on the general
//! feature set.
//!
//! The paper's claim: the strawman "does not predict the upper ~20% of
//! the cluster power", while the composed quadratic model covers the
//! whole dynamic range. As in the paper, this is the *worst case*: the
//! strawman is whichever single machine's scaled model tracks the top of
//! the range worst — exactly the risk of assuming any one machine
//! represents the cluster.

use chaos_bench::{pct, watts, write_csv};
use chaos_core::compose::ClusterPowerModel;
use chaos_core::dataset::{machine_dataset, pooled_dataset};
use chaos_core::features::FeatureSpec;
use chaos_core::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};

/// Mean prediction over the top-decile actual-power seconds, normalized to
/// the actual mean over those seconds (both above idle): how much of the
/// top of the dynamic range the model reproduces.
fn top_decile_coverage(pred: &[f64], actual: &[f64], idle: f64) -> f64 {
    let mut order: Vec<usize> = (0..actual.len()).collect();
    order.sort_by(|&i, &j| actual[i].partial_cmp(&actual[j]).expect("finite power"));
    let top = &order[(actual.len() * 9) / 10..];
    let mean = |v: &[f64], idx: &[usize]| idx.iter().map(|&i| v[i]).sum::<f64>() / idx.len() as f64;
    (mean(pred, top) - idle) / (mean(actual, top) - idle)
}

fn main() {
    chaos_bench::obs_init("fig5_prediction_trace");
    let platform = Platform::Athlon;
    let cluster = Cluster::homogeneous(platform, 5, 2012);
    let catalog = CounterCatalog::for_platform(&platform.spec());
    let cfg = SimConfig::paper();

    // Train on two runs, test on a third — separate runs, as always.
    // PageRank is the workload with the most power variation.
    let train: Vec<RunTrace> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::PageRank, &cfg, 900 + r).unwrap())
        .collect();
    let test = collect_run(&cluster, &catalog, Workload::PageRank, &cfg, 950).unwrap();
    let actual = test.cluster_measured_power();
    let idle = cluster.idle_power();

    // CHAOS: pooled quadratic model on the general feature set, composed
    // over the cluster (Eq. 5).
    let gen_spec = FeatureSpec::general(&catalog);
    let pooled = pooled_dataset(&train, &gen_spec)
        .expect("pooled dataset")
        .thinned(2_500);
    let opts = FitOptions::paper().with_freq_column(gen_spec.freq_column(&catalog));
    let quad = FittedModel::fit(ModelTechnique::Quadratic, &pooled.x, &pooled.y, &opts)
        .expect("quadratic fits");
    let chaos = ClusterPowerModel::homogeneous(platform, gen_spec.clone(), quad);
    let chaos_pred = chaos.predict_cluster(&test).expect("prediction succeeds");

    // Strawman: for each machine, a linear CPU-utilization-only model
    // scaled by the machine count and driven by mean cluster utilization —
    // the literature's cluster model. Keep the worst case.
    let cpu_spec = FeatureSpec::cpu_only(&catalog);
    let util_idx = cpu_spec.counters[0];
    let mean_util: Vec<f64> = (0..test.seconds())
        .map(|t| {
            test.machines
                .iter()
                .map(|m| m.counters[t][util_idx])
                .sum::<f64>()
                / test.machines.len() as f64
        })
        .collect();
    let mut worst: Option<(usize, Vec<f64>, f64)> = None;
    for mid in 0..cluster.len() {
        let ds = machine_dataset(&train, &cpu_spec, mid).expect("machine dataset");
        let lin = FittedModel::fit(ModelTechnique::Linear, &ds.x, &ds.y, &FitOptions::paper())
            .expect("strawman fits");
        let pred: Vec<f64> = mean_util
            .iter()
            .map(|&u| cluster.len() as f64 * lin.predict_row(&[u]).expect("predict"))
            .collect();
        let cov = top_decile_coverage(&pred, &actual, idle);
        if worst.as_ref().is_none_or(|(_, _, c)| cov < *c) {
            worst = Some((mid, pred, cov));
        }
    }
    let (worst_machine, strawman_pred, strawman_coverage) = worst.expect("cluster non-empty");
    let chaos_coverage = top_decile_coverage(&chaos_pred, &actual, idle);

    let csv: Vec<Vec<String>> = (0..actual.len())
        .map(|t| {
            vec![
                t.to_string(),
                format!("{:.1}", actual[t]),
                format!("{:.1}", chaos_pred[t]),
                format!("{:.1}", strawman_pred[t]),
            ]
        })
        .collect();
    let path = write_csv(
        "fig5_prediction_trace.csv",
        &[
            "second",
            "actual_w",
            "chaos_quadratic_w",
            "strawman_linear_w",
        ],
        &csv,
    );

    let peak = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let rmse_chaos = chaos_stats::metrics::rmse(&chaos_pred, &actual).unwrap();
    let rmse_straw = chaos_stats::metrics::rmse(&strawman_pred, &actual).unwrap();

    println!(
        "Figure 5: Athlon cluster, PageRank test run ({} s), worst-case strawman = machine {}\n",
        actual.len(),
        worst_machine
    );
    println!("actual peak:        {}", watts(peak(&actual)));
    println!(
        "CHAOS quadratic:    top-decile coverage {}, rMSE {:.1} W",
        pct(chaos_coverage),
        rmse_chaos
    );
    println!(
        "strawman linear:    top-decile coverage {}, rMSE {:.1} W",
        pct(strawman_coverage),
        rmse_straw
    );
    println!("CSV written to {}", path.display());

    // Shape checks: the worst-case strawman misses a sizable chunk of the
    // top of the range; the composed quadratic model does not.
    assert!(
        strawman_coverage < 0.92,
        "strawman should miss the top of the range, covered {}",
        pct(strawman_coverage)
    );
    assert!(
        chaos_coverage > strawman_coverage + 0.05,
        "CHAOS ({}) should cover clearly more of the top than the strawman ({})",
        pct(chaos_coverage),
        pct(strawman_coverage)
    );
    assert!(
        rmse_chaos < rmse_straw,
        "CHAOS should beat the strawman on rMSE"
    );

    chaos_bench::obs_finish(
        "fig5_prediction_trace",
        Some(2012),
        serde_json::to_string(&cfg).ok(),
    );
}
