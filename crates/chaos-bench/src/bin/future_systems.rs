//! Future-systems experiments from the paper's Discussion and Conclusion.
//!
//! 1. **Independent per-core DVFS** — "Future systems with the ability to
//!    operate cores fully independently will have less-correlated core
//!    frequencies (less than 80%) and will require individual core
//!    frequencies as features." We build an Opteron variant whose cores
//!    run their own governors, verify the cross-core frequency
//!    correlation collapses, and show a model restricted to core 0's
//!    frequency loses accuracy relative to one with all core frequencies.
//!
//! 2. **Energy proportionality** — "As future systems become more
//!    energy-proportional with larger dynamic power ranges and less
//!    static power, accurately capturing the dynamic range will be
//!    increasingly important." We rebuild the Opteron with idle at 20% of
//!    peak and show that the %-of-total-power metric keeps flattering the
//!    model while DRE (and absolute watts at stake) grows.

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::dataset::pooled_dataset;
use chaos_core::eval::EvalConfig;
use chaos_core::features::FeatureSpec;
use chaos_core::models::{FittedModel, ModelTechnique};
use chaos_counters::{CounterCatalog, CounterSynth, RunTrace};
use chaos_sim::{Machine, MachineVariation, Platform, PlatformSpec, PowerMeter};
use chaos_stats::{corr, metrics};
use chaos_workloads::{simulate, SimConfig, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Collects runs on a custom spec (the stock collector only knows the six
/// builtin platforms).
fn collect_custom(
    spec: &PlatformSpec,
    n_machines: usize,
    workload: Workload,
    seed: u64,
) -> RunTrace {
    let catalog = CounterCatalog::for_platform(spec);
    let machines: Vec<Machine> = (0..n_machines)
        .map(|id| {
            let mut rng = ChaCha8Rng::seed_from_u64(977 ^ ((id as u64 + 1) * 0x9E37_79B9));
            Machine::new(spec.clone(), id, MachineVariation::sample(&mut rng))
        })
        .collect();
    // Reuse the stock scheduler through a same-size builtin cluster (slot
    // counts match: 8 cores either way).
    let sched_cluster = chaos_sim::Cluster::homogeneous(spec.platform, n_machines, 977);
    let demand = simulate(&sched_cluster, workload, &SimConfig::paper(), seed);

    let mut out_machines = Vec::new();
    for (mi, machine) in machines.iter().enumerate() {
        let mseed = 977u64 ^ (mi as u64 + 1).wrapping_mul(0xD1B5_4A32);
        let rseed = seed ^ (mi as u64 + 1).wrapping_mul(0xA076_1D64);
        let mut synth = CounterSynth::with_seeds(&catalog, spec, mseed, rseed);
        let mut gov = ChaCha8Rng::seed_from_u64(rseed + 1);
        let mut met = ChaCha8Rng::seed_from_u64(rseed + 2);
        let meter = PowerMeter::sample(&mut ChaCha8Rng::seed_from_u64(mseed + 3));
        let mut thermal = chaos_sim::ThermalModel::new();
        let mut trng = ChaCha8Rng::seed_from_u64(rseed + 4);
        let mut counters = Vec::new();
        let mut measured = Vec::new();
        let mut truth = Vec::new();
        for d in demand.machine(mi) {
            let state = machine.apply_demand(d, &mut gov);
            let p = machine.true_power(&state)
                + machine.dynamic_range() * thermal.step(state.cpu_utilization(), &mut trng);
            counters.push(synth.step(&catalog, &state));
            truth.push(p);
            measured.push(meter.read(p, &mut met));
        }
        out_machines.push(chaos_counters::MachineRunTrace {
            machine_id: mi,
            platform: spec.platform,
            counters,
            measured_power_w: measured,
            true_power_w: truth,
            validity: chaos_counters::ValidityMask::default(),
        });
    }
    RunTrace {
        workload: workload.name().to_string(),
        run_seed: seed,
        machines: out_machines,
        membership: Vec::new(),
    }
}

fn freq_spec(catalog: &CounterCatalog, cores: &[usize], extra: &FeatureSpec) -> FeatureSpec {
    let mut counters = extra.counters.clone();
    for &c in cores {
        let idx = catalog
            .index_of(&format!(
                "Processor Performance\\Processor Frequency (Processor_{c})"
            ))
            .expect("frequency counter exists");
        if !counters.contains(&idx) {
            counters.push(idx);
        }
    }
    FeatureSpec::new(counters)
}

fn eval_spec(
    train: &[RunTrace],
    test: &[RunTrace],
    spec: &FeatureSpec,
    catalog: &CounterCatalog,
    range: (f64, f64),
) -> (f64, f64) {
    let cfg = EvalConfig::fast();
    let opts = cfg.fit.with_freq_column(spec.freq_column(catalog));
    let tr = pooled_dataset(train, spec)
        .expect("train")
        .thinned(cfg.max_train_rows);
    let te = pooled_dataset(test, spec).expect("test");
    let model =
        FittedModel::fit(ModelTechnique::Quadratic, &tr.x, &tr.y, &opts).expect("fit succeeds");
    let pred = model.predict(&te.x).expect("prediction");
    let dre = metrics::dynamic_range_error(&pred, &te.y, range.1, range.0).expect("dre");
    let pcterr = metrics::percent_error(&pred, &te.y).expect("pct");
    (dre, pcterr)
}

fn main() {
    chaos_bench::obs_init("future_systems");
    // ---- Part 1: independent per-core DVFS -----------------------------
    let base = Platform::Opteron.spec();
    let future = base.clone().with_independent_dvfs();
    let catalog = CounterCatalog::for_platform(&future);

    let runs: Vec<RunTrace> = (0..3)
        .map(|r| collect_custom(&future, 5, Workload::PageRank, 300 + r))
        .collect();

    // Cross-core frequency correlation on the future variant.
    let f0 = catalog
        .index_of("Processor Performance\\Processor Frequency (Processor_0)")
        .unwrap();
    let f4 = catalog
        .index_of("Processor Performance\\Processor Frequency (Processor_4)")
        .unwrap();
    let m = &runs[0].machines[0];
    let s0: Vec<f64> = m.counters.iter().map(|r| r[f0]).collect();
    let s4: Vec<f64> = m.counters.iter().map(|r| r[f4]).collect();
    let r_future = corr::pearson(&s0, &s4).unwrap();

    // Same measurement on the stock (chip-coordinated) Opteron.
    let stock_runs: Vec<RunTrace> = (0..1)
        .map(|r| collect_custom(&base, 5, Workload::PageRank, 300 + r))
        .collect();
    let ms = &stock_runs[0].machines[0];
    let t0: Vec<f64> = ms.counters.iter().map(|r| r[f0]).collect();
    let t4: Vec<f64> = ms.counters.iter().map(|r| r[f4]).collect();
    let r_stock = corr::pearson(&t0, &t4).unwrap();

    // Model accuracy: utilization + core-0 frequency vs + all core
    // frequencies, on the future variant.
    let util = FeatureSpec::cpu_only(&catalog);
    let core0 = freq_spec(&catalog, &[0], &util);
    let allcores = freq_spec(&catalog, &(0..8).collect::<Vec<_>>(), &util);
    let machine = Machine::new(future.clone(), 0, MachineVariation::nominal());
    let range = (machine.idle_power(), machine.max_power());
    let (dre_core0, _) = eval_spec(&runs[..1], &runs[1..], &core0, &catalog, range);
    let (dre_all, _) = eval_spec(&runs[..1], &runs[1..], &allcores, &catalog, range);

    println!("Future systems, part 1: independent per-core DVFS (Opteron variant)\n");
    let rows = vec![
        vec![
            "core0-core4 freq correlation".to_string(),
            format!("{r_stock:.3}"),
            format!("{r_future:.3}"),
        ],
        vec![
            "QC DRE, util + core-0 freq".to_string(),
            "-".to_string(),
            pct(dre_core0),
        ],
        vec![
            "QC DRE, util + all core freqs".to_string(),
            "-".to_string(),
            pct(dre_all),
        ],
    ];
    println!(
        "{}",
        format_table(&["Quantity", "2012 Opteron", "Future variant"], &rows)
    );
    write_csv(
        "future_percore_dvfs.csv",
        &["quantity", "stock", "future"],
        &[
            vec![
                "freq_corr".into(),
                format!("{r_stock:.4}"),
                format!("{r_future:.4}"),
            ],
            vec!["dre_core0".into(), "".into(), format!("{dre_core0:.4}")],
            vec!["dre_allcores".into(), "".into(), format!("{dre_all:.4}")],
        ],
    );

    assert!(
        r_future < 0.8,
        "independent DVFS should push cross-core correlation below the paper's 80%: {r_future}"
    );
    assert!(
        r_future < r_stock - 0.1,
        "future variant must be clearly less correlated ({r_future} vs {r_stock})"
    );
    assert!(
        dre_all < dre_core0,
        "all-core frequencies should beat core-0-only on the future variant"
    );

    // ---- Part 2: energy proportionality --------------------------------
    let proportional = base.clone().energy_proportional(0.2);
    let prop_runs: Vec<RunTrace> = (0..3)
        .map(|r| collect_custom(&proportional, 5, Workload::PageRank, 700 + r))
        .collect();
    let pm = Machine::new(proportional.clone(), 0, MachineVariation::nominal());
    let prop_range = (pm.idle_power(), pm.max_power());
    let gen_spec = FeatureSpec::general(&catalog);
    let (dre_stock, pct_stock) =
        eval_spec(&stock_runs[..1], &runs[1..2], &gen_spec, &catalog, range);
    let (dre_prop, pct_prop) = eval_spec(
        &prop_runs[..1],
        &prop_runs[1..],
        &gen_spec,
        &catalog,
        prop_range,
    );

    println!("\nFuture systems, part 2: energy proportionality (idle = 20% of peak)\n");
    let rows2 = vec![
        vec![
            "dynamic range (W)".to_string(),
            format!("{:.0}", range.1 - range.0),
            format!("{:.0}", prop_range.1 - prop_range.0),
        ],
        vec![
            "% err (rMSE / mean power)".to_string(),
            pct(pct_stock),
            pct(pct_prop),
        ],
        vec!["DRE".to_string(), pct(dre_stock), pct(dre_prop)],
    ];
    println!(
        "{}",
        format_table(
            &["Quantity", "2012 Opteron", "Proportional variant"],
            &rows2
        )
    );
    write_csv(
        "future_energy_proportional.csv",
        &["quantity", "stock", "proportional"],
        &[
            vec![
                "range_w".into(),
                format!("{:.1}", range.1 - range.0),
                format!("{:.1}", prop_range.1 - prop_range.0),
            ],
            vec![
                "pct_err".into(),
                format!("{pct_stock:.4}"),
                format!("{pct_prop:.4}"),
            ],
            vec![
                "dre".into(),
                format!("{dre_stock:.4}"),
                format!("{dre_prop:.4}"),
            ],
        ],
    );

    // The proportional machine has ~3x the dynamic range; relative-to-mean
    // error alone would hide that more watts are now at stake per DRE
    // point. We assert the ranges behave as constructed.
    assert!(prop_range.1 - prop_range.0 > 2.0 * (range.1 - range.0));
    println!(
        "\nper DRE point, watts at stake: {:.1} W (2012) vs {:.1} W (proportional) — \
         the conclusion's point that capturing the dynamic range grows in importance",
        (range.1 - range.0) / 100.0,
        (prop_range.1 - prop_range.0) / 100.0
    );

    chaos_bench::obs_finish("future_systems", Some(300), None);
}
