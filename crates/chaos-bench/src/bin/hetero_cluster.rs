//! Section V-B, "Heterogeneous clusters": compose per-platform machine
//! models over a 10-machine Core2 + Opteron cluster and show the same
//! worst-case ~12% DRE as the homogeneous clusters.
//!
//! The paper scales the data so each machine keeps the same work, applies
//! the appropriate machine model per machine, and sums (Eq. 5).

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::compose::ClusterPowerModel;
use chaos_core::dataset::pooled_dataset;
use chaos_core::features::FeatureSpec;
use chaos_core::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_counters::{collect_run, collect_run_mixed, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};

fn main() {
    chaos_bench::obs_init("hetero_cluster");
    let cfg = SimConfig::paper();
    let platforms = [Platform::Core2, Platform::Opteron];

    // Train per-platform machine models on the *homogeneous* clusters, as
    // the paper does, then deploy them on the mixed cluster.
    let mut composed = ClusterPowerModel::new();
    for platform in platforms {
        let cluster = Cluster::homogeneous(platform, 5, 2012);
        let catalog = CounterCatalog::for_platform(&platform.spec());
        let mut train: Vec<RunTrace> = Vec::new();
        for (wi, w) in Workload::ALL.iter().enumerate() {
            for r in 0..2 {
                train.push(
                    collect_run(&cluster, &catalog, *w, &cfg, 7_000 + (wi * 10 + r) as u64)
                        .expect("collection succeeds"),
                );
            }
        }
        let spec = FeatureSpec::general(&catalog);
        let ds = pooled_dataset(&train, &spec)
            .expect("pooled dataset")
            .thinned(2_500);
        let opts = FitOptions::paper().with_freq_column(spec.freq_column(&catalog));
        let model =
            FittedModel::fit(ModelTechnique::Quadratic, &ds.x, &ds.y, &opts).expect("model fits");
        composed.insert(platform, spec, model);
    }

    // The 10-machine heterogeneous cluster (work per machine scales with
    // cluster size inside the generators).
    let hetero = Cluster::heterogeneous(&[(Platform::Core2, 5), (Platform::Opteron, 5)], 77);
    let hetero_range: f64 = hetero.max_power() - hetero.idle_power();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut worst: f64 = 0.0;
    for workload in Workload::ALL {
        for run in 0..2 {
            let trace = collect_run_mixed(&hetero, workload, &cfg, 8_000 + run);
            let actual = trace.cluster_measured_power();
            let pred = composed.predict_cluster(&trace).expect("prediction");
            let rmse = chaos_stats::metrics::rmse(&pred, &actual).unwrap();
            let dre = rmse / hetero_range;
            worst = worst.max(dre);
            rows.push(vec![
                workload.name().to_string(),
                run.to_string(),
                format!("{:.1}", rmse),
                pct(dre),
            ]);
            csv.push(vec![
                workload.name().to_string(),
                run.to_string(),
                format!("{rmse:.2}"),
                format!("{dre:.4}"),
            ]);
        }
    }

    println!("Heterogeneous 10-machine cluster (5x Core2 + 5x Opteron)\n");
    println!(
        "{}",
        format_table(
            &["Workload", "Run", "Cluster rMSE (W)", "Cluster DRE"],
            &rows
        )
    );
    println!("worst-case DRE: {} (paper: <= 12%)", pct(worst));
    let path = write_csv(
        "hetero_cluster.csv",
        &["workload", "run", "cluster_rmse_w", "cluster_dre"],
        &csv,
    );
    println!("CSV written to {}", path.display());

    assert!(
        worst <= 0.12,
        "heterogeneous worst-case DRE {} exceeds the paper's 12%",
        pct(worst)
    );

    chaos_bench::obs_finish(
        "hetero_cluster",
        Some(2012),
        serde_json::to_string(&cfg).ok(),
    );
}
