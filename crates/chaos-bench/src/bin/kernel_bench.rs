//! Benchmark: the raw-speed numeric kernels behind fitting and serving.
//!
//! Times the four kernels reworked for throughput — all pinned
//! bit-identical to their scalar references by `tests/kernel_identity.rs`
//! and the golden-trace suites:
//!
//! 1. **SoA batch prediction** — [`chaos_stats::batch::CoefBlock`]
//!    scoring a fleet with one column-major loop, vs the per-machine
//!    scalar zip-dot.
//! 2. **Blocked Gram accumulation** — the cache-tiled
//!    [`chaos_stats::gram::GramCache`] vs the row-at-a-time reference.
//! 3. **MARS fit** — dominated by hinge-column construction, now fed
//!    from a column-major transpose of the design matrix.
//! 4. **Streaming inference** — synthetic fleet replayed through
//!    [`chaos_stream::StreamEngine::push_second_into`] with a mid-run
//!    power shift so refits fire and adapted models route through the
//!    batched predictor; reports samples/sec.
//!
//! Every input is deterministic (no `rand`), so runs are comparable
//! across machines of the same class. Results land in
//! `results/BENCH_kernels.json` (hand-formatted — this binary must run
//! even where serde_json is unavailable).
//!
//! `kernel_bench --check <baseline.json>` additionally reads the
//! committed baseline's streaming samples/sec *before* overwriting it
//! and exits non-zero if the fresh number regressed by more than 20% —
//! the CI smoke gate.

use chaos_bench::{format_table, results_dir};
use chaos_core::robust::{EstimateTier, RobustConfig, RobustEstimator};
use chaos_core::{FeatureSpec, ModelTechnique};
use chaos_counters::{MachineRunTrace, RunTrace, ValidityMask};
use chaos_mars::{MarsConfig, MarsModel};
use chaos_sim::Platform;
use chaos_stats::batch::CoefBlock;
use chaos_stats::gram::GramCache;
use chaos_stats::Matrix;
use chaos_stream::{DriftConfig, StreamConfig, StreamEngine, StreamOutput};
use std::hint::black_box;
use std::time::Instant;

/// Deterministic pseudo-random double in [-0.5, 0.5).
fn det(i: usize) -> f64 {
    ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
}

const ALLOWED_DROP: f64 = 0.20;

struct BatchResult {
    scalar_ns_per_pred: f64,
    batch_ns_per_pred: f64,
    speedup: f64,
}

fn bench_batch_predict() -> BatchResult {
    let (m, k) = (4096usize, 8usize);
    let iters = 400usize;
    let mut coefs = CoefBlock::new(k);
    let mut rows = CoefBlock::new(k);
    let mut coef_vecs = Vec::with_capacity(m);
    let mut row_vecs = Vec::with_capacity(m);
    for j in 0..m {
        let cv: Vec<f64> = (0..k).map(|f| 10.0 * det(j * k + f)).collect();
        let rv: Vec<f64> = (0..k).map(|f| 4.0 * det(7919 + j * k + f)).collect();
        coefs.push(&cv).unwrap();
        rows.push(&rv).unwrap();
        coef_vecs.push(cv);
        row_vecs.push(rv);
    }
    coefs.seal();
    rows.seal();

    let mut scalar_out = vec![0.0; m];
    let t0 = Instant::now();
    for _ in 0..iters {
        for (j, (cv, rv)) in coef_vecs.iter().zip(&row_vecs).enumerate() {
            let mut acc = 0.0;
            for (c, x) in cv.iter().zip(rv) {
                acc += c * x;
            }
            scalar_out[j] = acc;
        }
        black_box(scalar_out[m - 1]);
    }
    let scalar_ns = t0.elapsed().as_secs_f64() * 1e9 / (iters * m) as f64;

    let mut batch_out = vec![0.0; m];
    let t0 = Instant::now();
    for _ in 0..iters {
        coefs.predict_into(&rows, &mut batch_out).unwrap();
        black_box(batch_out[m - 1]);
    }
    let batch_ns = t0.elapsed().as_secs_f64() * 1e9 / (iters * m) as f64;

    for (j, (s, b)) in scalar_out.iter().zip(&batch_out).enumerate() {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "machine {j}: batch predict diverged from scalar"
        );
    }

    BatchResult {
        scalar_ns_per_pred: scalar_ns,
        batch_ns_per_pred: batch_ns,
        speedup: scalar_ns / batch_ns,
    }
}

struct GramResult {
    reference_ms: f64,
    blocked_ms: f64,
    speedup: f64,
}

fn bench_gram() -> GramResult {
    let (n, p) = (4000usize, 24usize);
    let iters = 10usize;
    let xr: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..p).map(|j| 6.0 * det(i * p + j)).collect())
        .collect();
    let x = Matrix::from_rows(&xr).unwrap();
    let y: Vec<f64> = (0..n).map(|i| 100.0 * det(31337 + i)).collect();

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(GramCache::new_reference(&x, &y).unwrap());
    }
    let reference_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(GramCache::new(&x, &y).unwrap());
    }
    let blocked_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let reference = GramCache::new_reference(&x, &y).unwrap();
    let blocked = GramCache::new(&x, &y).unwrap();
    let (rg, rxty, ryty) = reference.products();
    let (bg, bxty, byty) = blocked.products();
    assert!(
        rg.iter().zip(bg).all(|(a, b)| a.to_bits() == b.to_bits())
            && rxty
                .iter()
                .zip(bxty)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && ryty.to_bits() == byty.to_bits(),
        "blocked Gram diverged from reference"
    );

    GramResult {
        reference_ms,
        blocked_ms,
        speedup: reference_ms / blocked_ms,
    }
}

fn bench_mars_fit() -> f64 {
    let (n, p) = (2000usize, 6usize);
    let iters = 3usize;
    let xr: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..p).map(|j| 8.0 * det(i * p + j)).collect())
        .collect();
    let x = Matrix::from_rows(&xr).unwrap();
    // Piecewise response over two variables so the forward pass has real
    // hinge structure to discover.
    let y: Vec<f64> = xr
        .iter()
        .enumerate()
        .map(|(i, r)| {
            5.0 + 2.0 * (r[0] - 1.0).max(0.0) - 1.5 * (-1.0 - r[1]).max(0.0) + 0.05 * det(i + 999)
        })
        .collect();

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap());
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

const WIDTH: usize = 6;
const MACHINES: usize = 8;
const SECONDS: usize = 600;
const SHIFT_AT_S: usize = 200;

fn synthetic_trace(
    machines: usize,
    seconds: usize,
    salt: usize,
    shift_at: Option<usize>,
) -> RunTrace {
    let machine = |id: usize| {
        let mut counters = Vec::with_capacity(seconds);
        let mut measured = Vec::with_capacity(seconds);
        for t in 0..seconds {
            let s = salt + id * 1_000_000 + t * WIDTH;
            let row: Vec<f64> = (0..WIDTH).map(|j| 50.0 + 40.0 * det(s + j)).collect();
            let mut y = 60.0
                + 0.5 * row[0]
                + 0.3 * row[1]
                + 0.2 * row[2]
                + 0.1 * row[3]
                + 0.05 * row[4]
                + det(s + 77);
            if shift_at.is_some_and(|at| t >= at) {
                y *= 1.3;
            }
            counters.push(row);
            measured.push(y);
        }
        MachineRunTrace {
            machine_id: id,
            platform: Platform::Core2,
            counters,
            measured_power_w: measured,
            true_power_w: vec![0.0; seconds],
            validity: ValidityMask {
                counters: vec![vec![true; WIDTH]; seconds],
                meter: vec![true; seconds],
                alive: vec![true; seconds],
            },
        }
    };
    RunTrace {
        workload: "kernel-bench".to_string(),
        run_seed: 0,
        machines: (0..machines).map(machine).collect(),
        membership: Vec::new(),
    }
}

struct StreamResult {
    samples_per_sec: f64,
    machine_samples_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    refits: usize,
}

fn bench_streaming() -> StreamResult {
    let train = synthetic_trace(2, 240, 9001, None);
    let spec = FeatureSpec::new((0..WIDTH).collect());
    let estimator = RobustEstimator::fit(
        &[train],
        &spec,
        None,
        10.0,
        RobustConfig {
            technique: ModelTechnique::Linear,
            ..RobustConfig::fast()
        },
    )
    .expect("offline fit");

    // Mid-run meter shift: drift fires, coefficient refreshes install
    // full-width adapted linear models, and the batched SoA path takes
    // over scoring.
    let run = synthetic_trace(MACHINES, SECONDS, 424_242, Some(SHIFT_AT_S));
    let config = StreamConfig {
        drift: DriftConfig::fast(),
        ..StreamConfig::fast()
    };
    let mut engine =
        StreamEngine::new(estimator, MACHINES, 200.0, 10.0, 0.05, config).expect("engine");
    let mut out = StreamOutput {
        t: 0,
        cluster_power_w: 0.0,
        worst_tier: EstimateTier::Full,
        active_machines: 0,
        machines: Vec::new(),
    };

    let mut latencies_us = Vec::with_capacity(SECONDS);
    let t0 = Instant::now();
    for t in 0..SECONDS {
        let s0 = Instant::now();
        engine.push_second_into(&run, t, &mut out).expect("tick");
        latencies_us.push(s0.elapsed().as_secs_f64() * 1e6);
        assert!(out.cluster_power_w.is_finite());
    }
    let total_s = t0.elapsed().as_secs_f64();
    let refits = engine.refit_outcomes().len();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let pct = |q: f64| {
        let idx = ((q / 100.0) * (latencies_us.len() - 1) as f64).round() as usize;
        latencies_us[idx.min(latencies_us.len() - 1)]
    };

    StreamResult {
        samples_per_sec: SECONDS as f64 / total_s,
        machine_samples_per_sec: (SECONDS * MACHINES) as f64 / total_s,
        p50_us: pct(50.0),
        p99_us: pct(99.0),
        refits,
    }
}

/// Extracts `"samples_per_sec": <number>` from previously written
/// results without a JSON parser (serde_json may be stubbed out in
/// restricted build environments).
fn parse_baseline_samples_per_sec(text: &str) -> Option<f64> {
    let key = "\"samples_per_sec\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = match args.get(1).map(String::as_str) {
        Some("--check") => Some(
            args.get(2)
                .expect("--check requires a baseline path")
                .clone(),
        ),
        Some(other) => {
            eprintln!("unknown argument {other}; usage: kernel_bench [--check <baseline.json>]");
            std::process::exit(2);
        }
        None => None,
    };
    let baseline = baseline_path.as_ref().map(|p| {
        let text = std::fs::read_to_string(p).expect("read baseline");
        parse_baseline_samples_per_sec(&text)
            .expect("baseline JSON lacks a streaming samples_per_sec")
    });

    let batch = bench_batch_predict();
    let gram = bench_gram();
    let mars_fit_ms = bench_mars_fit();
    let stream = bench_streaming();

    println!("Raw-speed kernels (deterministic inputs, bit-identity asserted inline)\n");
    println!(
        "{}",
        format_table(
            &["Kernel", "Metric", "Value"],
            &[
                vec![
                    "soa_batch_predict".into(),
                    "scalar ns/pred".into(),
                    format!("{:.2}", batch.scalar_ns_per_pred),
                ],
                vec![
                    "soa_batch_predict".into(),
                    "batch ns/pred".into(),
                    format!("{:.2}", batch.batch_ns_per_pred),
                ],
                vec![
                    "soa_batch_predict".into(),
                    "speedup".into(),
                    format!("{:.2}x", batch.speedup),
                ],
                vec![
                    "blocked_gram".into(),
                    "reference ms".into(),
                    format!("{:.2}", gram.reference_ms),
                ],
                vec![
                    "blocked_gram".into(),
                    "blocked ms".into(),
                    format!("{:.2}", gram.blocked_ms),
                ],
                vec![
                    "blocked_gram".into(),
                    "speedup".into(),
                    format!("{:.2}x", gram.speedup),
                ],
                vec![
                    "mars_fit".into(),
                    "fit ms".into(),
                    format!("{mars_fit_ms:.1}")
                ],
                vec![
                    "streaming_inference".into(),
                    "samples/sec".into(),
                    format!("{:.0}", stream.samples_per_sec),
                ],
                vec![
                    "streaming_inference".into(),
                    "machine-samples/sec".into(),
                    format!("{:.0}", stream.machine_samples_per_sec),
                ],
                vec![
                    "streaming_inference".into(),
                    "p50 / p99 latency".into(),
                    format!("{:.1} / {:.1} us", stream.p50_us, stream.p99_us),
                ],
                vec![
                    "streaming_inference".into(),
                    "refits".into(),
                    format!("{}", stream.refits),
                ],
            ]
        )
    );

    let json = format!(
        r#"{{
  "bench": "kernels",
  "soa_batch_predict": {{
    "machines": 4096,
    "features": 8,
    "scalar_ns_per_pred": {:.3},
    "batch_ns_per_pred": {:.3},
    "speedup": {:.3},
    "bit_identical": true
  }},
  "blocked_gram": {{
    "rows": 4000,
    "cols": 24,
    "reference_ms": {:.3},
    "blocked_ms": {:.3},
    "speedup": {:.3},
    "bit_identical": true
  }},
  "mars_fit": {{
    "rows": 2000,
    "cols": 6,
    "fit_ms": {:.3}
  }},
  "streaming_inference": {{
    "machines": {MACHINES},
    "seconds": {SECONDS},
    "shift_at_s": {SHIFT_AT_S},
    "samples_per_sec": {:.1},
    "machine_samples_per_sec": {:.1},
    "latency_us": {{ "p50": {:.2}, "p99": {:.2} }},
    "refits": {}
  }}
}}
"#,
        batch.scalar_ns_per_pred,
        batch.batch_ns_per_pred,
        batch.speedup,
        gram.reference_ms,
        gram.blocked_ms,
        gram.speedup,
        mars_fit_ms,
        stream.samples_per_sec,
        stream.machine_samples_per_sec,
        stream.p50_us,
        stream.p99_us,
        stream.refits,
    );
    let path = results_dir().join("BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write results");
    println!("\nJSON written to {}", path.display());

    if let Some(base) = baseline {
        let floor = base * (1.0 - ALLOWED_DROP);
        println!(
            "[check] streaming samples/sec: fresh {:.0} vs baseline {:.0} (floor {:.0})",
            stream.samples_per_sec, base, floor
        );
        if stream.samples_per_sec < floor {
            eprintln!(
                "[check] FAIL: streaming throughput regressed more than {:.0}%",
                ALLOWED_DROP * 100.0
            );
            std::process::exit(1);
        }
        println!("[check] PASS");
    }
}
