//! Benchmark: chaos-serve fleet-scale ingest throughput.
//!
//! Boots an in-process [`Server`] per fleet size, drives it through the
//! full wire pipeline (JSON encode → HTTP-framed request → routing →
//! sharded tick → JSON response), and reports ingest throughput in
//! machine-samples/sec plus per-tick latency percentiles. The sample
//! stream is one simulated base run tiled out to each fleet size with
//! [`RunTrace::tiled_to`], so the trace content is identical across
//! sizes and the cost scales only with the fleet.
//!
//! Before any timing, each fleet is driven twice — serial and 4-thread
//! sharded — and every response body is hashed; the digests must match
//! bit-for-bit (the wire determinism contract, same gate the golden
//! trace pins). Results land in `results/BENCH_serve.json`, uploaded
//! as a CI artifact by the serve job.
//!
//! Defaults cover fleets of 5/50/500; `--fleets 5,500,5000` scales the
//! sweep up to the five-thousand-machine point from the issue brief
//! (minutes of wall time, so not the CI default).

use chaos_bench::{format_table, results_dir};
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_serve::bootstrap::ServeOptions;
use chaos_serve::{Request, Server, StreamConfig};
use chaos_sim::{FleetSpec, Platform};
use chaos_stats::ExecPolicy;
use serde_json::json;
use std::time::Instant;

const BASE_MACHINES: usize = 5;
const SEED: u64 = 4200;
const DEFAULT_FLEETS: [usize; 3] = [5, 50, 500];
const DEFAULT_SECONDS: usize = 60;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pre-encoded ingest bodies: one request per tick, built outside the
/// timed loop so the benchmark measures the server, not the client.
fn encode_ticks(run: &RunTrace, seconds: usize) -> Vec<Vec<u8>> {
    let n = seconds.min(run.seconds());
    (0..n)
        .map(|t| {
            let machines: Vec<_> = run
                .machines
                .iter()
                .map(|m| {
                    json!({
                        "machine_id": m.machine_id,
                        "counters": m.counters[t],
                        "power_w": m.measured_power_w[t],
                    })
                })
                .collect();
            serde_json::to_vec(&json!({"ticks": [{"t": t, "machines": machines}]}))
                .expect("encode tick")
        })
        .collect()
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h = (*h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

struct DriveResult {
    digest: u64,
    elapsed_s: f64,
    latencies_us: Vec<f64>,
}

fn drive(spec: FleetSpec, exec: ExecPolicy, bodies: &[Vec<u8>]) -> DriveResult {
    let opts = ServeOptions {
        stream: StreamConfig::fast(),
        ..ServeOptions::quick(spec)
    };
    let mut server = Server::new(opts, exec, None, 0).expect("boot server");
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut latencies_us = Vec::with_capacity(bodies.len());
    let start = Instant::now();
    for body in bodies {
        let req = Request {
            method: "POST".to_string(),
            path: "/v1/ingest".to_string(),
            body: body.clone(),
            close: false,
        };
        let tick_start = Instant::now();
        let resp = server.handle(&req);
        latencies_us.push(tick_start.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            resp.status,
            200,
            "ingest failed: {}",
            String::from_utf8_lossy(&resp.body)
        );
        fnv(&mut digest, &resp.body);
    }
    // Fold the read endpoints into the digest so the determinism gate
    // covers them too.
    for path in ["/v1/power", "/v1/machines", "/v1/stats"] {
        let resp = server.handle(&Request {
            method: "GET".to_string(),
            path: path.to_string(),
            body: Vec::new(),
            close: false,
        });
        assert_eq!(resp.status, 200);
        fnv(&mut digest, &resp.body);
    }
    DriveResult {
        digest,
        elapsed_s: start.elapsed().as_secs_f64(),
        latencies_us,
    }
}

fn parse_args() -> (Vec<usize>, usize) {
    let mut fleets: Vec<usize> = DEFAULT_FLEETS.to_vec();
    let mut seconds = DEFAULT_SECONDS;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--fleets" => {
                let spec = it.next().expect("--fleets needs a value");
                fleets = spec
                    .split(',')
                    .map(|s| s.trim().parse().expect("fleet size"))
                    .collect();
            }
            "--seconds" => {
                seconds = it
                    .next()
                    .expect("--seconds needs a value")
                    .parse()
                    .expect("seconds");
            }
            other => panic!("unknown flag {other:?} (supported: --fleets, --seconds)"),
        }
    }
    (fleets, seconds)
}

fn main() {
    let (fleets, seconds) = parse_args();
    println!("chaos-serve load generator: fleets {fleets:?}, {seconds}s each\n");

    // One base run, tiled out per fleet size.
    let base_spec = FleetSpec::new(Platform::Core2, BASE_MACHINES, 42);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let base_run = collect_run(
        &base_spec.cluster(),
        &catalog,
        chaos_workloads::Workload::Prime,
        &chaos_workloads::SimConfig::quick(),
        SEED,
    )
    .expect("collect base run");

    let mut rows = Vec::new();
    let mut report = Vec::new();
    for &fleet in &fleets {
        let spec = FleetSpec::new(Platform::Core2, fleet, 42);
        let run = base_run.tiled_to(fleet).expect("tile base run");
        let bodies = encode_ticks(&run, seconds);
        let ticks = bodies.len();

        let serial = drive(spec, ExecPolicy::Serial, &bodies);
        let sharded = drive(spec, ExecPolicy::Parallel { threads: 4 }, &bodies);
        assert_eq!(
            serial.digest, sharded.digest,
            "fleet {fleet}: serial and sharded responses diverged"
        );

        let mut sorted = sharded.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let p50 = percentile(&sorted, 50.0);
        let p99 = percentile(&sorted, 99.0);
        let samples = (ticks * fleet) as f64;
        let serial_sps = samples / serial.elapsed_s;
        let sharded_sps = samples / sharded.elapsed_s;

        rows.push(vec![
            fleet.to_string(),
            ticks.to_string(),
            format!("{serial_sps:.0}"),
            format!("{sharded_sps:.0}"),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
        ]);
        report.push(json!({
            "fleet": fleet,
            "ticks": ticks,
            "samples_per_sec_serial": serial_sps,
            "samples_per_sec_sharded4": sharded_sps,
            "tick_latency_us": { "p50": p50, "p99": p99 },
            "digest": format!("{:016x}", serial.digest),
        }));
    }

    println!(
        "{}",
        format_table(
            &[
                "fleet",
                "ticks",
                "serial samp/s",
                "shard4 samp/s",
                "p50 us",
                "p99 us",
            ],
            &rows,
        )
    );

    let out = json!({
        "bench": "serve_loadgen",
        "platform": "Core2",
        "workload": "prime",
        "base_machines": BASE_MACHINES,
        "seconds": seconds,
        "fleets": report,
        "policy_bit_identical": true,
    });
    let path = results_dir().join("BENCH_serve.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&out).expect("serialize results"),
    )
    .expect("write results");
    println!("\nJSON written to {}", path.display());

    chaos_bench::obs_finish("serve_loadgen", Some(SEED), None);
}
