//! Benchmark: streaming online-inference engine.
//!
//! Measures what the offline sweeps cannot: the per-sample cost of the
//! streaming path. A robust estimator is fitted offline, then a test
//! run — with a sustained 30% meter shift injected mid-run so the drift
//! detector and tiered refits actually fire — is replayed one second at
//! a time through [`chaos_stream::StreamEngine::push_second`], timing
//! every call. Reports throughput (samples/sec, where one sample is one
//! cluster-second across all machines), per-sample latency percentiles,
//! and how many refits fired at each tier.
//!
//! Before any timing, the shifted run is replayed under Serial and
//! 4-thread policies and the outputs (plus the full refit logs) are
//! asserted bit-identical — the same determinism contract the offline
//! engine holds. Results land in `results/BENCH_streaming.json`.

use chaos_bench::{format_table, results_dir};
use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stats::ExecPolicy;
use chaos_stream::{DriftConfig, StreamConfig, StreamEngine};
use chaos_workloads::{SimConfig, Workload};
use serde_json::json;
use std::time::Instant;

const MACHINES: usize = 4;
const SEED: u64 = 4100;
const SHIFT_AT_S: usize = 40;
const SHIFT_FACTOR: f64 = 1.3;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    }
}

fn engine(est: &RobustEstimator, cluster: &Cluster, exec: ExecPolicy) -> StreamEngine {
    let n = cluster.machines().len() as f64;
    StreamEngine::new(
        est.clone(),
        cluster.machines().len(),
        cluster.max_power() / n,
        cluster.idle_power() / n,
        0.05,
        stream_config().with_exec(exec),
    )
    .expect("engine construction")
}

fn main() {
    chaos_bench::obs_init("streaming_inference");
    let cluster = Cluster::homogeneous(Platform::Core2, MACHINES, SEED);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let sim = SimConfig::quick();
    let train: Vec<RunTrace> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::Prime, &sim, SEED + 1 + r).unwrap())
        .collect();
    let mut test = collect_run(&cluster, &catalog, Workload::Prime, &sim, SEED + 9).unwrap();
    let start = SHIFT_AT_S.min(test.seconds());
    for m in &mut test.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= SHIFT_FACTOR;
        }
    }

    let spec = FeatureSpec::general(&catalog);
    let cpu = strawman_position(&spec, &catalog);
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(spec.freq_column(&catalog)),
        ..RobustConfig::fast()
    };
    let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).expect("offline fit");

    // Determinism gate: serial and 4-thread replay must agree bit-for-bit
    // before any timing is trusted.
    let mut digests = Vec::new();
    for exec in [ExecPolicy::Serial, ExecPolicy::Parallel { threads: 4 }] {
        let mut eng = engine(&est, &cluster, exec);
        let outputs = eng.replay(&test).expect("replay");
        digests.push(format!(
            "{}|{}",
            serde_json::to_string(&outputs).unwrap(),
            serde_json::to_string(&eng.refit_outcomes()).unwrap()
        ));
    }
    assert!(
        digests.iter().all(|d| d == &digests[0]),
        "streaming replay differs across execution policies"
    );
    eprintln!("[determinism] serial and par4 replays bit-identical");

    // Timed pass: one push_second per cluster-second, serial policy, so
    // latencies reflect the per-sample critical path.
    let mut eng = engine(&est, &cluster, ExecPolicy::Serial);
    let mut latencies_us = Vec::with_capacity(test.seconds());
    let t0 = Instant::now();
    for t in 0..test.seconds() {
        let s0 = Instant::now();
        let out = eng.push_second(&test, t).expect("push_second");
        latencies_us.push(s0.elapsed().as_secs_f64() * 1e6);
        assert!(out.cluster_power_w.is_finite());
    }
    let total_s = t0.elapsed().as_secs_f64();
    let seconds = test.seconds();
    let samples_per_sec = seconds as f64 / total_s;

    let mut sorted = latencies_us.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99, max) = (
        percentile(&sorted, 50.0),
        percentile(&sorted, 99.0),
        *sorted.last().unwrap(),
    );
    let refit_counts = eng.refit_counts();

    println!(
        "Streaming inference (Core2, Prime, {MACHINES} machines, {seconds} s, 30% shift at t={SHIFT_AT_S})\n"
    );
    println!(
        "{}",
        format_table(
            &["Metric", "Value"],
            &[
                vec!["samples/sec".into(), format!("{samples_per_sec:.0}")],
                vec!["p50 latency".into(), format!("{p50:.1} us")],
                vec!["p99 latency".into(), format!("{p99:.1} us")],
                vec!["max latency".into(), format!("{max:.1} us")],
                vec![
                    "refits".into(),
                    refit_counts
                        .iter()
                        .map(|(k, v)| format!("{k}:{v}"))
                        .collect::<Vec<_>>()
                        .join(" "),
                ],
            ]
        )
    );

    let out = json!({
        "bench": "streaming_inference",
        "platform": "Core2",
        "workload": "prime",
        "machines": MACHINES,
        "seconds": seconds,
        "shift_at_s": SHIFT_AT_S,
        "shift_factor": SHIFT_FACTOR,
        "samples_per_sec": samples_per_sec,
        "latency_us": { "p50": p50, "p99": p99, "max": max },
        "refit_counts": refit_counts,
        "policy_bit_identical": true,
    });
    let path = results_dir().join("BENCH_streaming.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap()).expect("write results");
    println!("\nJSON written to {}", path.display());

    chaos_bench::obs_finish(
        "streaming_inference",
        Some(SEED),
        serde_json::to_string(&sim).ok(),
    );
}
