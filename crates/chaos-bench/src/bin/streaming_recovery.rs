//! Benchmark: crash recovery and fleet churn for the streaming engine.
//!
//! Exercises the ISSUE 6 robustness surface end to end and measures its
//! cost. A supervised engine replays a faulted, churned run (dropout +
//! leave/rejoin + late join + replacement); the run is killed at every
//! decile, snapshotted, restored, and resumed. Before any timing, every
//! stitched stream is asserted bit-identical to the uninterrupted run —
//! recovery must be *correct* before it is fast. Reports snapshot size,
//! encode / restore latencies, and resume throughput, and lands in
//! `results/BENCH_recovery.json`.

use chaos_bench::{format_table, results_dir};
use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, ChurnPlan, CounterCatalog, FaultPlan, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stats::ExecPolicy;
use chaos_stream::{DriftConfig, StreamConfig, StreamEngine, SupervisorConfig};
use chaos_workloads::{SimConfig, Workload};
use serde_json::json;
use std::time::Instant;

const MACHINES: usize = 4;
const SEED: u64 = 4200;
const SHIFT_AT_S: usize = 40;
const SHIFT_FACTOR: f64 = 1.3;

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    }
    .with_supervise(SupervisorConfig::fast())
}

fn engine(est: &RobustEstimator, cluster: &Cluster, exec: ExecPolicy) -> StreamEngine {
    let n = cluster.machines().len() as f64;
    StreamEngine::new(
        est.clone(),
        cluster.machines().len(),
        cluster.max_power() / n,
        cluster.idle_power() / n,
        0.05,
        stream_config().with_exec(exec),
    )
    .expect("engine construction")
}

fn main() {
    chaos_bench::obs_init("streaming_recovery");
    let cluster = Cluster::homogeneous(Platform::Core2, MACHINES, SEED);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let sim = SimConfig::quick();
    let train: Vec<RunTrace> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::Prime, &sim, SEED + 1 + r).unwrap())
        .collect();
    let mut test = collect_run(&cluster, &catalog, Workload::Prime, &sim, SEED + 9).unwrap();
    let start = SHIFT_AT_S.min(test.seconds());
    for m in &mut test.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= SHIFT_FACTOR;
        }
    }
    let test = FaultPlan::new(SEED + 21)
        .with_counter_dropout(0.1)
        .with_churn(
            ChurnPlan::new(SEED + 31)
                .with_leave_rejoin(1)
                .with_late_joins(1)
                .with_replaces(1),
        )
        .apply(&test);
    let seconds = test.seconds();

    let spec = FeatureSpec::general(&catalog);
    let cpu = strawman_position(&spec, &catalog);
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(spec.freq_column(&catalog)),
        ..RobustConfig::fast()
    };
    let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).expect("offline fit");

    // Correctness gate 1: churned replay is policy-invariant.
    let mut digests = Vec::new();
    for exec in [ExecPolicy::Serial, ExecPolicy::Parallel { threads: 4 }] {
        let mut eng = engine(&est, &cluster, exec);
        let outputs = eng.replay(&test).expect("replay");
        digests.push(format!(
            "{}|{}",
            serde_json::to_string(&outputs).unwrap(),
            serde_json::to_string(&eng.refit_outcomes()).unwrap()
        ));
    }
    assert!(
        digests.iter().all(|d| d == &digests[0]),
        "churned replay differs across execution policies"
    );
    eprintln!("[determinism] churned serial and par4 replays bit-identical");

    let mut uninterrupted = engine(&est, &cluster, ExecPolicy::Serial);
    let full = uninterrupted.replay(&test).expect("uninterrupted replay");

    // Correctness gate 2 + timing: kill at every decile, snapshot,
    // restore, resume; every stitched stream must match bit-for-bit.
    let mut snapshot_bytes = 0usize;
    let mut encode_us = Vec::new();
    let mut restore_us = Vec::new();
    let mut resume_throughput = Vec::new();
    for decile in 1..10 {
        let kill_t = (seconds * decile / 10).clamp(1, seconds - 1);
        let mut eng = engine(&est, &cluster, ExecPolicy::Serial);
        let mut outputs = Vec::with_capacity(seconds);
        for t in 0..kill_t {
            outputs.push(eng.push_second(&test, t).expect("pre-kill second"));
        }

        let e0 = Instant::now();
        let bytes = eng.snapshot();
        encode_us.push(e0.elapsed().as_secs_f64() * 1e6);
        snapshot_bytes = bytes.len();
        drop(eng);

        let r0 = Instant::now();
        let mut restored = StreamEngine::restore(est.clone(), &bytes).expect("restore");
        restore_us.push(r0.elapsed().as_secs_f64() * 1e6);

        let t0 = Instant::now();
        outputs.extend(restored.resume(&test).expect("resume"));
        let resumed = seconds - kill_t;
        resume_throughput.push(resumed as f64 / t0.elapsed().as_secs_f64());

        assert_eq!(full.len(), outputs.len(), "kill at {kill_t}: length");
        for (a, b) in full.iter().zip(&outputs) {
            assert!(
                a.cluster_power_w.to_bits() == b.cluster_power_w.to_bits() && a == b,
                "kill at {kill_t}: diverged at second {}",
                a.t
            );
        }
    }
    eprintln!("[recovery] 9 kill points stitched bit-identical");

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (enc, res, thr) = (
        mean(&encode_us),
        mean(&restore_us),
        mean(&resume_throughput),
    );
    let counts = uninterrupted.supervision_counts();

    println!(
        "Streaming recovery (Core2, Prime, {MACHINES} machines, {seconds} s, dropout + churn)\n"
    );
    println!(
        "{}",
        format_table(
            &["Metric", "Value"],
            &[
                vec!["snapshot size".into(), format!("{snapshot_bytes} B")],
                vec!["encode (mean)".into(), format!("{enc:.1} us")],
                vec!["restore (mean)".into(), format!("{res:.1} us")],
                vec!["resume throughput".into(), format!("{thr:.0} samples/s")],
                vec![
                    "membership events".into(),
                    format!("{}", test.membership.len()),
                ],
                vec![
                    "supervision".into(),
                    counts
                        .iter()
                        .map(|(k, v)| format!("{k}:{v}"))
                        .collect::<Vec<_>>()
                        .join(" "),
                ],
            ]
        )
    );

    let out = json!({
        "bench": "streaming_recovery",
        "platform": "Core2",
        "workload": "prime",
        "machines": MACHINES,
        "seconds": seconds,
        "shift_at_s": SHIFT_AT_S,
        "shift_factor": SHIFT_FACTOR,
        "membership_events": test.membership.len(),
        "kill_points": 9,
        "snapshot_bytes": snapshot_bytes,
        "encode_us_mean": enc,
        "restore_us_mean": res,
        "resume_samples_per_sec": thr,
        "supervision_counts": counts,
        "policy_bit_identical": true,
        "recovery_bit_identical": true,
    });
    let path = results_dir().join("BENCH_recovery.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap()).expect("write results");
    println!("\nJSON written to {}", path.display());

    chaos_bench::obs_finish(
        "streaming_recovery",
        Some(SEED),
        serde_json::to_string(&sim).ok(),
    );
}
