//! Table I: the six evaluation platforms and their wall-power ranges.
//!
//! Prints the simulated platforms next to the paper's specification and
//! verifies that each calibrated machine's idle/max wall power lands on
//! the paper's reported range.

use chaos_bench::{format_table, watts, write_csv};
use chaos_sim::{Machine, Platform};

fn main() {
    chaos_bench::obs_init("table1_platforms");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for platform in Platform::ALL {
        let spec = platform.spec();
        let m = Machine::nominal(platform, 0);
        let idle = m.true_power(&m.idle_state());
        let max = m.true_power(&m.full_state());
        let (paper_lo, paper_hi) = spec.power_range_w;
        assert!(
            (idle - paper_lo).abs() < 0.5 && (max - paper_hi).abs() < 0.5,
            "{platform}: simulated range [{idle:.1}, {max:.1}] vs paper [{paper_lo}, {paper_hi}]"
        );
        rows.push(vec![
            platform.name().to_string(),
            format!("{:?}", spec.class),
            format!("{}x{}-core", spec.sockets, spec.cores / spec.sockets),
            format!("{:.2} GHz", spec.max_pstate().freq_mhz / 1000.0),
            format!("{} GB", spec.memory_gb),
            format!("{} disk(s)", spec.disks.len()),
            if spec.has_dvfs() { "DVFS" } else { "fixed" }.to_string(),
            watts(idle),
            watts(max),
            format!("{paper_lo}-{paper_hi} W"),
        ]);
        csv.push(vec![
            platform.name().to_string(),
            format!("{idle:.2}"),
            format!("{max:.2}"),
            format!("{paper_lo}"),
            format!("{paper_hi}"),
        ]);
    }
    println!("Table I: simulated platforms vs paper power ranges\n");
    println!(
        "{}",
        format_table(
            &[
                "Platform",
                "Class",
                "CPU",
                "Freq",
                "Memory",
                "Disks",
                "DVFS",
                "Sim idle",
                "Sim max",
                "Paper range"
            ],
            &rows
        )
    );
    let path = write_csv(
        "table1_platforms.csv",
        &[
            "platform",
            "sim_idle_w",
            "sim_max_w",
            "paper_idle_w",
            "paper_max_w",
        ],
        &csv,
    );
    println!("CSV written to {}", path.display());

    chaos_bench::obs_finish("table1_platforms", None, None);
}
