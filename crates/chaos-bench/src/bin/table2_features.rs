//! Table II: significant performance counters per cluster, plus the
//! general cross-platform feature set.
//!
//! Runs Algorithm 1 on every platform's full trace set (all four
//! workloads, five runs each) and prints the selected counters as a
//! platform × counter grid, with the fixed general set alongside.

use chaos_bench::{format_table, write_csv};
use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_core::features::GENERAL_FEATURE_NAMES;
use chaos_sim::Platform;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    chaos_bench::obs_init("table2_features");
    // CHAOS_THREADS=auto|N|serial picks the execution policy; results
    // are bit-identical across policies.
    let cfg = ExperimentConfig::paper().with_exec(chaos_core::ExecPolicy::from_env());
    // counter name -> per-platform markers
    let mut grid: BTreeMap<String, BTreeMap<&'static str, bool>> = BTreeMap::new();
    let mut stats_rows = Vec::new();

    for platform in Platform::ALL {
        let t0 = Instant::now();
        let exp = ClusterExperiment::collect(platform, &cfg);
        let selection = exp.select_features().expect("selection succeeds");
        for &j in &selection.selected {
            let name = exp.catalog.def(j).name.clone();
            grid.entry(name).or_default().insert(platform.name(), true);
        }
        stats_rows.push(vec![
            platform.name().to_string(),
            format!("{}", selection.survivors_step1),
            format!("{}", selection.survivors_step2),
            format!("{}", selection.selected.len()),
            format!("{:.0}", selection.threshold),
            format!("{}", selection.models_built),
            format!("{:.0}s", t0.elapsed().as_secs_f64()),
        ]);
        println!(
            "[{}] selected {} features in {:.0}s",
            platform,
            selection.selected.len(),
            t0.elapsed().as_secs_f64()
        );
    }

    println!("\nAlgorithm 1 funnel per cluster (250 candidates in):\n");
    println!(
        "{}",
        format_table(
            &[
                "Platform",
                "after step1",
                "after step2",
                "final",
                "threshold",
                "models",
                "time"
            ],
            &stats_rows
        )
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, marks) in &grid {
        let mut row = vec![name.clone()];
        let mut csv_row = vec![name.clone()];
        for p in Platform::ALL {
            let hit = marks.get(p.name()).copied().unwrap_or(false);
            row.push(if hit { "X" } else { "" }.to_string());
            csv_row.push(if hit { "1" } else { "0" }.to_string());
        }
        let general = GENERAL_FEATURE_NAMES.contains(&name.as_str());
        row.push(if general { "X" } else { "" }.to_string());
        csv_row.push(if general { "1" } else { "0" }.to_string());
        rows.push(row);
        csv.push(csv_row);
    }
    println!("Table II: selected counters per cluster\n");
    println!(
        "{}",
        format_table(
            &["Counter", "Atom", "Core2", "Athlon", "Opteron", "XeonSATA", "XeonSAS", "General"],
            &rows
        )
    );
    let path = write_csv(
        "table2_features.csv",
        &[
            "counter",
            "atom",
            "core2",
            "athlon",
            "opteron",
            "xeon_sata",
            "xeon_sas",
            "general",
        ],
        &csv,
    );
    println!("CSV written to {}", path.display());

    // Shape checks: utilization-family counters are near-universal, and
    // the funnel actually narrows.
    let util_rows: usize = grid
        .iter()
        .filter(|(name, marks)| {
            (name.contains("Processor Time") || name.contains("Idle Time")) && !marks.is_empty()
        })
        .count();
    assert!(
        util_rows >= 1,
        "no processor-utilization counter selected anywhere"
    );

    chaos_bench::obs_finish(
        "table2_features",
        Some(cfg.cluster_seed),
        serde_json::to_string(&cfg).ok(),
    );
}
