//! Table III: average machine DRE vs rMSE vs percent error for the
//! Core 2 Duo (mobile) and Atom (embedded) clusters.
//!
//! The paper's point: a small rMSE — about 2% of total power on the Atom —
//! translates into a large DRE because the Atom's dynamic range is only
//! 4 W. This binary evaluates the best cluster-feature model per workload
//! on both platforms and prints all three metrics side by side.

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_core::models::ModelTechnique;
use chaos_core::sweep::best_cell;
use chaos_sim::Platform;
use chaos_workloads::Workload;

fn main() {
    chaos_bench::obs_init("table3_dre_metric");
    let cfg = ExperimentConfig::paper();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut atom_worst_ratio: f64 = 0.0;

    for platform in [Platform::Core2, Platform::Atom] {
        let exp = ClusterExperiment::collect(platform, &cfg);
        let selection = exp.select_features().expect("selection succeeds");
        let sets = exp.standard_feature_sets(&selection);
        for workload in Workload::ALL {
            let cells = exp.sweep(workload, &sets).expect("sweep succeeds");
            let best = best_cell(&cells).expect("at least one valid cell");
            let o = &best.outcome;
            rows.push(vec![
                platform.name().to_string(),
                workload.name().to_string(),
                best.label(),
                format!("{:.2}", o.avg_rmse()),
                pct(o.avg_percent_error()),
                pct(o.avg_dre()),
            ]);
            csv.push(vec![
                platform.name().to_string(),
                workload.name().to_string(),
                best.label(),
                format!("{:.3}", o.avg_rmse()),
                format!("{:.4}", o.avg_percent_error()),
                format!("{:.4}", o.avg_dre()),
            ]);
            if platform == Platform::Atom {
                atom_worst_ratio =
                    atom_worst_ratio.max(o.avg_dre() / o.avg_percent_error().max(1e-9));
            }
            let _ = ModelTechnique::ALL; // grid covered in sweep
        }
    }

    println!("Table III: DRE vs rMSE vs %Err (best model per cell)\n");
    println!(
        "{}",
        format_table(
            &["Platform", "Workload", "Best", "rMSE (W)", "% Err", "DRE"],
            &rows
        )
    );
    let path = write_csv(
        "table3_dre_metric.csv",
        &[
            "platform",
            "workload",
            "best_model",
            "rmse_w",
            "pct_err",
            "dre",
        ],
        &csv,
    );
    println!("CSV written to {}", path.display());

    // Shape check: on the Atom, DRE is several times the percent error —
    // the paper shows 2.4% rMSE/power becoming 30.8% DRE.
    println!("\nAtom worst-case DRE / %Err ratio: {atom_worst_ratio:.1}x (paper: up to ~13x)");
    assert!(
        atom_worst_ratio > 3.0,
        "DRE should be a much stricter metric on the small-range Atom"
    );

    chaos_bench::obs_finish(
        "table3_dre_metric",
        Some(cfg.cluster_seed),
        serde_json::to_string(&cfg).ok(),
    );
}
