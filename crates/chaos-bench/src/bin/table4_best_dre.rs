//! Table IV: best average DRE for each workload × cluster, labeled with
//! the winning technique + feature set, plus the paper's model-count
//! accounting (">1200 full-system power models per cluster").

use chaos_bench::{format_table, pct, write_csv};
use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_core::sweep::{best_cell, models_built};
use chaos_sim::Platform;
use chaos_workloads::Workload;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    chaos_bench::obs_init("table4_best_dre");
    // CHAOS_THREADS=auto|N|serial picks the execution policy; results
    // are bit-identical across policies.
    let cfg = ExperimentConfig::paper().with_exec(chaos_core::ExecPolicy::from_env());
    // best[(workload)][platform] = (dre, label)
    let mut best: BTreeMap<&str, BTreeMap<&str, (f64, String)>> = BTreeMap::new();
    let mut counts = Vec::new();
    let mut all_cells_csv = Vec::new();

    for platform in Platform::ALL {
        let t0 = Instant::now();
        let exp = ClusterExperiment::collect(platform, &cfg);
        let selection = exp.select_features().expect("selection succeeds");
        let mut sets = exp.standard_feature_sets(&selection);
        // The paper "varied the number of model features, ranging from
        // CPU utilization alone to the full cluster-specific and general
        // feature sets": sweep ranked prefixes of the cluster set too.
        // These subsets are what pushes the per-cluster model count past
        // 1,200 and they trace the complexity-vs-accuracy curve.
        let ranked: Vec<usize> = selection
            .histogram
            .iter()
            .filter(|(j, _)| selection.selected.contains(j))
            .map(|(j, _)| *j)
            .collect();
        for k in 1..ranked.len() {
            sets.push((
                format!("C{k}"),
                chaos_core::features::FeatureSpec::new(ranked[..k].to_vec()),
            ));
        }
        // Prefixes of the general set likewise (G1..G7).
        let general = chaos_core::features::FeatureSpec::general(&exp.catalog);
        for k in 1..general.counters.len() {
            sets.push((
                format!("G{k}"),
                chaos_core::features::FeatureSpec::new(general.counters[..k].to_vec()),
            ));
        }
        let mut platform_models = selection.models_built;
        for workload in Workload::ALL {
            let cells = exp.sweep(workload, &sets).expect("sweep succeeds");
            platform_models += models_built(&cells);
            for c in &cells {
                all_cells_csv.push(vec![
                    platform.name().to_string(),
                    workload.name().to_string(),
                    c.label(),
                    format!("{:.4}", c.outcome.avg_dre()),
                ]);
            }
            // Table IV reports the best of the paper's named combinations;
            // the prefix subsets only feed the model count and the
            // complexity-vs-accuracy CSV.
            let named: Vec<_> = cells
                .iter()
                .filter(|c| matches!(c.feature_label.as_str(), "U" | "C" | "CP" | "G"))
                .cloned()
                .collect();
            let b = best_cell(&named).expect("cells nonempty");
            best.entry(workload.name())
                .or_default()
                .insert(platform.name(), (b.outcome.avg_dre(), b.label()));
        }
        // The paper's accounting also includes per-fold model refits during
        // selection exploration across the 4 feature sets; our sweep counts
        // every cross-validated fit.
        counts.push(vec![
            platform.name().to_string(),
            format!("{platform_models}"),
            format!("{:.0}s", t0.elapsed().as_secs_f64()),
        ]);
        eprintln!(
            "[{platform}] done in {:.0}s ({platform_models} models)",
            t0.elapsed().as_secs_f64()
        );
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for workload in Workload::ALL {
        let mut row = vec![workload.name().to_string()];
        let mut crow = vec![workload.name().to_string()];
        for platform in Platform::ALL {
            let (dre, label) = &best[workload.name()][platform.name()];
            row.push(format!("{}, {}", pct(*dre), label));
            crow.push(format!("{dre:.4}"));
            crow.push(label.clone());
            assert!(
                *dre < 0.12,
                "{platform}/{workload}: best DRE {dre} exceeds the paper's 12% bound"
            );
        }
        rows.push(row);
        csv.push(crow);
    }

    println!("Table IV: best average DRE per workload and cluster\n");
    println!(
        "{}",
        format_table(
            &["Workload", "Atom", "Core2", "Athlon", "Opteron", "XeonSATA", "XeonSAS"],
            &rows
        )
    );
    println!("Models fitted per cluster (selection + sweep):\n");
    println!("{}", format_table(&["Platform", "Models", "Time"], &counts));

    let path = write_csv(
        "table4_best_dre.csv",
        &[
            "workload",
            "atom_dre",
            "atom",
            "core2_dre",
            "core2",
            "athlon_dre",
            "athlon",
            "opteron_dre",
            "opteron",
            "xeonsata_dre",
            "xeonsata",
            "xeonsas_dre",
            "xeonsas",
        ],
        &csv,
    );
    write_csv(
        "table4_all_cells.csv",
        &["platform", "workload", "label", "dre"],
        &all_cells_csv,
    );
    println!("CSV written to {}", path.display());

    // Shape check: nonlinear techniques and non-trivial feature sets
    // dominate the winners' table.
    let labels: Vec<&String> = best
        .values()
        .flat_map(|m| m.values().map(|(_, l)| l))
        .collect();
    let nonlinear = labels.iter().filter(|l| !l.starts_with('L')).count();
    assert!(
        nonlinear * 10 >= labels.len() * 7,
        "nonlinear models should win most cells: {labels:?}"
    );

    chaos_bench::obs_finish(
        "table4_best_dre",
        Some(cfg.cluster_seed),
        serde_json::to_string(&cfg).ok(),
    );
}
