//! Benchmark: CHAOSCOL trace-store write/read throughput, seek latency,
//! and bytes-per-sample versus a CSV baseline.
//!
//! One simulated base run is tiled out to each fleet size with
//! [`RunTrace::tiled_to`] (same scaling scheme as `serve_loadgen`), then
//! per fleet:
//!
//! - **write**: export the run to a CHAOSCOL file and report
//!   machine-samples/sec plus the on-disk footprint;
//! - **read**: stream every second back through [`TraceReader::stream`]
//!   and report replay throughput;
//! - **seek**: time 256 deterministic random `(machine, second)` point
//!   lookups through the footer index;
//! - **size**: compare bytes/sample against a plain-text CSV rendering
//!   of the same rows (`t,machine_id,c0..ck,measured_w,true_w`).
//!
//! Before any timing, the file is imported back and checked
//! bit-identical (`PartialEq` over every `f64`) to the exported run —
//! the round-trip contract the chaos-trace property suite pins, here
//! enforced on real simulator output at every fleet size. Results land
//! in `results/BENCH_trace.json`, uploaded as a CI artifact by the
//! trace-store job.
//!
//! Defaults cover fleets of 5/50/500; `--fleets 5,500,5000` scales to
//! the five-thousand-machine point from the issue brief.

use chaos_bench::{format_table, results_dir};
use chaos_counters::{collect_run, export_trace_path, import_trace_path, CounterCatalog, RunTrace};
use chaos_sim::{FleetSpec, Platform};
use chaos_trace::TraceReader;
use serde_json::json;
use std::fmt::Write as _;
use std::time::Instant;

const BASE_MACHINES: usize = 5;
const SEED: u64 = 4300;
const DEFAULT_FLEETS: [usize; 3] = [5, 50, 500];
const SEEKS: usize = 256;
const BLOCK_SECONDS: usize = 64;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Bytes a naive one-row-per-machine-second CSV export would occupy.
/// Rows are formatted into a reused buffer; only the length is kept, so
/// the 5000-machine point never materializes the multi-megabyte text.
fn csv_bytes(run: &RunTrace) -> u64 {
    let header = "t,machine_id,counters...,measured_power_w,true_power_w\n";
    let mut total = header.len() as u64;
    let mut row = String::new();
    for m in &run.machines {
        for t in 0..m.seconds() {
            row.clear();
            let _ = write!(row, "{t},{}", m.machine_id);
            for c in &m.counters[t] {
                let _ = write!(row, ",{c}");
            }
            let _ = writeln!(row, ",{},{}", m.measured_power_w[t], m.true_power_w[t]);
            total += row.len() as u64;
        }
    }
    total
}

/// Deterministic index stream for the seek benchmark (splitmix64).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn parse_args() -> Vec<usize> {
    let mut fleets: Vec<usize> = DEFAULT_FLEETS.to_vec();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--fleets" => {
                let spec = it.next().expect("--fleets needs a value");
                fleets = spec
                    .split(',')
                    .map(|s| s.trim().parse().expect("fleet size"))
                    .collect();
            }
            other => panic!("unknown flag {other:?} (supported: --fleets)"),
        }
    }
    fleets
}

fn main() {
    chaos_bench::obs_init("trace_store");
    let fleets = parse_args();
    println!("CHAOSCOL trace-store benchmark: fleets {fleets:?}\n");

    let base_spec = FleetSpec::new(Platform::Core2, BASE_MACHINES, 42);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let base_run = collect_run(
        &base_spec.cluster(),
        &catalog,
        chaos_workloads::Workload::Prime,
        &chaos_workloads::SimConfig::quick(),
        SEED,
    )
    .expect("collect base run");
    let seconds = base_run.seconds();

    let dir = results_dir();
    let mut rows = Vec::new();
    let mut report = Vec::new();
    for &fleet in &fleets {
        let run = base_run.tiled_to(fleet).expect("tile base run");
        let samples = (fleet * seconds) as f64;
        let path = dir.join(format!("trace_store_{fleet}.chaoscol"));

        let t0 = Instant::now();
        let summary = export_trace_path(&run, &path, BLOCK_SECONDS).expect("export CHAOSCOL trace");
        let write_s = t0.elapsed().as_secs_f64();
        let file_bytes = summary.bytes;

        // Round-trip gate before any read timing: the file must decode
        // to the exact run that was exported.
        let back = import_trace_path(&path).expect("import CHAOSCOL trace");
        assert_eq!(back, run, "fleet {fleet}: round-trip is not bit-identical");

        let t0 = Instant::now();
        let reader = TraceReader::open_path(&path).expect("open trace");
        let mut stream = reader.stream();
        let mut streamed: u64 = 0;
        while stream.advance().expect("stream trace") {
            let second = stream.second().expect("current second");
            streamed += second.machines() as u64;
        }
        let read_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            streamed,
            (fleet * seconds) as u64,
            "fleet {fleet}: stream coverage"
        );

        let mut reader = TraceReader::open_path(&path).expect("reopen trace");
        let mut mix = Mix(SEED ^ fleet as u64);
        let mut seek_us = Vec::with_capacity(SEEKS);
        for _ in 0..SEEKS {
            let m = (mix.next() % fleet as u64) as usize;
            let t = mix.next() % seconds as u64;
            let t0 = Instant::now();
            let own = reader.machine_second(m, t).expect("seek machine-second");
            seek_us.push(t0.elapsed().as_secs_f64() * 1e6);
            assert_eq!(own.t, t);
        }
        seek_us.sort_by(|a, b| a.total_cmp(b));
        let seek_p50 = percentile(&seek_us, 50.0);
        let seek_p99 = percentile(&seek_us, 99.0);

        let csv = csv_bytes(&run);
        let col_bps = file_bytes as f64 / samples;
        let csv_bps = csv as f64 / samples;
        let ratio = csv_bps / col_bps;

        std::fs::remove_file(&path).expect("remove scratch trace");

        rows.push(vec![
            fleet.to_string(),
            format!("{:.0}", samples / write_s),
            format!("{:.0}", samples / read_s),
            format!("{seek_p50:.0}"),
            format!("{seek_p99:.0}"),
            format!("{col_bps:.1}"),
            format!("{csv_bps:.1}"),
            format!("{ratio:.1}x"),
        ]);
        report.push(json!({
            "fleet": fleet,
            "seconds": seconds,
            "write_samples_per_sec": samples / write_s,
            "read_samples_per_sec": samples / read_s,
            "seek_latency_us": { "p50": seek_p50, "p99": seek_p99 },
            "file_bytes": file_bytes,
            "csv_bytes": csv,
            "bytes_per_sample": col_bps,
            "csv_bytes_per_sample": csv_bps,
            "csv_ratio": ratio,
            "round_trip_bit_identical": true,
        }));
    }

    println!(
        "{}",
        format_table(
            &[
                "fleet",
                "write samp/s",
                "read samp/s",
                "seek p50 us",
                "seek p99 us",
                "B/sample",
                "CSV B/sample",
                "vs CSV",
            ],
            &rows,
        )
    );

    let out = json!({
        "bench": "trace_store",
        "platform": "Core2",
        "workload": "prime",
        "base_machines": BASE_MACHINES,
        "block_seconds": BLOCK_SECONDS,
        "seeks_per_fleet": SEEKS,
        "fleets": report,
    });
    let path = results_dir().join("BENCH_trace.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&out).expect("serialize results"),
    )
    .expect("write results");
    println!("\nJSON written to {}", path.display());

    chaos_bench::obs_finish("trace_store", Some(SEED), None);
}
