//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the CHAOS paper, plus the Criterion benches.
//!
//! Each binary prints a formatted table to stdout and writes a CSV copy
//! under `results/` so EXPERIMENTS.md can reference stable artifacts.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory where experiment binaries drop their CSV artifacts.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        // chaos-lint: allow(R4) — crate layout invariant (chaos-bench
        // sits two levels below the workspace root).
        .expect("workspace root exists")
        .join("results");
    // chaos-lint: allow(R4) — experiment plumbing: an unwritable results
    // dir should abort the run loudly, not be papered over.
    fs::create_dir_all(&dir).expect("can create results directory");
    dir
}

/// Renders an aligned text table.
pub fn format_table<S: Display>(headers: &[&str], rows: &[Vec<S>]) -> String {
    let mut cells: Vec<Vec<String>> = vec![headers.iter().map(|h| h.to_string()).collect()];
    cells.extend(
        rows.iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect::<Vec<_>>()),
    );
    let cols = cells.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in &cells {
        for (j, c) in row.iter().enumerate() {
            widths[j] = widths[j].max(c.len());
        }
    }
    let mut out = String::new();
    for (i, row) in cells.iter().enumerate() {
        for (j, c) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[j]));
        }
        out.push('\n');
        if i == 0 {
            for (j, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if j + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Writes a CSV artifact into `results/`.
///
/// # Panics
///
/// Panics if the file cannot be written (experiment binaries treat that
/// as fatal).
pub fn write_csv<S: Display>(name: &str, headers: &[&str], rows: &[Vec<S>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut body = headers.join(",");
    body.push('\n');
    for r in rows {
        let line: Vec<String> = r.iter().map(|c| c.to_string()).collect();
        body.push_str(&line.join(","));
        body.push('\n');
    }
    // chaos-lint: allow(R4) — experiment plumbing: losing the CSV
    // artifact silently would invalidate EXPERIMENTS.md references.
    fs::write(&path, body).expect("can write CSV artifact");
    path
}

/// Arms the observability layer for one experiment binary; call first
/// thing in `main`. `CHAOS_OBS=off|summary|full` selects the level (see
/// `chaos_obs`); at `full` an event sink opens under `results/obs/`.
pub fn obs_init(bin: &str) {
    chaos_obs::init_from_env(bin);
}

/// Ends an experiment run: prints the metric summary to stderr and
/// writes the per-run manifest to `results/obs/` (a no-op when
/// `CHAOS_OBS` is off). Pass the experiment's base seed and a
/// pre-serialized JSON config when the binary has them.
pub fn obs_finish(bin: &str, seed: Option<u64>, config_json: Option<String>) {
    let mut manifest =
        chaos_obs::Manifest::new(bin).with_field("workspace_version", env!("CARGO_PKG_VERSION"));
    if let Some(seed) = seed {
        manifest = manifest.with_seed(seed);
    }
    if let Some(config) = config_json {
        manifest = manifest.with_config_json(config);
    }
    if let Some(path) = chaos_obs::finish(manifest) {
        eprintln!("observability manifest: {}", path.display());
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats watts with one decimal.
pub fn watts(x: f64) -> String {
    format!("{x:.1} W")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["a", "long-header"],
            &[vec!["x".to_string(), "y".to_string()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn csv_round_trip() {
        let p = write_csv(
            "test_artifact.csv",
            &["k", "v"],
            &[vec!["1".to_string(), "2".to_string()]],
        );
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, "k,v\n1,2\n");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(watts(45.67), "45.7 W");
    }
}
