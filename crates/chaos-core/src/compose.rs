//! Cluster power-model composition (Eq. 5): cluster power is the sum of
//! per-machine model predictions, with per-platform models in
//! heterogeneous clusters.

use crate::features::FeatureSpec;
use crate::models::FittedModel;
use chaos_counters::{MachineRunTrace, RunTrace};
use chaos_sim::Platform;
use chaos_stats::StatsError;
use std::collections::BTreeMap;

/// A composed cluster power model: one machine model per platform,
/// applied to every machine of that platform and summed (Eq. 5).
///
/// For homogeneous clusters this holds a single entry; the paper's
/// 10-machine heterogeneous experiment holds one model for Core2 and one
/// for Opteron and achieves the same worst-case DRE as the homogeneous
/// clusters "essentially for free".
#[derive(Debug, Clone)]
pub struct ClusterPowerModel {
    per_platform: BTreeMap<String, (Platform, FeatureSpec, FittedModel)>,
}

impl ClusterPowerModel {
    /// Creates an empty composition.
    pub fn new() -> Self {
        ClusterPowerModel {
            per_platform: BTreeMap::new(),
        }
    }

    /// Creates a composition with a single platform's model.
    pub fn homogeneous(platform: Platform, spec: FeatureSpec, model: FittedModel) -> Self {
        let mut c = ClusterPowerModel::new();
        c.insert(platform, spec, model);
        c
    }

    /// Adds (or replaces) the model used for `platform`'s machines.
    pub fn insert(&mut self, platform: Platform, spec: FeatureSpec, model: FittedModel) {
        self.per_platform
            .insert(platform.name().to_string(), (platform, spec, model));
    }

    /// Platforms with a registered model.
    pub fn platforms(&self) -> Vec<Platform> {
        self.per_platform.values().map(|(p, _, _)| *p).collect()
    }

    /// Predicts one machine's power series from its counter trace.
    ///
    /// With lagged features the first second has no predecessor; its
    /// prediction reuses the second sample's, keeping the output aligned
    /// with the trace.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidParameter`] if no model is registered for
    ///   the machine's platform.
    /// * Prediction errors from the underlying model.
    pub fn predict_machine(&self, m: &MachineRunTrace) -> Result<Vec<f64>, StatsError> {
        let (_, spec, model) = self.per_platform.get(m.platform.name()).ok_or_else(|| {
            StatsError::InvalidParameter {
                context: format!("no model registered for platform {}", m.platform),
            }
        })?;
        let start = usize::from(!spec.lagged.is_empty());
        let mut out = Vec::with_capacity(m.counters.len());
        for t in start..m.counters.len() {
            let mut row = Vec::with_capacity(spec.width());
            for &c in &spec.counters {
                row.push(m.counters[t][c]);
            }
            for &c in &spec.lagged {
                row.push(m.counters[t - 1][c]);
            }
            out.push(model.predict_row(&row)?);
        }
        if start == 1 && !out.is_empty() {
            // chaos-lint: allow(R4) — guarded by !out.is_empty() above.
            out.insert(0, out[0]);
        }
        Ok(out)
    }

    /// Predicts the cluster power series: the per-second sum of all
    /// machines' predictions (Eq. 5).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterPowerModel::predict_machine`].
    pub fn predict_cluster(&self, run: &RunTrace) -> Result<Vec<f64>, StatsError> {
        let n = run.seconds();
        let mut total = vec![0.0; n];
        for m in &run.machines {
            let p = self.predict_machine(m)?;
            for (o, v) in total.iter_mut().zip(&p) {
                *o += v;
            }
        }
        Ok(total)
    }
}

impl Default for ClusterPowerModel {
    fn default() -> Self {
        ClusterPowerModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::pooled_dataset;
    use crate::models::{FitOptions, ModelTechnique};
    use chaos_counters::{collect_run, collect_run_mixed, CounterCatalog};
    use chaos_sim::{Cluster, Platform};
    use chaos_workloads::{SimConfig, Workload};

    fn fit_for(
        platform: Platform,
        traces: &[RunTrace],
        catalog: &CounterCatalog,
    ) -> (FeatureSpec, FittedModel) {
        let spec = FeatureSpec::general(catalog);
        let ds = pooled_dataset(traces, &spec).unwrap().thinned(1000);
        let model =
            FittedModel::fit(ModelTechnique::Linear, &ds.x, &ds.y, &FitOptions::paper()).unwrap();
        let _ = platform;
        (spec, model)
    }

    #[test]
    fn cluster_prediction_sums_machine_predictions() {
        let cluster = Cluster::homogeneous(Platform::Atom, 3, 2);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 3).unwrap();
        let (spec, model) = fit_for(Platform::Atom, std::slice::from_ref(&run), &catalog);
        let cm = ClusterPowerModel::homogeneous(Platform::Atom, spec, model);
        let cluster_pred = cm.predict_cluster(&run).unwrap();
        let manual: Vec<f64> = {
            let per: Vec<Vec<f64>> = run
                .machines
                .iter()
                .map(|m| cm.predict_machine(m).unwrap())
                .collect();
            (0..run.seconds())
                .map(|t| per.iter().map(|p| p[t]).sum())
                .collect()
        };
        assert_eq!(cluster_pred, manual);
        assert_eq!(cluster_pred.len(), run.seconds());
    }

    #[test]
    fn prediction_tracks_actual_power_roughly() {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 4);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let train =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 10).unwrap();
        let test =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 11).unwrap();
        let (spec, model) = fit_for(Platform::Core2, &[train], &catalog);
        let cm = ClusterPowerModel::homogeneous(Platform::Core2, spec, model);
        let pred = cm.predict_cluster(&test).unwrap();
        let actual = test.cluster_measured_power();
        let rmse = chaos_stats::metrics::rmse(&pred, &actual).unwrap();
        let range = cluster.max_power() - cluster.idle_power();
        assert!(
            rmse / range < 0.25,
            "cluster rmse {rmse} over range {range}"
        );
    }

    #[test]
    fn heterogeneous_composition_uses_per_platform_models() {
        let cluster = Cluster::heterogeneous(&[(Platform::Core2, 2), (Platform::Opteron, 2)], 8);
        let run = collect_run_mixed(&cluster, Workload::WordCount, &SimConfig::quick(), 21);

        // Train each platform's model on its own machines' data.
        let mut cm = ClusterPowerModel::new();
        for platform in [Platform::Core2, Platform::Opteron] {
            let catalog = CounterCatalog::for_platform(&platform.spec());
            let sub = RunTrace {
                workload: run.workload.clone(),
                run_seed: run.run_seed,
                machines: run
                    .machines
                    .iter()
                    .filter(|m| m.platform == platform)
                    .cloned()
                    .collect(),
                membership: Vec::new(),
            };
            let (spec, model) = fit_for(platform, &[sub], &catalog);
            cm.insert(platform, spec, model);
        }
        assert_eq!(cm.platforms().len(), 2);
        let pred = cm.predict_cluster(&run).unwrap();
        assert_eq!(pred.len(), run.seconds());
        let actual = run.cluster_measured_power();
        let rmse = chaos_stats::metrics::rmse(&pred, &actual).unwrap();
        assert!(rmse < 40.0, "hetero rmse {rmse}");
    }

    #[test]
    fn missing_platform_model_is_an_error() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 0);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 1).unwrap();
        let cm = ClusterPowerModel::new();
        assert!(cm.predict_cluster(&run).is_err());
    }

    #[test]
    fn lagged_spec_keeps_output_aligned() {
        let cluster = Cluster::homogeneous(Platform::Core2, 2, 3);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 7).unwrap();
        let spec = FeatureSpec::general(&catalog).with_lagged_freq(&catalog);
        let ds = pooled_dataset(std::slice::from_ref(&run), &spec)
            .unwrap()
            .thinned(800);
        let model =
            FittedModel::fit(ModelTechnique::Linear, &ds.x, &ds.y, &FitOptions::paper()).unwrap();
        let cm = ClusterPowerModel::homogeneous(Platform::Core2, spec, model);
        let pred = cm.predict_machine(&run.machines[0]).unwrap();
        assert_eq!(pred.len(), run.seconds());
        assert_eq!(pred[0], pred[1], "first second reuses second prediction");
    }
}
