//! Building regression datasets from collected run traces.

use crate::features::FeatureSpec;
use chaos_counters::RunTrace;
use chaos_stats::{Matrix, StatsError};

/// A regression dataset: feature matrix, power targets, and the sample
/// provenance needed for run-aware cross-validation and per-machine
/// evaluation.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, one row per (machine, second) sample.
    pub x: Matrix,
    /// Metered power target for each row, in watts.
    pub y: Vec<f64>,
    /// For each row, which run (index into the trace list) it came from.
    pub run_of: Vec<usize>,
    /// For each row, which machine id it came from.
    pub machine_of: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of runs represented.
    pub fn n_runs(&self) -> usize {
        self.run_of.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Row indices belonging to the given runs.
    pub fn rows_in_runs(&self, runs: &[usize]) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| runs.contains(&self.run_of[i]))
            .collect()
    }

    /// Row indices belonging to one machine.
    pub fn rows_of_machine(&self, machine: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.machine_of[i] == machine)
            .collect()
    }

    /// Extracts the sub-dataset at the given row indices.
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(rows),
            y: rows.iter().map(|&i| self.y[i]).collect(),
            run_of: rows.iter().map(|&i| self.run_of[i]).collect(),
            machine_of: rows.iter().map(|&i| self.machine_of[i]).collect(),
        }
    }

    /// Deterministically thins the dataset to at most `max_rows` samples
    /// (evenly strided), used to cap the cost of expensive fits like MARS
    /// without biasing toward any run phase.
    pub fn thinned(&self, max_rows: usize) -> Dataset {
        if self.len() <= max_rows || max_rows == 0 {
            return self.clone();
        }
        let stride = self.len() as f64 / max_rows as f64;
        let rows: Vec<usize> = (0..max_rows)
            .map(|k| ((k as f64 * stride) as usize).min(self.len() - 1))
            .collect();
        self.subset(&rows)
    }
}

/// Builds a pooled dataset over every machine in the given runs — the
/// paper's pooling strategy for cluster-level model fitting ("we pool
/// performance counters and power measurements from all the machines in
/// the cluster").
///
/// Lagged columns drop each (machine, run)'s first second, keeping rows
/// aligned with their previous-second values.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if no samples survive, or
/// [`StatsError::InvalidParameter`] if a feature index exceeds a trace's
/// counter width.
pub fn pooled_dataset(traces: &[RunTrace], spec: &FeatureSpec) -> Result<Dataset, StatsError> {
    dataset_filtered(traces, spec, None, false)
}

/// Builds a pooled dataset keeping only samples a fault-aware pipeline
/// may trust: the machine must be alive, the meter reading valid and
/// finite, and every selected feature (current and lagged) valid and
/// finite per the trace's [`chaos_counters::ValidityMask`]. On clean
/// traces this is identical to [`pooled_dataset`]; on faulted traces it
/// is how the robust pipeline refits on surviving data.
///
/// # Errors
///
/// Same conditions as [`pooled_dataset`] — including
/// [`StatsError::InsufficientData`] when faults leave no usable samples.
pub fn pooled_dataset_valid(
    traces: &[RunTrace],
    spec: &FeatureSpec,
) -> Result<Dataset, StatsError> {
    dataset_filtered(traces, spec, None, true)
}

/// Builds a dataset for a single machine across runs — the per-machine
/// models of Algorithm 1 steps 3–4.
///
/// # Errors
///
/// Same conditions as [`pooled_dataset`].
pub fn machine_dataset(
    traces: &[RunTrace],
    spec: &FeatureSpec,
    machine_id: usize,
) -> Result<Dataset, StatsError> {
    dataset_filtered(traces, spec, Some(machine_id), false)
}

fn dataset_filtered(
    traces: &[RunTrace],
    spec: &FeatureSpec,
    machine_filter: Option<usize>,
    require_valid: bool,
) -> Result<Dataset, StatsError> {
    let width = spec.width();
    let mut rows: Vec<f64> = Vec::new();
    let mut y = Vec::new();
    let mut run_of = Vec::new();
    let mut machine_of = Vec::new();
    let start_t = usize::from(!spec.lagged.is_empty());

    for (run_idx, run) in traces.iter().enumerate() {
        for m in &run.machines {
            if machine_filter.is_some_and(|id| id != m.machine_id) {
                continue;
            }
            for t in start_t..m.counters.len() {
                if require_valid && !sample_usable(m, spec, t) {
                    continue;
                }
                let row_now = &m.counters[t];
                for &c in &spec.counters {
                    let v =
                        row_now
                            .get(c)
                            .copied()
                            .ok_or_else(|| StatsError::InvalidParameter {
                                context: format!("feature index {c} out of counter range"),
                            })?;
                    rows.push(v);
                }
                for &c in &spec.lagged {
                    let v = m.counters[t - 1].get(c).copied().ok_or_else(|| {
                        StatsError::InvalidParameter {
                            context: format!("lagged feature index {c} out of counter range"),
                        }
                    })?;
                    rows.push(v);
                }
                y.push(m.measured_power_w[t]);
                run_of.push(run_idx);
                machine_of.push(m.machine_id);
            }
        }
    }
    if y.is_empty() {
        return Err(StatsError::InsufficientData {
            observations: 0,
            required: 1,
        });
    }
    let n = y.len();
    Ok(Dataset {
        x: Matrix::from_vec(n, width, rows)?,
        y,
        run_of,
        machine_of,
    })
}

/// Whether sample `t` of machine trace `m` is fully trustworthy for the
/// features in `spec`: machine alive, meter valid and finite, every
/// selected feature (and its lagged previous-second value) valid and
/// finite.
fn sample_usable(m: &chaos_counters::MachineRunTrace, spec: &FeatureSpec, t: usize) -> bool {
    if !m.alive_at(t) || !m.meter_ok(t) || !m.measured_power_w[t].is_finite() {
        return false;
    }
    let feature_ok = |tt: usize, c: usize| {
        m.counter_ok(tt, c) && m.counters[tt].get(c).is_some_and(|v| v.is_finite())
    };
    spec.counters.iter().all(|&c| feature_ok(t, c))
        && spec.lagged.iter().all(|&c| t > 0 && feature_ok(t - 1, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_counters::{collect_run, CounterCatalog};
    use chaos_sim::{Cluster, Platform};
    use chaos_workloads::{SimConfig, Workload};

    fn traces() -> (Vec<RunTrace>, CounterCatalog) {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 1);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let t = (0..2)
            .map(|r| {
                collect_run(
                    &cluster,
                    &catalog,
                    Workload::WordCount,
                    &SimConfig::quick(),
                    100 + r,
                )
                .unwrap()
            })
            .collect();
        (t, catalog)
    }

    #[test]
    fn pooled_dataset_covers_all_machines_and_runs() {
        let (traces, catalog) = traces();
        let spec = crate::features::FeatureSpec::cpu_only(&catalog);
        let ds = pooled_dataset(&traces, &spec).unwrap();
        let expected: usize = traces.iter().map(|r| r.seconds() * r.machines.len()).sum();
        assert_eq!(ds.len(), expected);
        assert_eq!(ds.x.cols(), 1);
        assert_eq!(ds.n_runs(), 2);
        assert!(!ds.rows_of_machine(0).is_empty());
        assert!(!ds.rows_of_machine(1).is_empty());
    }

    #[test]
    fn machine_dataset_filters() {
        let (traces, catalog) = traces();
        let spec = crate::features::FeatureSpec::general(&catalog);
        let ds = machine_dataset(&traces, &spec, 1).unwrap();
        assert!(ds.machine_of.iter().all(|&m| m == 1));
        assert_eq!(ds.x.cols(), 8);
    }

    #[test]
    fn lagged_columns_shift_by_one_second() {
        let (traces, catalog) = traces();
        let spec = crate::features::FeatureSpec::general(&catalog).with_lagged_freq(&catalog);
        let ds = machine_dataset(&traces, &spec, 0).unwrap();
        // One sample fewer per run than the unlagged dataset.
        let plain = machine_dataset(&traces, &FeatureSpec::general(&catalog), 0).unwrap();
        assert_eq!(ds.len(), plain.len() - traces.len());
        // The lagged column equals the frequency counter one second back.
        let freq_idx = catalog
            .index_of("Processor Performance\\Processor Frequency (Processor_0)")
            .unwrap();
        let m = &traces[0].machines[0];
        assert_eq!(ds.x.get(0, 8), m.counters[0][freq_idx]);
        assert_eq!(ds.x.get(1, 8), m.counters[1][freq_idx]);
    }

    #[test]
    fn subset_and_rows_in_runs() {
        let (traces, catalog) = traces();
        let spec = FeatureSpec::cpu_only(&catalog);
        let ds = pooled_dataset(&traces, &spec).unwrap();
        let rows = ds.rows_in_runs(&[1]);
        let sub = ds.subset(&rows);
        assert!(sub.run_of.iter().all(|&r| r == 1));
        assert_eq!(sub.len(), rows.len());
    }

    #[test]
    fn thinned_caps_length_and_preserves_order() {
        let (traces, catalog) = traces();
        let spec = FeatureSpec::cpu_only(&catalog);
        let ds = pooled_dataset(&traces, &spec).unwrap();
        let thin = ds.thinned(50);
        assert_eq!(thin.len(), 50);
        // No cap → unchanged.
        let same = ds.thinned(ds.len() + 10);
        assert_eq!(same.len(), ds.len());
    }

    #[test]
    fn bad_feature_index_is_rejected() {
        let (traces, _) = traces();
        let spec = FeatureSpec::new(vec![9999]);
        assert!(pooled_dataset(&traces, &spec).is_err());
    }

    #[test]
    fn valid_dataset_equals_pooled_on_clean_traces() {
        let (traces, catalog) = traces();
        let spec = FeatureSpec::general(&catalog);
        let a = pooled_dataset(&traces, &spec).unwrap();
        let b = pooled_dataset_valid(&traces, &spec).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn valid_dataset_drops_faulted_samples() {
        use chaos_counters::FaultPlan;
        let (traces, catalog) = traces();
        let spec = FeatureSpec::general(&catalog);
        let clean = pooled_dataset_valid(&traces, &spec).unwrap();
        let plan = FaultPlan::new(31)
            .with_counter_dropout(0.05)
            .with_meter_outages(0.02, 5)
            .with_crashes(0.5);
        let faulted: Vec<RunTrace> = traces.iter().map(|t| plan.apply(t)).collect();
        let ds = pooled_dataset_valid(&faulted, &spec).unwrap();
        assert!(ds.len() < clean.len(), "{} < {}", ds.len(), clean.len());
        assert!(!ds.is_empty());
        // Every surviving row is fully finite.
        for i in 0..ds.len() {
            assert!(ds.x.row(i).iter().all(|v| v.is_finite()));
            assert!(ds.y[i].is_finite());
        }
        // The naive pooled dataset, by contrast, keeps the NaNs.
        let naive = pooled_dataset(&faulted, &spec).unwrap();
        assert!(naive.y.iter().any(|v| !v.is_finite()));
    }
}
