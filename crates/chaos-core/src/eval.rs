//! Model evaluation with the paper's protocol: cross-validation over
//! separate application runs, metrics averaged per machine.
//!
//! "All models are evaluated by using 5-fold cross validation with a
//! training set about ten times smaller than the test data set. The
//! training and test sets are taken from separate application runs."
//! Each fold trains on one run and tests on every other run; DRE uses
//! each machine's dynamic power range (Eq. 6) and Table III/IV report the
//! average across machines and folds.

use crate::dataset::{pooled_dataset, Dataset};
use crate::features::FeatureSpec;
use crate::models::{FitOptions, FittedModel, ModelTechnique};
use crate::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos_counters::{FaultPlan, RunTrace};
use chaos_sim::Cluster;
use chaos_stats::exec::ExecPolicy;
use chaos_stats::{metrics, StatsError};
use serde::{Deserialize, Serialize};

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Cap on pooled training rows per fold (controls MARS cost; the
    /// paper's training sets are deliberately small).
    pub max_train_rows: usize,
    /// Model-fitting options.
    pub fit: FitOptions,
    /// Execution policy for the cross-validation folds (and sweep cells
    /// when this config drives [`crate::sweep::sweep_grid`]). Folds are
    /// independent, so serial and parallel evaluation are bit-identical;
    /// see [`chaos_stats::exec`].
    #[serde(default)]
    pub exec: ExecPolicy,
}

impl EvalConfig {
    /// Paper-shaped evaluation with fast fitting options for sweeps.
    pub fn fast() -> Self {
        EvalConfig {
            max_train_rows: 1_500,
            fit: FitOptions::fast(),
            exec: ExecPolicy::Serial,
        }
    }

    /// The same configuration under a different execution policy.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_train_rows: 2_500,
            fit: FitOptions::paper(),
            exec: ExecPolicy::Serial,
        }
    }
}

/// Metrics for one cross-validation fold, averaged across machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldMetrics {
    /// Which run was the training run.
    pub train_run: usize,
    /// Average per-machine Dynamic Range Error.
    pub dre: f64,
    /// Average per-machine root mean squared error, watts.
    pub rmse: f64,
    /// Average per-machine rMSE / mean power (Table III's "% Err").
    pub percent_error: f64,
    /// Average per-machine median relative error.
    pub median_relative_error: f64,
}

/// Cross-validated evaluation of one (feature set, technique) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Technique evaluated.
    pub technique: ModelTechnique,
    /// Per-fold metrics.
    pub folds: Vec<FoldMetrics>,
    /// Number of model fits performed (one per fold).
    pub models_built: usize,
}

impl EvalOutcome {
    /// Mean DRE across folds — the number Table IV reports.
    pub fn avg_dre(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.dre))
    }

    /// Mean rMSE across folds.
    pub fn avg_rmse(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.rmse))
    }

    /// Mean percent error across folds.
    pub fn avg_percent_error(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.percent_error))
    }

    /// Mean median relative error across folds.
    pub fn avg_median_relative_error(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.median_relative_error))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Evaluates one technique × feature set over a workload's runs using the
/// paper's protocol (train on one run, test on the others, every run
/// takes a turn as the training run).
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if fewer than two runs are given.
/// * Model-fitting errors propagate from the underlying estimators.
pub fn evaluate(
    traces: &[RunTrace],
    cluster: &Cluster,
    spec: &FeatureSpec,
    technique: ModelTechnique,
    config: &EvalConfig,
) -> Result<EvalOutcome, StatsError> {
    if traces.len() < 2 {
        return Err(StatsError::InsufficientData {
            observations: traces.len(),
            required: 2,
        });
    }
    let _span = chaos_obs::span("eval.evaluate");
    chaos_obs::add("eval.evaluations", 1);
    chaos_obs::add("eval.folds", traces.len() as u64);
    // chaos-lint: allow(R4) — Cluster construction asserts at least
    // one machine, so machines()[0] cannot be out of bounds.
    let catalog =
        chaos_counters::CounterCatalog::for_platform(&cluster.machines()[0].spec().platform.spec());
    let opts = config.fit.with_freq_column(spec.freq_column(&catalog));

    let ds = pooled_dataset(traces, spec)?;
    // Each fold is a pure function of (ds, train_run): fan out under the
    // policy, merge in fold order, surface the lowest-index error — all
    // bit-identical to the serial loop.
    let folds = config.exec.try_par_map_indices(traces.len(), |train_run| {
        let train_rows = ds.rows_in_runs(&[train_run]);
        let test_rows: Vec<usize> = (0..ds.len())
            .filter(|&i| ds.run_of[i] != train_run)
            .collect();
        let train = ds.subset(&train_rows).thinned(config.max_train_rows);
        let model = FittedModel::fit(technique, &train.x, &train.y, &opts)?;
        let test = ds.subset(&test_rows);
        fold_metrics(&model, &test, cluster, train_run)
    })?;
    Ok(EvalOutcome {
        technique,
        models_built: folds.len(),
        folds,
    })
}

/// Per-machine metrics on a test set, averaged across machines.
fn fold_metrics(
    model: &FittedModel,
    test: &Dataset,
    cluster: &Cluster,
    train_run: usize,
) -> Result<FoldMetrics, StatsError> {
    let mut dre = Vec::new();
    let mut rmse = Vec::new();
    let mut pct = Vec::new();
    let mut medrel = Vec::new();
    for machine in cluster.machines() {
        let rows = test.rows_of_machine(machine.id());
        if rows.is_empty() {
            continue;
        }
        let sub = test.subset(&rows);
        let pred = model.predict(&sub.x)?;
        dre.push(metrics::dynamic_range_error(
            &pred,
            &sub.y,
            machine.max_power(),
            machine.idle_power(),
        )?);
        rmse.push(metrics::rmse(&pred, &sub.y)?);
        pct.push(metrics::percent_error(&pred, &sub.y)?);
        medrel.push(metrics::median_relative_error(&pred, &sub.y)?);
    }
    if dre.is_empty() {
        return Err(StatsError::InsufficientData {
            observations: 0,
            required: 1,
        });
    }
    Ok(FoldMetrics {
        train_run,
        dre: mean(dre.into_iter()),
        rmse: mean(rmse.into_iter()),
        percent_error: mean(pct.into_iter()),
        median_relative_error: mean(medrel.into_iter()),
    })
}

/// Outcome of evaluating the pipeline against one fault plan: the
/// robust chain's accuracy and coverage versus two bare baselines.
///
/// All accuracy numbers score predictions made from *faulted* counters
/// against the *clean* measured power — the estimator only ever sees the
/// corrupted stream, the scorer keeps the ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultedOutcome {
    /// Counter-dropout rate of the plan (the sweep's x-axis).
    pub fault_rate: f64,
    /// Cluster-level DRE of the robust fallback chain.
    pub robust_dre: f64,
    /// Cluster-level rMSE of the robust chain, watts.
    pub robust_rmse: f64,
    /// Fraction of (machine, second) samples the chain answered above
    /// the constant floor.
    pub coverage: f64,
    /// Fraction of samples where the bare model returned an error
    /// (typed NaN rejection) instead of a wattage.
    pub bare_failure_fraction: f64,
    /// DRE of the naive recovery strategy — zero-filling invalid
    /// features and feeding the bare model anyway.
    pub naive_dre: f64,
}

/// Evaluates the robust chain and the bare baselines under one fault
/// plan: train on clean runs, inject `plan` into the test runs, score
/// against clean measured power.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if `train` or `test` is empty.
/// * Fitting and metric errors propagate.
pub fn evaluate_faulted(
    train: &[RunTrace],
    test: &[RunTrace],
    cluster: &Cluster,
    spec: &FeatureSpec,
    plan: &FaultPlan,
    config: &RobustConfig,
) -> Result<FaultedOutcome, StatsError> {
    let faulted: Vec<RunTrace> = test.iter().map(|t| plan.apply(t)).collect();
    evaluate_faulted_prepared(
        train,
        test,
        &faulted,
        cluster,
        spec,
        plan.counter_dropout,
        config,
    )
}

/// Scores an already-faulted (and possibly decimated) test set against
/// its clean counterpart. `test` supplies the ground-truth power;
/// `faulted` supplies what the estimator sees. The two slices must be
/// the same runs in the same order, transformed identically apart from
/// the fault injection.
fn evaluate_faulted_prepared(
    train: &[RunTrace],
    test: &[RunTrace],
    faulted: &[RunTrace],
    cluster: &Cluster,
    spec: &FeatureSpec,
    fault_rate: f64,
    config: &RobustConfig,
) -> Result<FaultedOutcome, StatsError> {
    if train.is_empty() || test.is_empty() {
        return Err(StatsError::InsufficientData {
            observations: train.len().min(test.len()),
            required: 1,
        });
    }
    if faulted.len() != test.len() {
        return Err(StatsError::DimensionMismatch {
            context: format!(
                "faulted evaluation: {} faulted runs vs {} clean runs",
                faulted.len(),
                test.len()
            ),
        });
    }
    let _span = chaos_obs::span("eval.faulted");
    chaos_obs::add("eval.faulted_evaluations", 1);
    // chaos-lint: allow(R4) — Cluster construction asserts at least
    // one machine, so machines()[0] cannot be out of bounds.
    let catalog =
        chaos_counters::CounterCatalog::for_platform(&cluster.machines()[0].spec().platform.spec());
    let cfg = RobustConfig {
        fit: config.fit.with_freq_column(spec.freq_column(&catalog)),
        ..*config
    };
    let idle_per_machine = cluster.idle_power() / cluster.machines().len() as f64;
    let robust = RobustEstimator::fit(
        train,
        spec,
        strawman_position(spec, &catalog),
        idle_per_machine,
        cfg,
    )?;
    // The bare baseline: same technique, same training data, no chain.
    let train_ds = pooled_dataset(train, spec)?.thinned(cfg.max_train_rows);
    let bare = FittedModel::fit(cfg.technique, &train_ds.x, &train_ds.y, &cfg.fit)?;

    // Robust chain, scored at cluster level against clean power.
    let mut pred = Vec::new();
    let mut actual = Vec::new();
    let mut covered = 0usize;
    let mut answered = 0usize;
    for (f, clean) in faulted.iter().zip(test) {
        let ce = robust.estimate_cluster(f);
        actual.extend_from_slice(&clean.cluster_measured_power()[..ce.power_w.len()]);
        pred.extend_from_slice(&ce.power_w);
        let total: usize = ce.tier_counts.values().sum();
        let floored = ce
            .tier_counts
            .get(&crate::robust::EstimateTier::Constant)
            .copied()
            .unwrap_or(0);
        answered += total;
        covered += total - floored;
    }
    let robust_rmse = metrics::rmse(&pred, &actual)?;
    let robust_dre =
        metrics::dynamic_range_error(&pred, &actual, cluster.max_power(), cluster.idle_power())?;
    let coverage = if answered == 0 {
        0.0
    } else {
        covered as f64 / answered as f64
    };

    // Bare baselines, per sample: the typed-error failure fraction, and
    // the naive zero-fill recovery everyone reaches for first.
    let clean_ds = pooled_dataset(test, spec)?;
    let faulted_ds = pooled_dataset(faulted, spec)?;
    let mut failures = 0usize;
    let mut naive_pred = Vec::with_capacity(faulted_ds.len());
    let mut naive_actual = Vec::with_capacity(faulted_ds.len());
    let mut zero_filled = Vec::new();
    for i in 0..faulted_ds.len() {
        let row = faulted_ds.x.row(i);
        if bare.predict_row(row).is_err() {
            failures += 1;
        }
        if clean_ds.y[i].is_finite() {
            zero_filled.clear();
            zero_filled.extend(row.iter().map(|v| if v.is_finite() { *v } else { 0.0 }));
            if let Ok(p) = bare.predict_row(&zero_filled) {
                naive_pred.push(p);
                naive_actual.push(clean_ds.y[i]);
            }
        }
    }
    let machine_range =
        (cluster.max_power() - cluster.idle_power()) / cluster.machines().len() as f64;
    let naive_dre = if naive_pred.is_empty() {
        f64::NAN
    } else {
        metrics::rmse(&naive_pred, &naive_actual)? / machine_range
    };
    Ok(FaultedOutcome {
        fault_rate,
        robust_dre,
        robust_rmse,
        coverage,
        bare_failure_fraction: failures as f64 / faulted_ds.len().max(1) as f64,
        naive_dre,
    })
}

/// Sweeps counter-dropout rates, evaluating the robust chain and the
/// bare baselines at each rate — the degradation curve of the
/// `ablation_faults` experiment. `base` supplies any additional fault
/// processes (outages, crashes) held constant across the sweep.
///
/// # Errors
///
/// Same conditions as [`evaluate_faulted`].
pub fn fault_sweep(
    train: &[RunTrace],
    test: &[RunTrace],
    cluster: &Cluster,
    spec: &FeatureSpec,
    base: &FaultPlan,
    rates: &[f64],
    config: &RobustConfig,
) -> Result<Vec<FaultedOutcome>, StatsError> {
    // When the sweep itself fans out, run each point's estimator serially
    // to avoid nested thread pools; outcomes are policy-invariant either
    // way.
    let inner = if config.exec.is_parallel() {
        RobustConfig {
            exec: ExecPolicy::Serial,
            ..*config
        }
    } else {
        *config
    };
    let _span = chaos_obs::span("eval.fault_sweep");
    chaos_obs::add("eval.fault_rates", rates.len() as u64);
    config.exec.try_par_map(rates, |&rate| {
        let plan = base.clone().with_counter_dropout(rate);
        evaluate_faulted(train, test, cluster, spec, &plan, &inner)
    })
}

/// [`fault_sweep`] over *decimated* test streams: faults are injected at
/// full rate first, then both the faulted stream (what the estimator
/// sees) and the clean stream (what the scorer sees) are decimated to
/// `interval_s`-second windows before evaluation.
///
/// Ordering matters and is deliberate: injecting then decimating models
/// a monitoring agent that aggregates a faulty 1 Hz collector, and it
/// exercises the boundary semantics of
/// [`RunTrace::decimated`](chaos_counters::RunTrace::decimated) — each
/// source sample, including one invalidated *exactly on* a window edge,
/// belongs to exactly one disjoint `[start, start + interval)` window
/// (the regression suite `fault_sweep_boundary.rs` pins this; a
/// double-counted edge sample would shift two window means at once).
/// With `interval_s == 1` decimation is the identity and the result is
/// bit-identical to [`fault_sweep`].
///
/// # Errors
///
/// * [`StatsError::InvalidParameter`] if `interval_s` is 0 (the
///   underlying decimation error; partial last windows are allowed).
/// * Same conditions as [`evaluate_faulted`] otherwise.
#[allow(clippy::too_many_arguments)]
pub fn fault_sweep_decimated(
    train: &[RunTrace],
    test: &[RunTrace],
    cluster: &Cluster,
    spec: &FeatureSpec,
    base: &FaultPlan,
    rates: &[f64],
    interval_s: usize,
    config: &RobustConfig,
) -> Result<Vec<FaultedOutcome>, StatsError> {
    let decimate = |run: &RunTrace| -> Result<RunTrace, StatsError> {
        run.decimated(interval_s)
            .map_err(|e| StatsError::InvalidParameter {
                context: format!("fault sweep decimation: {e}"),
            })
    };
    let clean: Vec<RunTrace> = test.iter().map(decimate).collect::<Result<_, _>>()?;
    // Same nested-pool avoidance as `fault_sweep`.
    let inner = if config.exec.is_parallel() {
        RobustConfig {
            exec: ExecPolicy::Serial,
            ..*config
        }
    } else {
        *config
    };
    let _span = chaos_obs::span("eval.fault_sweep_decimated");
    chaos_obs::add("eval.fault_rates", rates.len() as u64);
    config.exec.try_par_map(rates, |&rate| {
        let plan = base.clone().with_counter_dropout(rate);
        let faulted: Vec<RunTrace> = test
            .iter()
            .map(|t| decimate(&plan.apply(t)))
            .collect::<Result<_, _>>()?;
        evaluate_faulted_prepared(train, &clean, &faulted, cluster, spec, rate, &inner)
    })
}

/// Rolling Dynamic Range Error (Eq. 6) over the most recent `capacity`
/// (predicted, measured) pairs — the drift statistic the streaming
/// engine monitors against a held-out baseline DRE.
///
/// The window is a ring buffer of squared errors; [`dre`](RollingDre::dre)
/// recomputes the mean from the buffer on every call rather than keeping
/// a running sum, so the value is a pure function of the retained pairs
/// — no accumulated floating-point drift, and bit-identical wherever the
/// same pairs are replayed.
///
/// # Example
///
/// ```
/// use chaos_core::eval::RollingDre;
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// let mut r = RollingDre::new(3, 200.0, 100.0)?;
/// for _ in 0..3 {
///     r.push(150.0, 160.0); // 10 W off on a 100 W range
/// }
/// assert!((r.dre().unwrap() - 0.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RollingDre {
    capacity: usize,
    range_w: f64,
    squared_errors: std::collections::VecDeque<f64>,
}

impl RollingDre {
    /// A rolling-DRE window of `capacity` pairs for a machine whose
    /// dynamic power range is `power_max_w − power_idle_w` (Eq. 6's
    /// denominator).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` is 0 or the
    /// power range is not finite and positive.
    pub fn new(capacity: usize, power_max_w: f64, power_idle_w: f64) -> Result<Self, StatsError> {
        if capacity == 0 {
            return Err(StatsError::InvalidParameter {
                context: "rolling dre: capacity must be at least 1".to_string(),
            });
        }
        let range_w = power_max_w - power_idle_w;
        if !range_w.is_finite() || range_w <= 0.0 {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "rolling dre: power range {power_max_w} − {power_idle_w} must be finite and positive"
                ),
            });
        }
        Ok(RollingDre {
            capacity,
            range_w,
            squared_errors: std::collections::VecDeque::with_capacity(capacity),
        })
    }

    /// Observes one (predicted, measured) pair, evicting the oldest once
    /// the window is full. Non-finite pairs are skipped (a faulted meter
    /// second carries no drift information) — the return value says
    /// whether the pair was admitted.
    pub fn push(&mut self, predicted: f64, measured: f64) -> bool {
        if !predicted.is_finite() || !measured.is_finite() {
            return false;
        }
        if self.squared_errors.len() == self.capacity {
            self.squared_errors.pop_front();
        }
        let err = predicted - measured;
        self.squared_errors.push_back(err * err);
        true
    }

    /// Number of pairs currently in the window.
    pub fn len(&self) -> usize {
        self.squared_errors.len()
    }

    /// Whether the window holds no pairs yet.
    pub fn is_empty(&self) -> bool {
        self.squared_errors.is_empty()
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the window has filled to capacity — the point at which
    /// the drift detector starts trusting the statistic.
    pub fn is_warm(&self) -> bool {
        self.squared_errors.len() == self.capacity
    }

    /// The DRE over the retained pairs: `rMSE / (P_max − P_idle)`, or
    /// `None` while the window is empty.
    pub fn dre(&self) -> Option<f64> {
        if self.squared_errors.is_empty() {
            return None;
        }
        let mean: f64 = self.squared_errors.iter().sum::<f64>() / self.squared_errors.len() as f64;
        Some(mean.sqrt() / self.range_w)
    }

    /// The window's state as a typed reading. Unlike [`RollingDre::dre`],
    /// this distinguishes an *empty* window (every recent second faulted
    /// or skipped — there is no statistic, and consumers must not coerce
    /// the absence into NaN) from a warming and a fully warm window.
    pub fn reading(&self) -> DreReading {
        match self.dre() {
            None => DreReading::Insufficient,
            Some(dre) if self.is_warm() => DreReading::Ready { dre },
            Some(dre) => DreReading::Warming { dre },
        }
    }

    /// Empties the window without changing capacity or range — used when
    /// a machine rejoins after quarantine and its error history no longer
    /// describes the model it is running.
    pub fn clear(&mut self) {
        self.squared_errors.clear();
    }

    /// Exports the window contents as plain data for checkpointing.
    pub fn export_state(&self) -> RollingDreState {
        RollingDreState {
            capacity: self.capacity,
            range_w: self.range_w,
            squared_errors: self.squared_errors.iter().copied().collect(),
        }
    }

    /// Rebuilds a window from exported state.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the capacity is zero,
    /// the range is not finite and positive, or the snapshot holds more
    /// errors than its capacity.
    pub fn import_state(state: RollingDreState) -> Result<Self, StatsError> {
        if state.capacity == 0 || !state.range_w.is_finite() || state.range_w <= 0.0 {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "rolling dre import: capacity {} range {}",
                    state.capacity, state.range_w
                ),
            });
        }
        if state.squared_errors.len() > state.capacity {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "rolling dre import: {} errors exceed capacity {}",
                    state.squared_errors.len(),
                    state.capacity
                ),
            });
        }
        let mut squared_errors = std::collections::VecDeque::with_capacity(state.capacity);
        squared_errors.extend(state.squared_errors);
        Ok(RollingDre {
            capacity: state.capacity,
            range_w: state.range_w,
            squared_errors,
        })
    }
}

/// A typed reading of a [`RollingDre`] window: either there is no
/// statistic at all (zero valid pairs — the "insufficient data" state),
/// or there is one, qualified by whether the window has warmed up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DreReading {
    /// The window holds zero valid pairs; no DRE exists. Consumers must
    /// treat this as "no information", never as a numeric value.
    Insufficient,
    /// The window holds some pairs but has not filled to capacity; the
    /// statistic is provisional.
    Warming {
        /// DRE over the pairs retained so far.
        dre: f64,
    },
    /// The window is full; the statistic is trustworthy.
    Ready {
        /// DRE over the full window.
        dre: f64,
    },
}

impl DreReading {
    /// The DRE value if one exists (warming or ready).
    pub fn value(self) -> Option<f64> {
        match self {
            DreReading::Insufficient => None,
            DreReading::Warming { dre } | DreReading::Ready { dre } => Some(dre),
        }
    }
}

/// Plain-data snapshot of a [`RollingDre`], produced by
/// [`RollingDre::export_state`] and consumed by
/// [`RollingDre::import_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct RollingDreState {
    /// Window capacity in pairs.
    pub capacity: usize,
    /// Dynamic power range (Eq. 6's denominator), watts.
    pub range_w: f64,
    /// Retained squared errors, oldest first.
    pub squared_errors: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_counters::{collect_run, CounterCatalog};
    use chaos_sim::Platform;
    use chaos_workloads::{SimConfig, Workload};

    fn setup() -> (Vec<RunTrace>, Cluster, CounterCatalog) {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 9);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let traces: Vec<RunTrace> = (0..3)
            .map(|r| {
                collect_run(
                    &cluster,
                    &catalog,
                    Workload::Prime,
                    &SimConfig::quick(),
                    40 + r,
                )
                .unwrap()
            })
            .collect();
        (traces, cluster, catalog)
    }

    #[test]
    fn evaluate_produces_one_fold_per_run() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let out = evaluate(
            &traces,
            &cluster,
            &spec,
            ModelTechnique::Linear,
            &EvalConfig::fast(),
        )
        .unwrap();
        assert_eq!(out.folds.len(), 3);
        assert_eq!(out.models_built, 3);
        assert!(
            out.avg_dre() > 0.0 && out.avg_dre() < 1.0,
            "dre {}",
            out.avg_dre()
        );
        assert!(out.avg_rmse() > 0.0);
        assert!(out.avg_percent_error() > 0.0);
        assert!(out.avg_median_relative_error() >= 0.0);
    }

    #[test]
    fn linear_model_on_general_features_is_reasonably_accurate() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let out = evaluate(
            &traces,
            &cluster,
            &spec,
            ModelTechnique::Linear,
            &EvalConfig::fast(),
        )
        .unwrap();
        // Even linear + general features should land well under 30% DRE
        // on Prime (CPU-dominated, strong utilization signal).
        assert!(out.avg_dre() < 0.30, "dre = {}", out.avg_dre());
    }

    #[test]
    fn quadratic_not_worse_than_linear_on_prime() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let lin = evaluate(
            &traces,
            &cluster,
            &spec,
            ModelTechnique::Linear,
            &EvalConfig::fast(),
        )
        .unwrap();
        let quad = evaluate(
            &traces,
            &cluster,
            &spec,
            ModelTechnique::Quadratic,
            &EvalConfig::fast(),
        )
        .unwrap();
        // On this deliberately tiny dataset the quadratic model may give
        // back some accuracy to variance, but it must stay in the same
        // league; the full-size experiments assert the paper's ordering.
        assert!(
            quad.avg_dre() < lin.avg_dre() * 2.0 && quad.avg_dre() < 0.25,
            "quadratic {} vs linear {}",
            quad.avg_dre(),
            lin.avg_dre()
        );
    }

    #[test]
    fn faulted_evaluation_degrades_gracefully() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let cfg = RobustConfig::fast();
        let clean = evaluate_faulted(
            &traces[..2],
            &traces[2..],
            &cluster,
            &spec,
            &FaultPlan::new(1),
            &cfg,
        )
        .unwrap();
        assert_eq!(clean.fault_rate, 0.0);
        assert!(clean.robust_dre < 0.2, "clean dre {}", clean.robust_dre);
        assert!(clean.coverage > 0.999);
        assert_eq!(clean.bare_failure_fraction, 0.0);

        let faulted = evaluate_faulted(
            &traces[..2],
            &traces[2..],
            &cluster,
            &spec,
            &FaultPlan::new(1).with_counter_dropout(0.2),
            &cfg,
        )
        .unwrap();
        // The bare model errors on most rows at 20% per-sample dropout
        // over 8 features (1 - 0.8^8 ≈ 0.83); the robust chain still
        // answers with bounded error.
        assert!(
            faulted.bare_failure_fraction > 0.5,
            "bare failures {}",
            faulted.bare_failure_fraction
        );
        assert!(faulted.robust_dre.is_finite());
        assert!(
            faulted.robust_dre < 0.4,
            "faulted dre {}",
            faulted.robust_dre
        );
        assert!(faulted.robust_dre >= clean.robust_dre * 0.5);
    }

    #[test]
    fn fault_sweep_covers_every_rate() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let out = fault_sweep(
            &traces[..2],
            &traces[2..],
            &cluster,
            &spec,
            &FaultPlan::new(3),
            &[0.0, 0.1],
            &RobustConfig::fast(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].fault_rate, 0.0);
        assert_eq!(out[1].fault_rate, 0.1);
        // Coverage is non-increasing in fault rate (allowing small
        // sampling wiggle).
        assert!(out[1].coverage <= out[0].coverage + 0.01);
    }

    #[test]
    fn decimated_sweep_at_interval_one_matches_plain_sweep() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let plain = fault_sweep(
            &traces[..2],
            &traces[2..],
            &cluster,
            &spec,
            &FaultPlan::new(3),
            &[0.0, 0.1],
            &RobustConfig::fast(),
        )
        .unwrap();
        let decimated = fault_sweep_decimated(
            &traces[..2],
            &traces[2..],
            &cluster,
            &spec,
            &FaultPlan::new(3),
            &[0.0, 0.1],
            1,
            &RobustConfig::fast(),
        )
        .unwrap();
        assert_eq!(plain, decimated);
    }

    #[test]
    fn decimated_sweep_stays_finite_at_coarser_intervals() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let out = fault_sweep_decimated(
            &traces[..2],
            &traces[2..],
            &cluster,
            &spec,
            &FaultPlan::new(3),
            &[0.0, 0.15],
            5,
            &RobustConfig::fast(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        for o in &out {
            assert!(o.robust_dre.is_finite(), "dre {:?}", o.robust_dre);
            assert!(o.coverage > 0.0);
        }
        assert!(
            fault_sweep_decimated(
                &traces[..2],
                &traces[2..],
                &cluster,
                &spec,
                &FaultPlan::new(3),
                &[0.0],
                0,
                &RobustConfig::fast(),
            )
            .is_err(),
            "interval 0 must be rejected"
        );
    }

    #[test]
    fn rolling_dre_slides_and_recovers() {
        let mut r = RollingDre::new(4, 150.0, 50.0).unwrap();
        assert!(r.dre().is_none());
        assert!(r.is_empty());
        for _ in 0..4 {
            assert!(r.push(100.0, 120.0)); // 20 W error on a 100 W range
        }
        assert!(r.is_warm());
        assert!((r.dre().unwrap() - 0.2).abs() < 1e-12);
        // Perfect predictions push the bad pairs out of the window.
        for _ in 0..4 {
            assert!(r.push(100.0, 100.0));
        }
        assert_eq!(r.len(), r.capacity());
        assert_eq!(r.dre().unwrap(), 0.0);
        // Non-finite pairs are skipped, not admitted.
        assert!(!r.push(f64::NAN, 100.0));
        assert!(!r.push(100.0, f64::INFINITY));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn rolling_dre_rejects_bad_parameters() {
        assert!(RollingDre::new(0, 150.0, 50.0).is_err());
        assert!(RollingDre::new(4, 50.0, 50.0).is_err());
        assert!(RollingDre::new(4, f64::NAN, 50.0).is_err());
    }

    #[test]
    fn too_few_runs_rejected() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::cpu_only(&catalog);
        assert!(evaluate(
            &traces[..1],
            &cluster,
            &spec,
            ModelTechnique::Linear,
            &EvalConfig::fast()
        )
        .is_err());
    }
}
