//! Model evaluation with the paper's protocol: cross-validation over
//! separate application runs, metrics averaged per machine.
//!
//! "All models are evaluated by using 5-fold cross validation with a
//! training set about ten times smaller than the test data set. The
//! training and test sets are taken from separate application runs."
//! Each fold trains on one run and tests on every other run; DRE uses
//! each machine's dynamic power range (Eq. 6) and Table III/IV report the
//! average across machines and folds.

use crate::dataset::{pooled_dataset, Dataset};
use crate::features::FeatureSpec;
use crate::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_counters::RunTrace;
use chaos_sim::Cluster;
use chaos_stats::{metrics, StatsError};
use serde::{Deserialize, Serialize};

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Cap on pooled training rows per fold (controls MARS cost; the
    /// paper's training sets are deliberately small).
    pub max_train_rows: usize,
    /// Model-fitting options.
    pub fit: FitOptions,
}

impl EvalConfig {
    /// Paper-shaped evaluation with fast fitting options for sweeps.
    pub fn fast() -> Self {
        EvalConfig {
            max_train_rows: 1_500,
            fit: FitOptions::fast(),
        }
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_train_rows: 2_500,
            fit: FitOptions::paper(),
        }
    }
}

/// Metrics for one cross-validation fold, averaged across machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldMetrics {
    /// Which run was the training run.
    pub train_run: usize,
    /// Average per-machine Dynamic Range Error.
    pub dre: f64,
    /// Average per-machine root mean squared error, watts.
    pub rmse: f64,
    /// Average per-machine rMSE / mean power (Table III's "% Err").
    pub percent_error: f64,
    /// Average per-machine median relative error.
    pub median_relative_error: f64,
}

/// Cross-validated evaluation of one (feature set, technique) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Technique evaluated.
    pub technique: ModelTechnique,
    /// Per-fold metrics.
    pub folds: Vec<FoldMetrics>,
    /// Number of model fits performed (one per fold).
    pub models_built: usize,
}

impl EvalOutcome {
    /// Mean DRE across folds — the number Table IV reports.
    pub fn avg_dre(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.dre))
    }

    /// Mean rMSE across folds.
    pub fn avg_rmse(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.rmse))
    }

    /// Mean percent error across folds.
    pub fn avg_percent_error(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.percent_error))
    }

    /// Mean median relative error across folds.
    pub fn avg_median_relative_error(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.median_relative_error))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Evaluates one technique × feature set over a workload's runs using the
/// paper's protocol (train on one run, test on the others, every run
/// takes a turn as the training run).
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if fewer than two runs are given.
/// * Model-fitting errors propagate from the underlying estimators.
pub fn evaluate(
    traces: &[RunTrace],
    cluster: &Cluster,
    spec: &FeatureSpec,
    technique: ModelTechnique,
    config: &EvalConfig,
) -> Result<EvalOutcome, StatsError> {
    if traces.len() < 2 {
        return Err(StatsError::InsufficientData {
            observations: traces.len(),
            required: 2,
        });
    }
    let catalog = chaos_counters::CounterCatalog::for_platform(
        &cluster.machines()[0].spec().platform.spec(),
    );
    let opts = config.fit.with_freq_column(spec.freq_column(&catalog));

    let ds = pooled_dataset(traces, spec)?;
    let mut folds = Vec::with_capacity(traces.len());
    for train_run in 0..traces.len() {
        let train_rows = ds.rows_in_runs(&[train_run]);
        let test_rows: Vec<usize> = (0..ds.len())
            .filter(|&i| ds.run_of[i] != train_run)
            .collect();
        let train = ds.subset(&train_rows).thinned(config.max_train_rows);
        let model = FittedModel::fit(technique, &train.x, &train.y, &opts)?;
        let test = ds.subset(&test_rows);
        folds.push(fold_metrics(&model, &test, cluster, train_run)?);
    }
    Ok(EvalOutcome {
        technique,
        models_built: folds.len(),
        folds,
    })
}

/// Per-machine metrics on a test set, averaged across machines.
fn fold_metrics(
    model: &FittedModel,
    test: &Dataset,
    cluster: &Cluster,
    train_run: usize,
) -> Result<FoldMetrics, StatsError> {
    let mut dre = Vec::new();
    let mut rmse = Vec::new();
    let mut pct = Vec::new();
    let mut medrel = Vec::new();
    for machine in cluster.machines() {
        let rows = test.rows_of_machine(machine.id());
        if rows.is_empty() {
            continue;
        }
        let sub = test.subset(&rows);
        let pred = model.predict(&sub.x)?;
        dre.push(metrics::dynamic_range_error(
            &pred,
            &sub.y,
            machine.max_power(),
            machine.idle_power(),
        )?);
        rmse.push(metrics::rmse(&pred, &sub.y)?);
        pct.push(metrics::percent_error(&pred, &sub.y)?);
        medrel.push(metrics::median_relative_error(&pred, &sub.y)?);
    }
    if dre.is_empty() {
        return Err(StatsError::InsufficientData {
            observations: 0,
            required: 1,
        });
    }
    Ok(FoldMetrics {
        train_run,
        dre: mean(dre.into_iter()),
        rmse: mean(rmse.into_iter()),
        percent_error: mean(pct.into_iter()),
        median_relative_error: mean(medrel.into_iter()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_counters::{collect_run, CounterCatalog};
    use chaos_sim::Platform;
    use chaos_workloads::{SimConfig, Workload};

    fn setup() -> (Vec<RunTrace>, Cluster, CounterCatalog) {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 9);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let traces: Vec<RunTrace> = (0..3)
            .map(|r| {
                collect_run(
                    &cluster,
                    &catalog,
                    Workload::Prime,
                    &SimConfig::quick(),
                    40 + r,
                )
            })
            .collect();
        (traces, cluster, catalog)
    }

    #[test]
    fn evaluate_produces_one_fold_per_run() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let out = evaluate(
            &traces,
            &cluster,
            &spec,
            ModelTechnique::Linear,
            &EvalConfig::fast(),
        )
        .unwrap();
        assert_eq!(out.folds.len(), 3);
        assert_eq!(out.models_built, 3);
        assert!(out.avg_dre() > 0.0 && out.avg_dre() < 1.0, "dre {}", out.avg_dre());
        assert!(out.avg_rmse() > 0.0);
        assert!(out.avg_percent_error() > 0.0);
        assert!(out.avg_median_relative_error() >= 0.0);
    }

    #[test]
    fn linear_model_on_general_features_is_reasonably_accurate() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let out = evaluate(
            &traces,
            &cluster,
            &spec,
            ModelTechnique::Linear,
            &EvalConfig::fast(),
        )
        .unwrap();
        // Even linear + general features should land well under 30% DRE
        // on Prime (CPU-dominated, strong utilization signal).
        assert!(out.avg_dre() < 0.30, "dre = {}", out.avg_dre());
    }

    #[test]
    fn quadratic_not_worse_than_linear_on_prime() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let lin = evaluate(&traces, &cluster, &spec, ModelTechnique::Linear, &EvalConfig::fast())
            .unwrap();
        let quad = evaluate(
            &traces,
            &cluster,
            &spec,
            ModelTechnique::Quadratic,
            &EvalConfig::fast(),
        )
        .unwrap();
        // On this deliberately tiny dataset the quadratic model may give
        // back some accuracy to variance, but it must stay in the same
        // league; the full-size experiments assert the paper's ordering.
        assert!(
            quad.avg_dre() < lin.avg_dre() * 2.0 && quad.avg_dre() < 0.25,
            "quadratic {} vs linear {}",
            quad.avg_dre(),
            lin.avg_dre()
        );
    }

    #[test]
    fn too_few_runs_rejected() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::cpu_only(&catalog);
        assert!(evaluate(
            &traces[..1],
            &cluster,
            &spec,
            ModelTechnique::Linear,
            &EvalConfig::fast()
        )
        .is_err());
    }
}
