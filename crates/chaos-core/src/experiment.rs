//! High-level experiment orchestration: collect → select → sweep for one
//! cluster, with paper-shaped defaults.

use crate::eval::{evaluate, EvalConfig, EvalOutcome};
use crate::features::FeatureSpec;
use crate::models::ModelTechnique;
use crate::selection::{select_features, SelectionConfig, SelectionResult};
use crate::sweep::{sweep_grid, SweepCell};
use chaos_counters::{collect_run, CounterCatalog, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stats::StatsError;
use chaos_workloads::{SimConfig, Workload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;

/// Configuration of a full cluster experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Machines per cluster (the paper uses 5).
    pub machines: usize,
    /// Runs per workload (the paper uses 5; Figure 1 shows all of them).
    pub runs_per_workload: usize,
    /// Workloads to run.
    pub workloads: Vec<Workload>,
    /// Scheduler configuration.
    pub sim: SimConfig,
    /// Seed for cluster construction (machine variation) and run seeds.
    pub cluster_seed: u64,
    /// Feature-selection tunables.
    pub selection: SelectionConfig,
    /// Evaluation tunables.
    pub eval: EvalConfig,
}

impl ExperimentConfig {
    /// Paper-shaped: 5 machines, 5 runs, all four workloads.
    pub fn paper() -> Self {
        ExperimentConfig {
            machines: 5,
            runs_per_workload: 5,
            workloads: Workload::ALL.to_vec(),
            sim: SimConfig::paper(),
            cluster_seed: 2012,
            selection: SelectionConfig::default(),
            eval: EvalConfig::fast(),
        }
    }

    /// Returns a copy with the execution policy applied to every fan-out
    /// stage (selection combos, cross-validation folds, sweep cells).
    /// Results are bit-identical across policies; binaries typically pass
    /// [`chaos_stats::exec::ExecPolicy::from_env`] here so `CHAOS_THREADS`
    /// controls parallelism without recompiling.
    #[must_use]
    pub fn with_exec(mut self, exec: chaos_stats::exec::ExecPolicy) -> Self {
        self.selection.exec = exec;
        self.eval.exec = exec;
        self
    }

    /// Small and fast: 3 machines, 2 runs, two workloads. For tests and
    /// doc examples.
    pub fn quick() -> Self {
        ExperimentConfig {
            machines: 3,
            runs_per_workload: 2,
            workloads: vec![Workload::Prime, Workload::WordCount],
            sim: SimConfig::quick(),
            cluster_seed: 7,
            selection: SelectionConfig::default(),
            eval: EvalConfig::fast(),
        }
    }
}

/// Collected traces and metadata for one cluster, ready for selection,
/// evaluation and sweeps.
#[derive(Debug, Clone)]
pub struct ClusterExperiment {
    /// The cluster's platform.
    pub platform: Platform,
    /// The simulated cluster (source of dynamic ranges for DRE).
    pub cluster: Cluster,
    /// The platform's counter catalog.
    pub catalog: CounterCatalog,
    config: ExperimentConfig,
    traces: Vec<RunTrace>,
    ranges: BTreeMap<String, Range<usize>>,
}

impl ClusterExperiment {
    /// Simulates and collects every (workload, run) trace for a platform.
    pub fn collect(platform: Platform, config: &ExperimentConfig) -> Self {
        let cluster = Cluster::homogeneous(platform, config.machines, config.cluster_seed);
        let catalog = CounterCatalog::for_platform(&platform.spec());
        let mut traces = Vec::new();
        let mut ranges = BTreeMap::new();
        for (wi, w) in config.workloads.iter().enumerate() {
            let start = traces.len();
            for run in 0..config.runs_per_workload {
                let seed = config
                    .cluster_seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((wi * 101 + run) as u64);
                traces.push(
                    collect_run(&cluster, &catalog, *w, &config.sim, seed)
                        // chaos-lint: allow(R4) — the catalog is built
                        // from this cluster's own platform, so collection
                        // cannot miss counters.
                        .expect("homogeneous cluster with its own catalog collects"),
                );
            }
            ranges.insert(w.name().to_string(), start..traces.len());
        }
        ClusterExperiment {
            platform,
            cluster,
            catalog,
            config: config.clone(),
            traces,
            ranges,
        }
    }

    /// The configuration this experiment was collected with.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Every trace, grouped by workload in configuration order.
    pub fn traces(&self) -> &[RunTrace] {
        &self.traces
    }

    /// The traces of one workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload was not part of the experiment.
    pub fn traces_for(&self, workload: Workload) -> &[RunTrace] {
        let r = self
            .ranges
            .get(workload.name())
            // chaos-lint: allow(R4) — documented panic contract: callers
            // may only ask for workloads named in the collection config.
            .unwrap_or_else(|| panic!("workload {workload} not collected"))
            .clone();
        &self.traces[r]
    }

    /// Runs Algorithm 1 over all collected workloads.
    ///
    /// # Errors
    ///
    /// Propagates statistical errors from the selection pipeline.
    pub fn select_features(&self) -> Result<SelectionResult, StatsError> {
        select_features(&self.traces, &self.catalog, &self.config.selection)
    }

    /// The standard feature-set grid used in Figures 3–4 and Table IV:
    /// CPU-only (U), cluster-specific (C), cluster + lagged MHz (CP), and
    /// general (G).
    pub fn standard_feature_sets(&self, selection: &SelectionResult) -> Vec<(String, FeatureSpec)> {
        let cluster_spec = selection.feature_spec();
        vec![
            ("U".to_string(), FeatureSpec::cpu_only(&self.catalog)),
            ("C".to_string(), cluster_spec.clone()),
            (
                "CP".to_string(),
                cluster_spec.with_lagged_freq(&self.catalog),
            ),
            ("G".to_string(), FeatureSpec::general(&self.catalog)),
        ]
    }

    /// Cross-validated evaluation of one combination on one workload.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn evaluate(
        &self,
        workload: Workload,
        spec: &FeatureSpec,
        technique: ModelTechnique,
    ) -> Result<EvalOutcome, StatsError> {
        evaluate(
            self.traces_for(workload),
            &self.cluster,
            spec,
            technique,
            &self.config.eval,
        )
    }

    /// Full technique × feature-set sweep on one workload.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn sweep(
        &self,
        workload: Workload,
        feature_sets: &[(String, FeatureSpec)],
    ) -> Result<Vec<SweepCell>, StatsError> {
        sweep_grid(
            self.traces_for(workload),
            &self.cluster,
            feature_sets,
            &ModelTechnique::ALL,
            &self.config.eval,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_builds_grouped_traces() {
        let cfg = ExperimentConfig::quick();
        let exp = ClusterExperiment::collect(Platform::Atom, &cfg);
        assert_eq!(exp.traces().len(), 4); // 2 workloads × 2 runs
        assert_eq!(exp.traces_for(Workload::Prime).len(), 2);
        assert_eq!(exp.traces_for(Workload::WordCount).len(), 2);
        assert_eq!(exp.traces_for(Workload::Prime)[0].workload, "prime");
        assert_eq!(exp.platform, Platform::Atom);
        assert_eq!(exp.config().machines, 3);
    }

    #[test]
    #[should_panic(expected = "not collected")]
    fn traces_for_unknown_workload_panics() {
        let cfg = ExperimentConfig::quick();
        let exp = ClusterExperiment::collect(Platform::Atom, &cfg);
        exp.traces_for(Workload::Sort);
    }

    #[test]
    fn end_to_end_select_and_evaluate() {
        let cfg = ExperimentConfig::quick();
        let exp = ClusterExperiment::collect(Platform::Core2, &cfg);
        let selection = exp.select_features().unwrap();
        assert!(!selection.selected.is_empty());
        let sets = exp.standard_feature_sets(&selection);
        assert_eq!(sets.len(), 4);
        let out = exp
            .evaluate(Workload::Prime, &sets[3].1, ModelTechnique::Linear)
            .unwrap();
        assert!(out.avg_dre() < 0.5, "dre {}", out.avg_dre());
    }
}
