//! Feature specifications: which counters feed a model.

use chaos_counters::CounterCatalog;
use serde::{Deserialize, Serialize};

/// The general cross-platform feature set of Table II ("General" column):
/// counters significant across all six clusters.
pub const GENERAL_FEATURE_NAMES: [&str; 8] = [
    "Processor\\% Processor Time (_Total)",
    "Processor Performance\\Processor Frequency (Processor_0)",
    "Memory\\Cache Faults/sec",
    "Memory\\Pages/sec",
    "Memory\\Pool Nonpaged Allocs",
    "PhysicalDisk\\Disk Total Disk Bytes/sec (_Total)",
    "Cache\\Pin Reads/sec",
    "Job Object Details\\Total Page File Bytes Peak",
];

/// A set of model inputs: counter indices plus optional lagged copies
/// (the paper's "MHz(t−1)" variant adds the previous second's frequency).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Indices into the counter catalog, used at time `t`.
    pub counters: Vec<usize>,
    /// Indices whose value at `t − 1` is appended as an extra feature.
    pub lagged: Vec<usize>,
}

impl FeatureSpec {
    /// A plain spec over current-second counters.
    pub fn new(counters: Vec<usize>) -> Self {
        FeatureSpec {
            counters,
            lagged: Vec::new(),
        }
    }

    /// The CPU-utilization-only spec (the strawman feature set).
    ///
    /// # Panics
    ///
    /// Panics if the catalog lacks the utilization counter (never for
    /// catalogs built by [`CounterCatalog::for_platform`]).
    pub fn cpu_only(catalog: &CounterCatalog) -> Self {
        let idx = catalog
            .index_of("Processor\\% Processor Time (_Total)")
            // chaos-lint: allow(R4) — documented panic contract; every
            // for_platform catalog exposes the utilization counter.
            .expect("catalog must expose processor utilization");
        FeatureSpec::new(vec![idx])
    }

    /// The general cross-platform set (Table II's "General" column).
    ///
    /// # Panics
    ///
    /// Panics if the catalog lacks one of the general counters.
    pub fn general(catalog: &CounterCatalog) -> Self {
        let counters = GENERAL_FEATURE_NAMES
            .iter()
            .map(|n| {
                catalog
                    .index_of(n)
                    // chaos-lint: allow(R4) — documented panic contract;
                    // the general counter set is part of every catalog.
                    .unwrap_or_else(|| panic!("catalog missing general counter {n}"))
            })
            .collect();
        FeatureSpec::new(counters)
    }

    /// Returns a copy with the previous-second frequency appended (the
    /// paper's "+MHz(t−1)" variant, labeled QCP in Table IV).
    ///
    /// # Panics
    ///
    /// Panics if the catalog lacks the core-0 frequency counter.
    pub fn with_lagged_freq(&self, catalog: &CounterCatalog) -> Self {
        let f = catalog
            .index_of("Processor Performance\\Processor Frequency (Processor_0)")
            // chaos-lint: allow(R4) — documented panic contract; every
            // for_platform catalog exposes the core-0 frequency counter.
            .expect("catalog must expose core-0 frequency");
        let mut lagged = self.lagged.clone();
        if !lagged.contains(&f) {
            lagged.push(f);
        }
        FeatureSpec {
            counters: self.counters.clone(),
            lagged,
        }
    }

    /// Total model-input width (current + lagged columns).
    pub fn width(&self) -> usize {
        self.counters.len() + self.lagged.len()
    }

    /// Human-readable names of all columns, lagged columns suffixed.
    pub fn names(&self, catalog: &CounterCatalog) -> Vec<String> {
        let mut out: Vec<String> = self
            .counters
            .iter()
            .map(|&i| catalog.def(i).name.clone())
            .collect();
        out.extend(
            self.lagged
                .iter()
                .map(|&i| format!("{} (t-1)", catalog.def(i).name)),
        );
        out
    }

    /// Position of a processor-frequency counter within this spec's
    /// *current* columns, if present — the switching model's indicator.
    /// Any core's frequency qualifies (the paper uses one core's
    /// frequency as a proxy for the whole system).
    pub fn freq_column(&self, catalog: &CounterCatalog) -> Option<usize> {
        self.counters.iter().position(|&c| {
            let d = catalog.def(c);
            d.category == chaos_counters::CounterCategory::ProcessorPerformance
                && d.name.contains("Processor Frequency")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_sim::Platform;

    fn catalog() -> CounterCatalog {
        CounterCatalog::for_platform(&Platform::Opteron.spec())
    }

    #[test]
    fn cpu_only_is_one_column() {
        let c = catalog();
        let s = FeatureSpec::cpu_only(&c);
        assert_eq!(s.width(), 1);
        assert_eq!(s.names(&c), vec!["Processor\\% Processor Time (_Total)"]);
        assert!(s.freq_column(&c).is_none());
    }

    #[test]
    fn general_set_has_eight_counters() {
        let c = catalog();
        let s = FeatureSpec::general(&c);
        assert_eq!(s.width(), 8);
        assert!(s.freq_column(&c).is_some());
    }

    #[test]
    fn lagged_freq_appends_one_column() {
        let c = catalog();
        let s = FeatureSpec::general(&c).with_lagged_freq(&c);
        assert_eq!(s.width(), 9);
        let names = s.names(&c);
        assert!(names.last().unwrap().ends_with("(t-1)"));
        // Idempotent.
        let s2 = s.with_lagged_freq(&c);
        assert_eq!(s2.width(), 9);
    }

    #[test]
    fn freq_column_position_is_correct() {
        let c = catalog();
        let s = FeatureSpec::general(&c);
        let pos = s.freq_column(&c).unwrap();
        assert!(s.names(&c)[pos].contains("Processor Frequency"));
    }
}
