//! The CHAOS framework: composable, highly accurate, OS-based power
//! models (IISWC 2012), end to end.
//!
//! This crate ties the substrates together into the paper's pipeline:
//!
//! 1. **Collect** — drive a simulated cluster ([`chaos_sim`]) through
//!    MapReduce-style workloads ([`chaos_workloads`]) and record OS
//!    counters plus metered power at 1 Hz ([`chaos_counters`]).
//! 2. **Select features** — [`selection`] implements the paper's
//!    Algorithm 1: correlation pruning, co-dependence elimination, per-
//!    machine L1 + stepwise regression, the cross-machine weighted-union
//!    histogram, and the cluster-level stepwise refit.
//! 3. **Fit models** — [`models`] implements the four techniques of
//!    Section IV-B behind one [`models::FittedModel`] type: linear
//!    (Eq. 1), piecewise linear (Eq. 2, MARS degree 1), quadratic (Eq. 3,
//!    MARS degree 2), and the frequency-switching model (Eq. 4).
//! 4. **Compose** — [`compose`] turns machine models into cluster models
//!    by summation (Eq. 5), including per-platform models for
//!    heterogeneous clusters.
//! 5. **Evaluate** — [`eval`] runs the paper's protocol (5-fold
//!    cross-validation over separate application runs, training set
//!    several times smaller than test) and reports rMSE, % error, median
//!    relative error, and the paper's Dynamic Range Error.
//! 6. **Sweep** — [`sweep`] explores technique × feature-set grids (the
//!    paper builds over 1200 models per cluster) to regenerate Figures 3
//!    and 4 and Table IV.
//!
//! # Execution model
//!
//! The fan-out stages of the pipeline — per-(machine × workload) fits in
//! [`selection`], cross-validation folds in [`eval`] and [`pooling`],
//! grid cells in [`sweep`], fault-rate sweeps in [`eval::fault_sweep`],
//! and per-machine estimation in [`robust`] — all accept an
//! [`ExecPolicy`] (re-exported from [`chaos_stats::exec`]). Every
//! parallel path is engineered to be **bit-identical** to its serial
//! counterpart: work items are pure functions of their inputs, results
//! are merged in input order, and floating-point reductions always run
//! over the ordered, merged results. `ExecPolicy::from_env()` reads the
//! `CHAOS_THREADS` environment variable, so binaries can switch without
//! recompiling. See `ARCHITECTURE.md` at the repository root for the
//! full picture.
//!
//! # Example
//!
//! ```no_run
//! use chaos_core::experiment::{ExperimentConfig, ClusterExperiment};
//! use chaos_sim::Platform;
//!
//! # fn main() -> Result<(), chaos_stats::StatsError> {
//! let cfg = ExperimentConfig::quick();
//! let exp = ClusterExperiment::collect(Platform::Atom, &cfg);
//! let selection = exp.select_features()?;
//! println!("selected {} counters", selection.selected.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compose;
pub mod dataset;
pub mod eval;
pub mod experiment;
pub mod features;
pub mod models;
pub mod pooling;
pub mod robust;
pub mod selection;
pub mod sweep;

pub use chaos_stats::exec::ExecPolicy;
pub use dataset::Dataset;
pub use features::FeatureSpec;
pub use models::{FittedModel, ModelTechnique};
pub use robust::{EstimateTier, ImputePolicy, RobustConfig, RobustEstimator};
pub use selection::SelectionResult;
