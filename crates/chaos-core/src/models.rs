//! The four power-modeling techniques of Section IV-B (Eq. 1–4) behind a
//! single fitted-model type.

use chaos_mars::{MarsConfig, MarsModel};
use chaos_stats::ols::OlsFit;
use chaos_stats::{describe, Matrix, StatsError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's four modeling techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelTechnique {
    /// Baseline linear regression (Eq. 1).
    Linear,
    /// Piecewise-linear hinge model fitted with MARS, degree 1 (Eq. 2).
    PiecewiseLinear,
    /// Quadratic model: MARS with degree-2 interactions (Eq. 3).
    Quadratic,
    /// Frequency-switching model: a separate linear model per frequency
    /// region (Eq. 4).
    Switching,
}

impl ModelTechnique {
    /// All four techniques, in the paper's order.
    pub const ALL: [ModelTechnique; 4] = [
        ModelTechnique::Linear,
        ModelTechnique::PiecewiseLinear,
        ModelTechnique::Quadratic,
        ModelTechnique::Switching,
    ];

    /// One-letter label used in Table IV ("L", "P", "Q", "S").
    pub fn letter(self) -> &'static str {
        match self {
            ModelTechnique::Linear => "L",
            ModelTechnique::PiecewiseLinear => "P",
            ModelTechnique::Quadratic => "Q",
            ModelTechnique::Switching => "S",
        }
    }

    /// Full name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            ModelTechnique::Linear => "linear",
            ModelTechnique::PiecewiseLinear => "piecewise",
            ModelTechnique::Quadratic => "quadratic",
            ModelTechnique::Switching => "switching",
        }
    }

    /// Whether the technique needs more than one feature (the paper notes
    /// the quadratic and switching models "do not use the
    /// CPU-utilization-only feature set because they require multiple
    /// features").
    pub fn requires_multiple_features(self) -> bool {
        matches!(self, ModelTechnique::Quadratic | ModelTechnique::Switching)
    }
}

impl fmt::Display for ModelTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Options controlling a fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitOptions {
    /// MARS configuration for the piecewise-linear technique.
    pub piecewise: MarsConfig,
    /// MARS configuration for the quadratic technique.
    pub quadratic: MarsConfig,
    /// Column index of the CPU frequency feature (required by the
    /// switching technique).
    pub freq_column: Option<usize>,
    /// Number of frequency regions for the switching model.
    pub switch_bins: usize,
}

impl FitOptions {
    /// Paper-fidelity configuration.
    pub fn paper() -> Self {
        FitOptions {
            piecewise: MarsConfig::piecewise_linear(),
            quadratic: MarsConfig::quadratic(),
            freq_column: None,
            switch_bins: 4,
        }
    }

    /// A cheaper configuration for large sweeps: fewer terms and knots.
    pub fn fast() -> Self {
        FitOptions {
            piecewise: MarsConfig {
                max_terms: 13,
                max_knots_per_var: 8,
                ..MarsConfig::piecewise_linear()
            },
            quadratic: MarsConfig {
                max_terms: 15,
                max_knots_per_var: 8,
                // A stiffer GCV penalty guards against overfitting the
                // small training folds the sweep uses.
                penalty: 4.0,
                ..MarsConfig::quadratic()
            },
            freq_column: None,
            switch_bins: 4,
        }
    }

    /// Returns a copy with the frequency column set.
    pub fn with_freq_column(mut self, col: Option<usize>) -> Self {
        self.freq_column = col;
        self
    }

    /// Returns a copy with the given execution policy applied to both
    /// MARS configurations. MARS candidate scoring is bit-identical
    /// across policies, so this only changes wall-clock time.
    pub fn with_exec(mut self, exec: chaos_stats::exec::ExecPolicy) -> Self {
        self.piecewise.exec = exec;
        self.quadratic.exec = exec;
        self
    }
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions::paper()
    }
}

/// A frequency-switching model: linear sub-models over frequency regions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchingModel {
    /// Region upper bounds (ascending); region `i` covers frequencies up
    /// to `bounds[i]`, the last region is unbounded.
    bounds: Vec<f64>,
    submodels: Vec<OlsFit>,
    freq_col: usize,
}

impl SwitchingModel {
    fn fit(x: &Matrix, y: &[f64], freq_col: usize, bins: usize) -> Result<Self, StatsError> {
        if freq_col >= x.cols() {
            return Err(StatsError::InvalidParameter {
                context: format!("freq column {freq_col} out of range"),
            });
        }
        if bins < 2 {
            return Err(StatsError::InvalidParameter {
                context: "switching model needs at least 2 bins".into(),
            });
        }
        let freqs = x.col(freq_col);
        // Region boundaries at interior quantiles of the frequency
        // distribution; duplicates collapse regions automatically.
        let mut bounds: Vec<f64> = (1..bins)
            .map(|k| describe::quantile(&freqs, k as f64 / bins as f64))
            .collect();
        bounds.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let n_regions = bounds.len() + 1;
        let mut region_rows: Vec<Vec<usize>> = vec![Vec::new(); n_regions];
        for (i, &f) in freqs.iter().enumerate() {
            region_rows[region_of(&bounds, f)].push(i);
        }

        // Fit one linear model per region; regions too small to fit fall
        // back to the global model.
        let design_all = x.with_intercept();
        let global = ols_with_rank_fallback(&design_all, y)?;
        let min_rows = 3 * (x.cols() + 1);
        let submodels: Vec<OlsFit> = region_rows
            .iter()
            .map(|rows| {
                if rows.len() < min_rows {
                    return global.clone();
                }
                let xs = x.select_rows(rows).with_intercept();
                let ys: Vec<f64> = rows.iter().map(|&i| y[i]).collect();
                ols_with_rank_fallback(&xs, &ys).unwrap_or_else(|_| global.clone())
            })
            .collect();
        Ok(SwitchingModel {
            bounds,
            submodels,
            freq_col,
        })
    }

    fn predict_row_with(&self, row: &[f64], scratch: &mut Vec<f64>) -> Result<f64, StatsError> {
        let region = region_of(&self.bounds, row[self.freq_col]);
        scratch.clear();
        scratch.push(1.0);
        scratch.extend_from_slice(row);
        self.submodels[region].predict_row(scratch)
    }

    /// Number of frequency regions.
    pub fn regions(&self) -> usize {
        self.submodels.len()
    }
}

fn region_of(bounds: &[f64], f: f64) -> usize {
    bounds.iter().position(|&b| f <= b).unwrap_or(bounds.len())
}

/// OLS that tolerates collinear designs by dropping trailing columns and
/// re-padding the dropped coefficients with zeros, so prediction width is
/// preserved.
fn ols_with_rank_fallback(design: &Matrix, y: &[f64]) -> Result<OlsFit, StatsError> {
    match OlsFit::fit(design, y) {
        Ok(f) => Ok(f),
        Err(StatsError::Singular) | Err(StatsError::InsufficientData { .. }) => {
            // Add a whisper of ridge jitter via duplicate-column removal:
            // keep the widest prefix of columns that is full rank.
            let mut keep = design.cols();
            while keep > 1 {
                keep -= 1;
                let cols: Vec<usize> = (0..keep).collect();
                let sub = design.select_cols(&cols);
                if let Ok(fit) = OlsFit::fit(&sub, y) {
                    return Ok(PaddedOls::pad(fit, design.cols()));
                }
            }
            Err(StatsError::Singular)
        }
        Err(e) => Err(e),
    }
}

/// Helper namespace for padding a truncated OLS fit back to full width.
struct PaddedOls;

impl PaddedOls {
    fn pad(fit: OlsFit, width: usize) -> OlsFit {
        // Re-fit has fewer coefficients; extend with zeros by fitting a
        // tiny exact system is overkill — instead wrap via coefficients.
        // OlsFit is opaque, so emulate padding with a shim design: build
        // an exact OLS on a synthetic system whose solution equals the
        // padded coefficient vector.
        let coefs = fit.coefficients().to_vec();
        let mut padded = coefs.clone();
        padded.resize(width, 0.0);
        // Synthetic exact system: identity design → coefficients equal y.
        let mut rows = Vec::with_capacity(width + 1);
        for i in 0..width {
            let mut r = vec![0.0; width];
            r[i] = 1.0;
            rows.push(r);
        }
        rows.push(vec![0.0; width]);
        // chaos-lint: allow(R4) — the design is synthesized right above
        // as an identity block plus a zero row: rectangular by
        // construction and always full rank.
        let x = Matrix::from_rows(&rows).expect("synthetic design is well-formed");
        let mut y = padded;
        y.push(0.0);
        // chaos-lint: allow(R4) — same synthetic full-rank invariant.
        OlsFit::fit(&x, &y).expect("synthetic system is full rank")
    }
}

/// Which concrete estimator backs a fitted model.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum ModelImpl {
    Linear(OlsFit),
    Mars(MarsModel),
    Switching(SwitchingModel),
}

/// A fitted machine power model: `watts = f(counter features)`.
///
/// # Example
///
/// ```
/// use chaos_core::models::{FitOptions, FittedModel, ModelTechnique};
/// use chaos_stats::Matrix;
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
/// let x = Matrix::from_rows(&rows)?;
/// let y: Vec<f64> = (0..100).map(|i| 20.0 + 0.3 * i as f64).collect();
/// let m = FittedModel::fit(ModelTechnique::Linear, &x, &y, &FitOptions::paper())?;
/// assert!((m.predict_row(&[50.0])? - 35.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedModel {
    technique: ModelTechnique,
    inner: ModelImpl,
    width: usize,
    clamp: (f64, f64),
}

impl FittedModel {
    /// Fits a model of the given technique to `(x, y)`.
    ///
    /// `x` holds raw features without an intercept column.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    /// * [`StatsError::InvalidParameter`] if the switching technique is
    ///   requested without `opts.freq_column`, or a technique requiring
    ///   multiple features gets a single column.
    /// * Any numerical error from the underlying estimator.
    pub fn fit(
        technique: ModelTechnique,
        x: &Matrix,
        y: &[f64],
        opts: &FitOptions,
    ) -> Result<Self, StatsError> {
        if y.len() != x.rows() {
            return Err(StatsError::DimensionMismatch {
                context: format!("fit: y has {} entries, X has {} rows", y.len(), x.rows()),
            });
        }
        if technique.requires_multiple_features() && x.cols() < 2 {
            return Err(StatsError::InvalidParameter {
                context: format!("{technique} requires multiple features"),
            });
        }
        let inner = match technique {
            ModelTechnique::Linear => {
                ModelImpl::Linear(ols_with_rank_fallback(&x.with_intercept(), y)?)
            }
            ModelTechnique::PiecewiseLinear => {
                ModelImpl::Mars(MarsModel::fit(x, y, &opts.piecewise)?)
            }
            ModelTechnique::Quadratic => ModelImpl::Mars(MarsModel::fit(x, y, &opts.quadratic)?),
            ModelTechnique::Switching => {
                let col = opts
                    .freq_column
                    .ok_or_else(|| StatsError::InvalidParameter {
                        context: "switching model requires a frequency column".into(),
                    })?;
                ModelImpl::Switching(SwitchingModel::fit(x, y, col, opts.switch_bins)?)
            }
        };
        // Power is physically bounded; clamp predictions to the observed
        // training envelope with margin. This defuses the hinge-model
        // extrapolation hazard (a test point outside the training hull
        // rides a steep hinge to absurd wattages) without affecting
        // in-range behaviour.
        let y_min = y.iter().copied().fold(f64::INFINITY, f64::min);
        let y_max = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let margin = 0.25 * (y_max - y_min).max(1.0);
        Ok(FittedModel {
            technique,
            inner,
            width: x.cols(),
            clamp: (y_min - margin, y_max + margin),
        })
    }

    /// The technique this model was fitted with.
    pub fn technique(&self) -> ModelTechnique {
        self.technique
    }

    /// Number of input features.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Rough parameter count (for complexity-vs-accuracy reporting).
    pub fn n_parameters(&self) -> usize {
        match &self.inner {
            ModelImpl::Linear(f) => f.coefficients().len(),
            ModelImpl::Mars(m) => m.n_terms(),
            ModelImpl::Switching(s) => s.regions() * (self.width + 1),
        }
    }

    /// Predicts power for one feature row, in watts.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `row.len()` differs
    /// from the training width, and [`StatsError::NonFinite`] if any
    /// feature is NaN or infinite — a faulted counter sample must be
    /// rejected (or imputed by a fault-aware caller), never silently
    /// folded into a wattage.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, StatsError> {
        let mut scratch = Vec::new();
        self.predict_row_with(row, &mut scratch)
    }

    /// [`predict_row`](FittedModel::predict_row) with a caller-owned
    /// scratch buffer for the intercept-augmented design row, so the
    /// streaming hot path predicts without per-sample allocation. The
    /// arithmetic is identical — `scratch` only replaces the transient
    /// design vector — so results are bit-identical to `predict_row`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FittedModel::predict_row`].
    pub fn predict_row_with(&self, row: &[f64], scratch: &mut Vec<f64>) -> Result<f64, StatsError> {
        if row.len() != self.width {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "predict: row has {} features, model expects {}",
                    row.len(),
                    self.width
                ),
            });
        }
        if let Some(c) = row.iter().position(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite {
                context: format!("predict: feature {c} is {}", row[c]),
            });
        }
        let raw = match &self.inner {
            ModelImpl::Linear(f) => {
                scratch.clear();
                scratch.push(1.0);
                scratch.extend_from_slice(row);
                f.predict_row(scratch)?
            }
            ModelImpl::Mars(m) => m.predict_row(row)?,
            ModelImpl::Switching(s) => s.predict_row_with(row, scratch)?,
        };
        Ok(raw.clamp(self.clamp.0, self.clamp.1))
    }

    /// Predicts power for every row of a feature matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FittedModel::predict_row`].
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>, StatsError> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_noise(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
    }

    /// A two-feature dataset with a frequency-like feature (two levels)
    /// and a utilization feature, where the slope differs per level —
    /// the switching model's home turf.
    fn switching_data(n: usize) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let freq = if i % 2 == 0 { 1000.0 } else { 2000.0 };
            let util = (i % 50) as f64 * 2.0;
            let slope = if freq < 1500.0 { 0.1 } else { 0.4 };
            let base = if freq < 1500.0 { 30.0 } else { 45.0 };
            rows.push(vec![util, freq]);
            y.push(base + slope * util + 0.2 * det_noise(i));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn technique_metadata() {
        assert_eq!(ModelTechnique::Quadratic.letter(), "Q");
        assert_eq!(ModelTechnique::Linear.to_string(), "linear");
        assert!(ModelTechnique::Switching.requires_multiple_features());
        assert!(!ModelTechnique::Linear.requires_multiple_features());
        assert_eq!(ModelTechnique::ALL.len(), 4);
    }

    #[test]
    fn linear_fits_linear_data() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 10.0 + 2.0 * r[0] - r[1]).collect();
        let m = FittedModel::fit(ModelTechnique::Linear, &x, &y, &FitOptions::paper()).unwrap();
        assert!((m.predict_row(&[10.0, 3.0]).unwrap() - 27.0).abs() < 1e-6);
        assert_eq!(m.n_parameters(), 3);
    }

    #[test]
    fn switching_beats_linear_on_per_frequency_slopes() {
        let (x, y) = switching_data(400);
        let opts = FitOptions::paper().with_freq_column(Some(1));
        let lin = FittedModel::fit(ModelTechnique::Linear, &x, &y, &opts).unwrap();
        let sw = FittedModel::fit(ModelTechnique::Switching, &x, &y, &opts).unwrap();
        let rss = |m: &FittedModel| {
            m.predict(&x)
                .unwrap()
                .iter()
                .zip(&y)
                .map(|(p, a)| (p - a).powi(2))
                .sum::<f64>()
        };
        assert!(
            rss(&sw) < 0.3 * rss(&lin),
            "sw={} lin={}",
            rss(&sw),
            rss(&lin)
        );
    }

    #[test]
    fn switching_requires_freq_column() {
        let (x, y) = switching_data(100);
        let err =
            FittedModel::fit(ModelTechnique::Switching, &x, &y, &FitOptions::paper()).unwrap_err();
        assert!(matches!(err, StatsError::InvalidParameter { .. }));
    }

    #[test]
    fn multi_feature_techniques_reject_single_column() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..50).map(|i| i as f64).collect();
        for t in [ModelTechnique::Quadratic, ModelTechnique::Switching] {
            assert!(FittedModel::fit(t, &x, &y, &FitOptions::paper()).is_err());
        }
    }

    #[test]
    fn piecewise_handles_hinge_data() {
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..120)
            .map(|i| 20.0 + (i as f64 - 60.0).max(0.0) * 0.5)
            .collect();
        let m =
            FittedModel::fit(ModelTechnique::PiecewiseLinear, &x, &y, &FitOptions::fast()).unwrap();
        assert!((m.predict_row(&[30.0]).unwrap() - 20.0).abs() < 1.0);
        assert!((m.predict_row(&[100.0]).unwrap() - 40.0).abs() < 1.5);
    }

    #[test]
    fn collinear_design_does_not_crash_linear() {
        // Second column duplicates the first.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..60).map(|i| 5.0 + i as f64).collect();
        let m = FittedModel::fit(ModelTechnique::Linear, &x, &y, &FitOptions::paper()).unwrap();
        let p = m.predict_row(&[30.0, 30.0]).unwrap();
        assert!((p - 35.0).abs() < 1e-6, "{p}");
    }

    #[test]
    fn predict_row_rejects_wrong_width() {
        let (x, y) = switching_data(100);
        let m = FittedModel::fit(ModelTechnique::Linear, &x, &y, &FitOptions::paper()).unwrap();
        assert!(m.predict_row(&[1.0]).is_err());
        assert_eq!(m.width(), 2);
        assert_eq!(m.technique(), ModelTechnique::Linear);
    }

    #[test]
    fn predict_row_rejects_non_finite_input() {
        let (x, y) = switching_data(100);
        for t in [
            ModelTechnique::Linear,
            ModelTechnique::Quadratic,
            ModelTechnique::Switching,
        ] {
            let m = FittedModel::fit(t, &x, &y, &FitOptions::fast()).unwrap();
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                match m.predict_row(&[1000.0, bad]) {
                    Err(StatsError::NonFinite { context }) => {
                        assert!(context.contains("feature 1"), "{context}");
                    }
                    other => panic!("expected NonFinite, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let (x, y) = switching_data(200);
        let opts = FitOptions::paper().with_freq_column(Some(1));
        for technique in ModelTechnique::ALL {
            let m = FittedModel::fit(technique, &x, &y, &opts).unwrap();
            let json = serde_json::to_string(&m).unwrap();
            let m2: FittedModel = serde_json::from_str(&json).unwrap();
            for probe in [[10.0, 1000.0], [80.0, 2000.0], [55.0, 1000.0]] {
                assert_eq!(
                    m.predict_row(&probe).unwrap(),
                    m2.predict_row(&probe).unwrap(),
                    "{technique}"
                );
            }
        }
    }

    #[test]
    fn switching_region_count_bounded_by_bins() {
        let (x, y) = switching_data(300);
        let opts = FitOptions {
            switch_bins: 4,
            ..FitOptions::paper().with_freq_column(Some(1))
        };
        let m = FittedModel::fit(ModelTechnique::Switching, &x, &y, &opts).unwrap();
        assert!(m.n_parameters() >= 3);
    }
}
