//! Pooling strategies: the paper's justification for pooled models.
//!
//! Section IV: "we incorporate variability by pooling information from
//! individual machines in the cluster... An alternative approach is to
//! build hierarchical Bayesian or mixed models. This alternative adds an
//! extra level of complexity... Fortunately, according to the results of
//! the recommended statistical tests, comparing the variances in the
//! different models, pooling is a suitable approach with no significant
//! loss of accuracy."
//!
//! This module implements the three candidate strategies and the variance
//! comparison, so the claim can be checked rather than assumed:
//!
//! * [`PoolingStrategy::Pooled`] — one model over all machines' data
//!   (what CHAOS ships).
//! * [`PoolingStrategy::PerMachine`] — a separate model per machine,
//!   each applied only to its own machine (gold standard, not deployable
//!   to unseen machines).
//! * [`PoolingStrategy::Mixed`] — shared slopes with per-machine
//!   intercepts (a fixed-effects approximation of the mixed model),
//!   capturing additive machine-to-machine offsets.

use crate::dataset::{pooled_dataset, Dataset};
use crate::eval::EvalConfig;
use crate::features::FeatureSpec;
use crate::models::{FittedModel, ModelTechnique};
use chaos_counters::RunTrace;
use chaos_sim::Cluster;
use chaos_stats::{metrics, Matrix, StatsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How machine-to-machine variation enters the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolingStrategy {
    /// One model fitted on all machines' pooled samples.
    Pooled,
    /// One model per machine, fitted and evaluated on that machine only.
    PerMachine,
    /// Shared feature coefficients with per-machine intercept offsets.
    Mixed,
}

impl PoolingStrategy {
    /// All three strategies.
    pub const ALL: [PoolingStrategy; 3] = [
        PoolingStrategy::Pooled,
        PoolingStrategy::PerMachine,
        PoolingStrategy::Mixed,
    ];

    /// Stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            PoolingStrategy::Pooled => "pooled",
            PoolingStrategy::PerMachine => "per-machine",
            PoolingStrategy::Mixed => "mixed",
        }
    }
}

/// Outcome of one pooling-strategy evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolingOutcome {
    /// Strategy evaluated.
    pub strategy: PoolingStrategy,
    /// Average per-machine DRE across folds.
    pub dre: f64,
    /// Average per-machine rMSE across folds, watts.
    pub rmse: f64,
    /// Pooled residual variance on the test data (the quantity the
    /// paper's variance comparison inspects).
    pub residual_variance: f64,
}

/// Per-fold accumulation. Folds run (possibly in parallel) under
/// [`EvalConfig::exec`] and are merged in fold order, so every reduction
/// sums the same values in the same sequence regardless of the policy.
struct FoldAcc {
    dre: Vec<f64>,
    rmse: Vec<f64>,
    sse: f64,
    n_test: usize,
}

/// Evaluates one strategy with the paper's protocol (train on one run,
/// test on the rest, every run takes a turn). Folds are independent and
/// fan out under [`EvalConfig::exec`]; results are bit-identical across
/// execution policies.
///
/// # Errors
///
/// Propagates dataset and fitting errors; requires at least two runs.
pub fn evaluate_pooling(
    traces: &[RunTrace],
    cluster: &Cluster,
    spec: &FeatureSpec,
    technique: ModelTechnique,
    strategy: PoolingStrategy,
    config: &EvalConfig,
) -> Result<PoolingOutcome, StatsError> {
    if traces.len() < 2 {
        return Err(StatsError::InsufficientData {
            observations: traces.len(),
            required: 2,
        });
    }
    // chaos-lint: allow(R4) — Cluster construction asserts at least
    // one machine, so machines()[0] cannot be out of bounds.
    let catalog =
        chaos_counters::CounterCatalog::for_platform(&cluster.machines()[0].spec().platform.spec());
    let opts = config.fit.with_freq_column(spec.freq_column(&catalog));
    let ds = pooled_dataset(traces, spec)?;

    let folds = config.exec.try_par_map_indices(traces.len(), |train_run| {
        let train_rows = ds.rows_in_runs(&[train_run]);
        let test_rows: Vec<usize> = (0..ds.len())
            .filter(|&i| ds.run_of[i] != train_run)
            .collect();
        let train = ds.subset(&train_rows).thinned(config.max_train_rows);
        let test = ds.subset(&test_rows);

        let mut acc = FoldAcc {
            dre: Vec::new(),
            rmse: Vec::new(),
            sse: 0.0,
            n_test: 0,
        };
        match strategy {
            PoolingStrategy::Pooled => {
                let model = FittedModel::fit(technique, &train.x, &train.y, &opts)?;
                for machine in cluster.machines() {
                    let rows = test.rows_of_machine(machine.id());
                    if rows.is_empty() {
                        continue;
                    }
                    let sub = test.subset(&rows);
                    let pred = model.predict(&sub.x)?;
                    accumulate(
                        &pred,
                        &sub,
                        machine,
                        &mut acc.dre,
                        &mut acc.rmse,
                        &mut acc.sse,
                        &mut acc.n_test,
                    )?;
                }
            }
            PoolingStrategy::PerMachine => {
                for machine in cluster.machines() {
                    let tr = train.subset(&train.rows_of_machine(machine.id()));
                    let te = test.subset(&test.rows_of_machine(machine.id()));
                    if tr.is_empty() || te.is_empty() {
                        continue;
                    }
                    let model = FittedModel::fit(technique, &tr.x, &tr.y, &opts)?;
                    let pred = model.predict(&te.x)?;
                    accumulate(
                        &pred,
                        &te,
                        machine,
                        &mut acc.dre,
                        &mut acc.rmse,
                        &mut acc.sse,
                        &mut acc.n_test,
                    )?;
                }
            }
            PoolingStrategy::Mixed => {
                let mixed = MixedModel::fit(&train, technique, &opts, cluster.len())?;
                for machine in cluster.machines() {
                    let rows = test.rows_of_machine(machine.id());
                    if rows.is_empty() {
                        continue;
                    }
                    let sub = test.subset(&rows);
                    let pred = mixed.predict(&sub, machine.id())?;
                    accumulate(
                        &pred,
                        &sub,
                        machine,
                        &mut acc.dre,
                        &mut acc.rmse,
                        &mut acc.sse,
                        &mut acc.n_test,
                    )?;
                }
            }
        }
        Ok(acc)
    })?;

    let mut dre = Vec::new();
    let mut rmse = Vec::new();
    let mut sse = 0.0;
    let mut n_test = 0usize;
    for f in folds {
        dre.extend(f.dre);
        rmse.extend(f.rmse);
        sse += f.sse;
        n_test += f.n_test;
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    Ok(PoolingOutcome {
        strategy,
        dre: mean(&dre),
        rmse: mean(&rmse),
        residual_variance: sse / n_test.max(1) as f64,
    })
}

fn accumulate(
    pred: &[f64],
    sub: &Dataset,
    machine: &chaos_sim::Machine,
    dre: &mut Vec<f64>,
    rmse: &mut Vec<f64>,
    sse: &mut f64,
    n_test: &mut usize,
) -> Result<(), StatsError> {
    dre.push(metrics::dynamic_range_error(
        pred,
        &sub.y,
        machine.max_power(),
        machine.idle_power(),
    )?);
    rmse.push(metrics::rmse(pred, &sub.y)?);
    *sse += pred
        .iter()
        .zip(&sub.y)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>();
    *n_test += pred.len();
    Ok(())
}

/// Shared-slope / per-machine-intercept model: a fixed-effects stand-in
/// for the hierarchical mixed model the paper mentions.
///
/// Fits the base technique on machine-centered data (removing each
/// machine's mean power and mean features), then adds the machine's own
/// offset back at prediction time.
#[derive(Debug, Clone)]
pub struct MixedModel {
    base: FittedModel,
    /// Per-machine (feature means, power mean).
    offsets: BTreeMap<usize, (Vec<f64>, f64)>,
    /// Fallback offset for machines unseen in training: the average.
    global: (Vec<f64>, f64),
}

impl MixedModel {
    /// Fits the mixed model on a training dataset.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors from the base technique.
    pub fn fit(
        train: &Dataset,
        technique: ModelTechnique,
        opts: &crate::models::FitOptions,
        n_machines: usize,
    ) -> Result<Self, StatsError> {
        let p = train.x.cols();
        let mut offsets = BTreeMap::new();
        let mut centered_rows: Vec<f64> = Vec::with_capacity(train.len() * p);
        let mut centered_y: Vec<f64> = Vec::with_capacity(train.len());

        // Compute per-machine means.
        for mid in 0..n_machines {
            let rows = train.rows_of_machine(mid);
            if rows.is_empty() {
                continue;
            }
            let sub = train.subset(&rows);
            let mut fmean = vec![0.0; p];
            for i in 0..sub.len() {
                for (j, fm) in fmean.iter_mut().enumerate() {
                    *fm += sub.x.get(i, j);
                }
            }
            for fm in &mut fmean {
                *fm /= sub.len() as f64;
            }
            let ymean = sub.y.iter().sum::<f64>() / sub.len() as f64;
            offsets.insert(mid, (fmean, ymean));
        }
        // Global fallback.
        let mut gf = vec![0.0; p];
        let mut gy = 0.0;
        for (f, y) in offsets.values() {
            for (a, b) in gf.iter_mut().zip(f) {
                *a += b;
            }
            gy += y;
        }
        let k = offsets.len().max(1) as f64;
        for a in &mut gf {
            *a /= k;
        }
        gy /= k;

        // Center each sample by its machine's means.
        for i in 0..train.len() {
            let (fm, ym) = offsets
                .get(&train.machine_of[i])
                .unwrap_or(&(gf.clone(), gy))
                .clone();
            for (j, f) in fm.iter().enumerate() {
                centered_rows.push(train.x.get(i, j) - f);
            }
            centered_y.push(train.y[i] - ym);
        }
        let xc = Matrix::from_vec(train.len(), p, centered_rows)?;
        let base = FittedModel::fit(technique, &xc, &centered_y, opts)?;
        Ok(MixedModel {
            base,
            offsets,
            global: (gf, gy),
        })
    }

    /// Predicts a test dataset belonging to one machine.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn predict(&self, test: &Dataset, machine_id: usize) -> Result<Vec<f64>, StatsError> {
        let (fm, ym) = self.offsets.get(&machine_id).unwrap_or(&self.global);
        let p = test.x.cols();
        let mut out = Vec::with_capacity(test.len());
        let mut row = vec![0.0; p];
        for i in 0..test.len() {
            for (j, r) in row.iter_mut().enumerate() {
                *r = test.x.get(i, j) - fm[j];
            }
            out.push(self.base.predict_row(&row)? + ym);
        }
        Ok(out)
    }
}

/// The paper's variance comparison: the ratio of pooled to alternative
/// residual variance. Ratios near 1 mean pooling loses nothing.
pub fn variance_ratio(pooled: &PoolingOutcome, alternative: &PoolingOutcome) -> f64 {
    pooled.residual_variance / alternative.residual_variance.max(f64::MIN_POSITIVE)
}

/// Cluster-level evaluation of a pooling strategy: per-machine
/// predictions are summed per second (Eq. 5) before scoring, so constant
/// per-machine biases partially cancel — the reason pooled models remain
/// accurate for the cluster-power predictions CHAOS targets even when
/// per-machine metrics favor machine-specific models.
///
/// Returned `dre`/`rmse` are cluster-level; `residual_variance` is the
/// variance of the cluster-series error.
///
/// # Errors
///
/// Same conditions as [`evaluate_pooling`].
pub fn evaluate_pooling_cluster(
    traces: &[RunTrace],
    cluster: &Cluster,
    spec: &FeatureSpec,
    technique: ModelTechnique,
    strategy: PoolingStrategy,
    config: &EvalConfig,
) -> Result<PoolingOutcome, StatsError> {
    if traces.len() < 2 {
        return Err(StatsError::InsufficientData {
            observations: traces.len(),
            required: 2,
        });
    }
    // chaos-lint: allow(R4) — Cluster construction asserts at least
    // one machine, so machines()[0] cannot be out of bounds.
    let catalog =
        chaos_counters::CounterCatalog::for_platform(&cluster.machines()[0].spec().platform.spec());
    let opts = config.fit.with_freq_column(spec.freq_column(&catalog));
    let ds = pooled_dataset(traces, spec)?;
    let range: f64 = cluster.max_power() - cluster.idle_power();

    let folds = config.exec.try_par_map_indices(traces.len(), |train_run| {
        let train = ds
            .subset(&ds.rows_in_runs(&[train_run]))
            .thinned(config.max_train_rows);
        let mut acc = FoldAcc {
            dre: Vec::new(),
            rmse: Vec::new(),
            sse: 0.0,
            n_test: 0,
        };

        // Fit per strategy.
        let pooled_model;
        let mut per_machine: BTreeMap<usize, FittedModel> = BTreeMap::new();
        let mut mixed_model = None;
        match strategy {
            PoolingStrategy::Pooled => {
                pooled_model = Some(FittedModel::fit(technique, &train.x, &train.y, &opts)?);
            }
            PoolingStrategy::PerMachine => {
                pooled_model = None;
                for machine in cluster.machines() {
                    let tr = train.subset(&train.rows_of_machine(machine.id()));
                    if tr.is_empty() {
                        continue;
                    }
                    per_machine.insert(
                        machine.id(),
                        FittedModel::fit(technique, &tr.x, &tr.y, &opts)?,
                    );
                }
            }
            PoolingStrategy::Mixed => {
                pooled_model = None;
                mixed_model = Some(MixedModel::fit(&train, technique, &opts, cluster.len())?);
            }
        }

        for test_run in 0..traces.len() {
            if test_run == train_run {
                continue;
            }
            // Per-machine series, summed into the cluster series.
            let mut cluster_pred: Vec<f64> = Vec::new();
            let mut cluster_actual: Vec<f64> = Vec::new();
            for machine in cluster.machines() {
                let rows: Vec<usize> = (0..ds.len())
                    .filter(|&i| ds.run_of[i] == test_run && ds.machine_of[i] == machine.id())
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                let sub = ds.subset(&rows);
                let pred = match strategy {
                    PoolingStrategy::Pooled => {
                        // chaos-lint: allow(R4) — the Pooled arm above
                        // fits this model before any prediction runs.
                        pooled_model.as_ref().expect("fitted").predict(&sub.x)?
                    }
                    PoolingStrategy::PerMachine => per_machine
                        .get(&machine.id())
                        .ok_or(StatsError::Singular)?
                        .predict(&sub.x)?,
                    PoolingStrategy::Mixed => mixed_model
                        .as_ref()
                        // chaos-lint: allow(R4) — the Mixed arm above
                        // fits this model before any prediction runs.
                        .expect("fitted")
                        .predict(&sub, machine.id())?,
                };
                if cluster_pred.is_empty() {
                    cluster_pred = vec![0.0; pred.len()];
                    cluster_actual = vec![0.0; pred.len()];
                }
                for (t, (p, a)) in pred.iter().zip(&sub.y).enumerate() {
                    cluster_pred[t] += p;
                    cluster_actual[t] += a;
                }
            }
            let r = metrics::rmse(&cluster_pred, &cluster_actual)?;
            acc.rmse.push(r);
            acc.dre.push(r / range);
            acc.sse += cluster_pred
                .iter()
                .zip(&cluster_actual)
                .map(|(p, a)| (p - a).powi(2))
                .sum::<f64>();
            acc.n_test += cluster_pred.len();
        }
        Ok(acc)
    })?;

    let mut dre = Vec::new();
    let mut rmse_all = Vec::new();
    let mut sse = 0.0;
    let mut n_test = 0usize;
    for f in folds {
        dre.extend(f.dre);
        rmse_all.extend(f.rmse);
        sse += f.sse;
        n_test += f.n_test;
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    Ok(PoolingOutcome {
        strategy,
        dre: mean(&dre),
        rmse: mean(&rmse_all),
        residual_variance: sse / n_test.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_counters::{collect_run, CounterCatalog};
    use chaos_sim::Platform;
    use chaos_workloads::{SimConfig, Workload};

    fn setup() -> (Vec<RunTrace>, Cluster, CounterCatalog) {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 4);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let traces = (0..2)
            .map(|r| {
                collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), r).unwrap()
            })
            .collect();
        (traces, cluster, catalog)
    }

    #[test]
    fn all_strategies_produce_sane_outcomes() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        for strategy in PoolingStrategy::ALL {
            let o = evaluate_pooling(
                &traces,
                &cluster,
                &spec,
                ModelTechnique::Linear,
                strategy,
                &EvalConfig::fast(),
            )
            .unwrap();
            assert!(
                o.dre > 0.0 && o.dre < 0.5,
                "{}: dre {}",
                strategy.name(),
                o.dre
            );
            assert!(o.residual_variance > 0.0);
        }
    }

    #[test]
    fn pooling_loses_little_versus_per_machine() {
        // The paper's claim: pooling is suitable with no significant loss.
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let run = |s| {
            evaluate_pooling(
                &traces,
                &cluster,
                &spec,
                ModelTechnique::Linear,
                s,
                &EvalConfig::fast(),
            )
            .unwrap()
        };
        let pooled = run(PoolingStrategy::Pooled);
        let per = run(PoolingStrategy::PerMachine);
        let ratio = variance_ratio(&pooled, &per);
        assert!(
            ratio < 2.5,
            "pooled variance should be comparable: ratio {ratio}"
        );
    }

    #[test]
    fn cluster_level_pooling_closes_the_gap() {
        // Per-machine biases cancel in the cluster sum: the pooled model's
        // cluster-level error must be far closer to the per-machine
        // model's than its per-machine error is.
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let run = |s| {
            evaluate_pooling_cluster(
                &traces,
                &cluster,
                &spec,
                ModelTechnique::Linear,
                s,
                &EvalConfig::fast(),
            )
            .unwrap()
        };
        let pooled = run(PoolingStrategy::Pooled);
        let per = run(PoolingStrategy::PerMachine);
        assert!(pooled.dre < 0.12, "cluster-level pooled DRE {}", pooled.dre);
        assert!(
            pooled.dre < per.dre + 0.05,
            "pooled cluster DRE {} should be near per-machine {}",
            pooled.dre,
            per.dre
        );
    }

    #[test]
    fn parallel_folds_match_serial() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let par = EvalConfig {
            exec: chaos_stats::exec::ExecPolicy::Parallel { threads: 3 },
            ..EvalConfig::fast()
        };
        for strategy in PoolingStrategy::ALL {
            let run = |cfg: &EvalConfig| {
                evaluate_pooling(
                    &traces,
                    &cluster,
                    &spec,
                    ModelTechnique::Linear,
                    strategy,
                    cfg,
                )
                .unwrap()
            };
            assert_eq!(run(&EvalConfig::fast()), run(&par), "{}", strategy.name());
            let run_cluster = |cfg: &EvalConfig| {
                evaluate_pooling_cluster(
                    &traces,
                    &cluster,
                    &spec,
                    ModelTechnique::Linear,
                    strategy,
                    cfg,
                )
                .unwrap()
            };
            assert_eq!(
                run_cluster(&EvalConfig::fast()),
                run_cluster(&par),
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn mixed_model_handles_unseen_machine() {
        let (traces, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let ds = pooled_dataset(&traces, &spec).unwrap().thinned(600);
        let opts = crate::models::FitOptions::fast();
        let mixed = MixedModel::fit(&ds, ModelTechnique::Linear, &opts, cluster.len()).unwrap();
        // Machine id 99 was never seen: the global offset applies.
        let pred = mixed.predict(&ds.subset(&[0, 1, 2]), 99).unwrap();
        assert_eq!(pred.len(), 3);
        assert!(pred.iter().all(|v| v.is_finite()));
    }
}
