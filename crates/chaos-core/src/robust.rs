//! Gracefully degrading power estimation over faulted counter streams.
//!
//! A deployed CHAOS agent cannot assume the clean traces the models were
//! trained on: counters drop out, meters disconnect, machines die (see
//! [`chaos_counters::faults`]). The naive pipeline either panics, emits
//! NaN, or — worse — silently folds garbage into a wattage. The
//! [`RobustEstimator`] instead walks a fallback chain, answering every
//! second with the most capable model the surviving data supports and
//! recording *which* tier answered so consumers can weight their trust:
//!
//! 1. **Full** — the trained model (typically quadratic MARS, Eq. 3) on
//!    the complete feature row, with short gaps bridged by an imputation
//!    policy ([`ImputePolicy`]).
//! 2. **Reduced** — a linear model refit on the columns that survive,
//!    using the retained training data. Refits are cached per
//!    surviving-column mask, so a stuck counter costs one refit, not one
//!    per second.
//! 3. **Strawman** — the paper's CPU-utilization-only linear baseline
//!    (Section IV-A), usable as long as the single utilization counter
//!    is alive.
//! 4. **Constant** — the machine's idle power. The floor: always
//!    answers, even for a crashed reporter.
//!
//! The *coverage* of an estimate — the fraction of seconds answered
//! above the Constant floor — decays with fault rate much faster than
//! accuracy does, which is exactly the property the fault-sweep
//! ablation (`ablation_faults`) measures.

use crate::dataset::{pooled_dataset_valid, Dataset};
use crate::features::FeatureSpec;
use crate::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_counters::store::{SampleSource, StoreError};
use chaos_counters::{MachineRunTrace, RunTrace};
use chaos_stats::exec::ExecPolicy;
use chaos_stats::{Matrix, StatsError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// How the estimator bridges short gaps in individual features before
/// falling back to a reduced model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImputePolicy {
    /// Never impute: any invalid feature immediately demotes the sample.
    None,
    /// Repeat the last valid value, for at most `max_run` consecutive
    /// seconds per feature.
    CarryForward {
        /// Longest gap (in seconds) the imputer will bridge.
        max_run: usize,
    },
    /// Use the median of the last `window` valid values, for at most
    /// `max_run` consecutive seconds per feature. More robust than
    /// carry-forward when the last reading before the gap was itself a
    /// glitch.
    RollingMedian {
        /// Number of recent valid values the median is taken over.
        window: usize,
        /// Longest gap (in seconds) the imputer will bridge.
        max_run: usize,
    },
}

impl ImputePolicy {
    fn max_run(&self) -> usize {
        match *self {
            ImputePolicy::None => 0,
            ImputePolicy::CarryForward { max_run } => max_run,
            ImputePolicy::RollingMedian { max_run, .. } => max_run,
        }
    }
}

/// Which tier of the fallback chain produced an estimate. Ordered from
/// most to least capable; `Ord` follows that ranking (Full < Constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EstimateTier {
    /// The fully trained model on a complete (possibly imputed) row.
    Full,
    /// A linear refit on the surviving feature columns.
    Reduced,
    /// The CPU-utilization-only linear strawman.
    Strawman,
    /// The idle-power constant — the always-available floor.
    Constant,
}

impl EstimateTier {
    /// Short label for tables and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            EstimateTier::Full => "full",
            EstimateTier::Reduced => "reduced",
            EstimateTier::Strawman => "strawman",
            EstimateTier::Constant => "constant",
        }
    }
}

/// One second's estimate for one machine: the wattage, which tier
/// produced it, and how many features had to be imputed to get it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleEstimate {
    /// Estimated power, in watts. Always finite.
    pub power_w: f64,
    /// The tier of the fallback chain that answered.
    pub tier: EstimateTier,
    /// Number of features bridged by the imputation policy this second.
    pub imputed: usize,
}

/// A model-input row assembled from one second of one machine stream —
/// the intermediate product between
/// [`RobustEstimator::assemble_row`] and
/// [`RobustEstimator::estimate_from_row`]. Streaming consumers inspect
/// it to decide whether a window-adapted model may answer before the
/// fallback chain does.
#[derive(Debug, Clone, PartialEq)]
pub struct AssembledRow {
    /// Feature values in spec order (current columns, then lagged).
    /// Entries whose `available` flag is `false` are meaningless zeros.
    pub row: Vec<f64>,
    /// Which columns hold trustworthy (possibly imputed) values.
    pub available: Vec<bool>,
    /// How many columns the imputation policy bridged this second.
    pub imputed: usize,
}

impl AssembledRow {
    /// Whether every model input is available this second.
    pub fn complete(&self) -> bool {
        self.available.iter().all(|&a| a)
    }
}

/// Configuration for a [`RobustEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustConfig {
    /// Technique for the full (tier-1) model.
    pub technique: ModelTechnique,
    /// Fit options for the full model.
    pub fit: FitOptions,
    /// Gap-bridging policy applied before tier demotion.
    pub impute: ImputePolicy,
    /// Minimum surviving columns for a reduced (tier-2) refit; below
    /// this the chain skips straight to the strawman.
    pub reduced_min_features: usize,
    /// Row cap for the retained training set (reduced-tier refits are
    /// linear, so a few thousand rows are plenty).
    pub max_train_rows: usize,
    /// Execution policy for per-machine estimation in
    /// [`RobustEstimator::estimate_cluster`]. Machine streams are
    /// independent and summed in machine order, so serial and parallel
    /// estimation are bit-identical.
    #[serde(default)]
    pub exec: ExecPolicy,
}

impl RobustConfig {
    /// Paper-fidelity full model (quadratic MARS) with carry-forward
    /// imputation over gaps of up to 3 s.
    pub fn paper() -> Self {
        RobustConfig {
            technique: ModelTechnique::Quadratic,
            fit: FitOptions::paper(),
            impute: ImputePolicy::CarryForward { max_run: 3 },
            reduced_min_features: 2,
            max_train_rows: 4_000,
            exec: ExecPolicy::Serial,
        }
    }

    /// Cheaper configuration for sweeps and tests.
    pub fn fast() -> Self {
        RobustConfig {
            technique: ModelTechnique::Quadratic,
            fit: FitOptions::fast(),
            impute: ImputePolicy::CarryForward { max_run: 3 },
            reduced_min_features: 2,
            max_train_rows: 1_500,
            exec: ExecPolicy::Serial,
        }
    }

    /// Returns a copy with a different imputation policy.
    pub fn with_impute(mut self, policy: ImputePolicy) -> Self {
        self.impute = policy;
        self
    }
}

/// Per-feature streaming state for the imputation policy. One instance
/// per machine stream; feed it seconds in order.
#[derive(Debug, Clone)]
pub struct ImputerState {
    last_valid: Vec<Vec<f64>>,
    gap_run: Vec<usize>,
    window: usize,
}

impl ImputerState {
    fn new(width: usize, policy: ImputePolicy) -> Self {
        let window = match policy {
            ImputePolicy::RollingMedian { window, .. } => window.max(1),
            _ => 1,
        };
        ImputerState {
            last_valid: vec![Vec::new(); width],
            gap_run: vec![0; width],
            window,
        }
    }

    fn observe(&mut self, k: usize, v: f64) {
        self.gap_run[k] = 0;
        let h = &mut self.last_valid[k];
        h.push(v);
        if h.len() > self.window {
            h.remove(0);
        }
    }

    /// Exports the imputer's streaming state as plain data for
    /// checkpointing.
    pub fn export_state(&self) -> ImputerStateSnapshot {
        ImputerStateSnapshot {
            last_valid: self.last_valid.clone(),
            gap_run: self.gap_run.clone(),
            window: self.window,
        }
    }

    /// Rebuilds an imputer from exported state. Returns `None` when the
    /// snapshot is internally inconsistent (the per-feature vectors
    /// disagree in width, or the rolling window is zero).
    pub fn import_state(snap: ImputerStateSnapshot) -> Option<Self> {
        if snap.last_valid.len() != snap.gap_run.len() || snap.window == 0 {
            return None;
        }
        Some(ImputerState {
            last_valid: snap.last_valid,
            gap_run: snap.gap_run,
            window: snap.window,
        })
    }

    // chaos-lint: cold — runs only when a counter sample is missing; the all-valid steady tick never imputes
    fn impute(&mut self, k: usize, policy: ImputePolicy) -> Option<f64> {
        if self.last_valid[k].is_empty() {
            return None;
        }
        self.gap_run[k] += 1;
        if self.gap_run[k] > policy.max_run() {
            return None;
        }
        match policy {
            ImputePolicy::None => None,
            ImputePolicy::CarryForward { .. } => self.last_valid[k].last().copied(),
            ImputePolicy::RollingMedian { .. } => {
                let mut h = self.last_valid[k].clone();
                // chaos-lint: allow(R4) — only finite samples enter
                // last_valid (guarded at insertion), so partial_cmp
                // always succeeds.
                h.sort_by(|a, b| a.partial_cmp(b).expect("history is finite"));
                Some(h[h.len() / 2])
            }
        }
    }
}

/// Plain-data snapshot of an [`ImputerState`], produced by
/// [`ImputerState::export_state`] and consumed by
/// [`ImputerState::import_state`]. Fields are public so external codecs
/// (the chaos-stream checkpoint format) can serialize them bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputerStateSnapshot {
    /// Per-feature history of recent valid samples (rolling-median
    /// window, or a single carry-forward value).
    pub last_valid: Vec<Vec<f64>>,
    /// Per-feature run length of consecutive imputed seconds.
    pub gap_run: Vec<usize>,
    /// Rolling-median window length (1 for other policies).
    pub window: usize,
}

/// A power estimator that degrades gracefully under counter and meter
/// faults by walking a Full → Reduced → Strawman → Constant fallback
/// chain. See the module docs for the chain's semantics.
///
/// Estimation takes `&self` — the reduced-refit cache sits behind a
/// mutex — so one estimator can serve several machine streams
/// concurrently (see [`RobustEstimator::estimate_cluster`]).
#[derive(Debug)]
pub struct RobustEstimator {
    spec: FeatureSpec,
    config: RobustConfig,
    full: FittedModel,
    strawman: Option<FittedModel>,
    cpu_position: Option<usize>,
    idle_power_w: f64,
    train_x: Matrix,
    train_y: Vec<f64>,
    reduced_cache: Mutex<HashMap<u64, Option<FittedModel>>>,
}

impl Clone for RobustEstimator {
    fn clone(&self) -> Self {
        RobustEstimator {
            spec: self.spec.clone(),
            config: self.config,
            full: self.full.clone(),
            strawman: self.strawman.clone(),
            cpu_position: self.cpu_position,
            idle_power_w: self.idle_power_w,
            train_x: self.train_x.clone(),
            train_y: self.train_y.clone(),
            reduced_cache: Mutex::new(self.reduced_cache.lock().clone()),
        }
    }
}

impl RobustEstimator {
    /// Fits the full chain from clean (or fault-masked) training traces.
    ///
    /// `cpu_position` is the position of the CPU-utilization counter
    /// within `spec`'s current columns, used for the strawman tier; pass
    /// `spec.counters.iter().position(..)` of the utilization index, or
    /// take it from [`strawman_position`]. `idle_power_w` is the
    /// per-machine constant floor (tier 4).
    ///
    /// # Errors
    ///
    /// Returns any [`StatsError`] from dataset construction or the full
    /// model fit. A strawman fit failure is not fatal — the tier is
    /// simply absent and the chain skips from Reduced to Constant.
    pub fn fit(
        traces: &[RunTrace],
        spec: &FeatureSpec,
        cpu_position: Option<usize>,
        idle_power_w: f64,
        config: RobustConfig,
    ) -> Result<Self, StatsError> {
        let ds: Dataset = pooled_dataset_valid(traces, spec)?;
        let ds = ds.thinned(config.max_train_rows);
        let full = FittedModel::fit(config.technique, &ds.x, &ds.y, &config.fit)?;
        let strawman = cpu_position.and_then(|p| {
            let x = ds.x.select_cols(&[p]);
            FittedModel::fit(ModelTechnique::Linear, &x, &ds.y, &config.fit).ok()
        });
        Ok(RobustEstimator {
            spec: spec.clone(),
            config,
            full,
            strawman,
            cpu_position,
            idle_power_w,
            train_x: ds.x,
            train_y: ds.y,
            reduced_cache: Mutex::new(HashMap::new()),
        })
    }

    /// The feature spec the estimator reads.
    pub fn spec(&self) -> &FeatureSpec {
        &self.spec
    }

    /// The idle-power constant used by the last-resort tier, in watts.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_power_w
    }

    /// Number of reduced models refit so far (cache size) — a cheap
    /// proxy for how much column-failure diversity the stream showed.
    pub fn reduced_models_fitted(&self) -> usize {
        self.reduced_cache.lock().len()
    }

    /// Creates the streaming imputer state for one machine stream.
    pub fn new_imputer(&self) -> ImputerState {
        ImputerState::new(self.spec.width(), self.config.impute)
    }

    /// The estimator's configuration.
    pub fn config(&self) -> &RobustConfig {
        &self.config
    }

    /// The trained tier-1 (full) model.
    pub fn full_model(&self) -> &FittedModel {
        &self.full
    }

    /// Estimates one second of one machine stream, walking the fallback
    /// chain. Feed seconds in order with the same `imp` state per
    /// stream. Never panics, never returns NaN.
    ///
    /// Equivalent to [`assemble_row`](RobustEstimator::assemble_row)
    /// followed by
    /// [`estimate_from_row`](RobustEstimator::estimate_from_row); the
    /// split exists so streaming consumers (`chaos-stream`) can route the
    /// assembled row through window-adapted models while keeping the
    /// imputer-state evolution — and therefore the fallback behavior —
    /// bit-identical to this offline path.
    pub fn estimate_second(
        &self,
        m: &MachineRunTrace,
        t: usize,
        imp: &mut ImputerState,
    ) -> SampleEstimate {
        let row = self.assemble_row(m, t, imp);
        self.estimate_from_row(&row)
    }

    /// Assembles the model-input row for second `t` of one machine
    /// stream, applying the imputation policy. This is the first half of
    /// [`estimate_second`](RobustEstimator::estimate_second): it advances
    /// `imp` exactly as the offline path does, so a streaming consumer
    /// that calls it once per second stays state-identical to offline
    /// estimation.
    pub fn assemble_row(
        &self,
        m: &MachineRunTrace,
        t: usize,
        imp: &mut ImputerState,
    ) -> AssembledRow {
        let mut out = AssembledRow {
            row: Vec::new(),
            available: Vec::new(),
            imputed: 0,
        };
        self.assemble_row_into(m, t, imp, &mut out);
        out
    }

    /// [`assemble_row`](RobustEstimator::assemble_row) into a
    /// caller-owned [`AssembledRow`], reusing its buffers so the
    /// streaming hot path assembles without per-sample allocation.
    /// State evolution and output are identical to `assemble_row`.
    pub fn assemble_row_into(
        &self,
        m: &MachineRunTrace,
        t: usize,
        imp: &mut ImputerState,
        out: &mut AssembledRow,
    ) {
        let width = self.spec.width();
        out.row.clear();
        // chaos-lint: allow(R6) — resize to the fixed spec width on a cleared buffer; capacity persists after the first assembly
        out.row.resize(width, 0.0);
        out.available.clear();
        // chaos-lint: allow(R6) — same recycled buffer as above, fixed width
        out.available.resize(width, false);
        out.imputed = 0;
        let row = &mut out.row;
        let available = &mut out.available;
        let mut imputed = 0usize;

        if m.alive_at(t) {
            for (k, &c) in self.spec.counters.iter().enumerate() {
                let v = m.counters[t].get(c).copied().unwrap_or(f64::NAN);
                if m.counter_ok(t, c) && v.is_finite() {
                    imp.observe(k, v);
                    row[k] = v;
                    available[k] = true;
                } else if let Some(iv) = imp.impute(k, self.config.impute) {
                    row[k] = iv;
                    available[k] = true;
                    imputed += 1;
                }
            }
            let base = self.spec.counters.len();
            for (j, &c) in self.spec.lagged.iter().enumerate() {
                let k = base + j;
                let v = if t > 0 {
                    m.counters[t - 1].get(c).copied().unwrap_or(f64::NAN)
                } else {
                    f64::NAN
                };
                if t > 0 && m.counter_ok(t - 1, c) && v.is_finite() {
                    imp.observe(k, v);
                    row[k] = v;
                    available[k] = true;
                } else if let Some(iv) = imp.impute(k, self.config.impute) {
                    row[k] = iv;
                    available[k] = true;
                    imputed += 1;
                }
            }
        }

        out.imputed = imputed;
    }

    /// Walks the fallback chain over an assembled row — the second half
    /// of [`estimate_second`](RobustEstimator::estimate_second). Never
    /// panics, never returns NaN.
    pub fn estimate_from_row(&self, assembled: &AssembledRow) -> SampleEstimate {
        let mut scratch = Vec::new();
        self.estimate_from_row_with(assembled, &mut scratch)
    }

    /// [`estimate_from_row`](RobustEstimator::estimate_from_row) with a
    /// caller-owned scratch buffer for the model's design row, so the
    /// streaming hot path (complete rows answered by the Full tier)
    /// runs allocation-free. Degraded tiers may still allocate — they
    /// fire on faulted seconds, off the steady-state path. Results are
    /// bit-identical to `estimate_from_row`.
    pub fn estimate_from_row_with(
        &self,
        assembled: &AssembledRow,
        scratch: &mut Vec<f64>,
    ) -> SampleEstimate {
        let AssembledRow {
            row,
            available,
            imputed,
        } = assembled;
        let (row, imputed) = (row.as_slice(), *imputed);
        let width = self.spec.width();

        // Tier 1: full model on a complete row.
        if available.iter().all(|&a| a) {
            if let Ok(p) = self.full.predict_row_with(row, scratch) {
                if p.is_finite() {
                    return SampleEstimate {
                        power_w: p,
                        tier: EstimateTier::Full,
                        imputed,
                    };
                }
            }
        }

        // Tier 2: linear refit on the surviving columns.
        // chaos-lint: allow(R6) — tier-2 degraded branch; the all-valid steady tick returned at tier 1 above
        let keep: Vec<usize> = (0..width).filter(|&k| available[k]).collect();
        if keep.len() >= self.config.reduced_min_features.max(1) && keep.len() < width {
            // chaos-lint: allow(R6) — same degraded branch as `keep` above
            let sub: Vec<f64> = keep.iter().map(|&k| row[k]).collect();
            if let Some(p) = self.reduced_predict(&keep, &sub) {
                return SampleEstimate {
                    power_w: p,
                    tier: EstimateTier::Reduced,
                    imputed,
                };
            }
        }

        // Tier 3: CPU-utilization strawman.
        if let (Some(pos), Some(straw)) = (self.cpu_position, self.strawman.as_ref()) {
            if available[pos] {
                if let Ok(p) = straw.predict_row_with(&row[pos..=pos], scratch) {
                    if p.is_finite() {
                        return SampleEstimate {
                            power_w: p,
                            tier: EstimateTier::Strawman,
                            imputed,
                        };
                    }
                }
            }
        }

        // Tier 4: the constant floor.
        SampleEstimate {
            power_w: self.idle_power_w,
            tier: EstimateTier::Constant,
            imputed,
        }
    }

    /// Estimates a whole machine trace, returning one [`SampleEstimate`]
    /// per second.
    pub fn estimate_machine(&self, m: &MachineRunTrace) -> Vec<SampleEstimate> {
        let mut imp = self.new_imputer();
        (0..m.seconds())
            .map(|t| self.estimate_second(m, t, &mut imp))
            .collect()
    }

    /// Estimates cluster power for a run: per-machine chains summed per
    /// second (Eq. 5 with per-machine degradation), plus the per-sample
    /// *worst* tier used across machines — the honest provenance for the
    /// summed wattage.
    ///
    /// Machine streams are estimated under `config.exec`; each stream is
    /// an independent pure computation and the per-second sums are
    /// accumulated in machine order, so the estimate is bit-identical
    /// across execution policies.
    pub fn estimate_cluster(&self, run: &RunTrace) -> ClusterEstimate {
        let _span = chaos_obs::span("robust.estimate_cluster");
        let n = run.seconds();
        let per_machine = self
            .config
            .exec
            .par_map(&run.machines, |m| self.estimate_machine(m));
        let mut total = vec![0.0_f64; n];
        let mut worst = vec![EstimateTier::Full; n];
        let mut tier_counts: BTreeMap<EstimateTier, usize> = BTreeMap::new();
        for est in &per_machine {
            for (t, e) in est.iter().enumerate().take(n) {
                total[t] += e.power_w;
                worst[t] = worst[t].max(e.tier);
                *tier_counts.entry(e.tier).or_insert(0) += 1;
            }
        }
        if chaos_obs::enabled() {
            chaos_obs::add("robust.cluster_estimates", 1);
            // Surface PR 1's degradation decisions as metrics: which tier
            // answered, how often the chain switched tiers mid-stream, and
            // how many features the imputer had to bridge.
            for (tier, count) in &tier_counts {
                chaos_obs::add(&format!("robust.tier.{}", tier.label()), *count as u64);
            }
            let transitions: usize = per_machine
                .iter()
                // chaos-lint: allow(R4) — windows(2) yields exactly
                // two elements per window.
                .map(|est| est.windows(2).filter(|w| w[0].tier != w[1].tier).count())
                .sum();
            chaos_obs::add("robust.tier_transitions", transitions as u64);
            let imputed: usize = per_machine.iter().flatten().map(|e| e.imputed).sum();
            chaos_obs::add("robust.imputed_features", imputed as u64);
        }
        ClusterEstimate {
            power_w: total,
            worst_tier: worst,
            tier_counts,
        }
    }

    /// Estimates cluster power from any [`SampleSource`] — an in-memory
    /// run ([`chaos_counters::MemorySource`]) or a CHAOSCOL trace file
    /// streamed block by block ([`chaos_counters::DiskSource`]) —
    /// bit-identical to
    /// [`estimate_cluster`](RobustEstimator::estimate_cluster) on the
    /// materialized trace.
    ///
    /// Per-machine imputer state persists across chunks, each machine
    /// stream is a pure sequential computation, and per-second sums
    /// accumulate in machine order within every chunk — so the result
    /// is independent of the chunk boundaries, of `config.exec`, and of
    /// whether the samples ever touched a disk.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from the source, and returns
    /// [`StoreError::Shape`] when the source's chunks do not partition
    /// its advertised seconds or machine count.
    pub fn estimate_source<S: SampleSource>(
        &self,
        src: &mut S,
    ) -> Result<ClusterEstimate, StoreError> {
        let _span = chaos_obs::span("robust.estimate_source");
        let n = src.seconds();
        let machines = src.machines();
        let mut imputers: Vec<ImputerState> = (0..machines).map(|_| self.new_imputer()).collect();
        let mut total = vec![0.0_f64; n];
        let mut worst = vec![EstimateTier::Full; n];
        let mut tier_counts: BTreeMap<EstimateTier, usize> = BTreeMap::new();
        let mut covered = 0usize;
        while let Some(chunk) = src.next_chunk()? {
            if chunk.machines.len() != machines {
                return Err(StoreError::Shape {
                    context: format!(
                        "chunk at {} carries {} machines, source advertised {machines}",
                        chunk.start,
                        chunk.machines.len()
                    ),
                });
            }
            let len = chunk.len();
            if chunk.start != covered || covered + len > n {
                return Err(StoreError::Shape {
                    context: format!(
                        "chunk [{}, {}) does not continue coverage at {covered}/{n}",
                        chunk.start,
                        chunk.start + len
                    ),
                });
            }
            // Machine streams fan out under `config.exec`; each is pure
            // given its carried-in imputer, so the merge below is
            // deterministic at any thread count.
            let per_machine = self.config.exec.par_map_indices(machines, |i| {
                let mut imp = imputers[i].clone();
                let m = &chunk.machines[i];
                let ests: Vec<SampleEstimate> = (0..len)
                    .map(|k| self.estimate_second(m, chunk.lag + k, &mut imp))
                    .collect();
                (imp, ests)
            });
            for (i, (imp, ests)) in per_machine.into_iter().enumerate() {
                imputers[i] = imp;
                for (k, e) in ests.iter().enumerate() {
                    let t = chunk.start + k;
                    total[t] += e.power_w;
                    worst[t] = worst[t].max(e.tier);
                    *tier_counts.entry(e.tier).or_insert(0) += 1;
                }
            }
            covered += len;
        }
        if covered != n {
            return Err(StoreError::Shape {
                context: format!("source chunks covered {covered} of {n} seconds"),
            });
        }
        if chaos_obs::enabled() {
            chaos_obs::add("robust.source_estimates", 1);
            for (tier, count) in &tier_counts {
                chaos_obs::add(&format!("robust.tier.{}", tier.label()), *count as u64);
            }
        }
        Ok(ClusterEstimate {
            power_w: total,
            worst_tier: worst,
            tier_counts,
        })
    }
}

/// A cluster-level robust estimate with provenance.
#[derive(Debug, Clone)]
pub struct ClusterEstimate {
    /// Estimated cluster power per second, in watts. Always finite.
    pub power_w: Vec<f64>,
    /// Per second, the least capable tier any machine needed.
    pub worst_tier: Vec<EstimateTier>,
    /// How many (machine, second) samples each tier answered. Ordered
    /// by tier so iteration (metrics emission, serialized reports) is
    /// byte-stable run to run.
    pub tier_counts: BTreeMap<EstimateTier, usize>,
}

impl ClusterEstimate {
    /// Fraction of (machine, second) samples answered above the constant
    /// floor — the coverage metric of the fault-sweep ablation.
    pub fn coverage(&self) -> f64 {
        let total: usize = self.tier_counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let constant = self
            .tier_counts
            .get(&EstimateTier::Constant)
            .copied()
            .unwrap_or(0);
        (total - constant) as f64 / total as f64
    }
}

impl RobustEstimator {
    /// Predicts with the reduced model for a surviving-column mask,
    /// fitting and caching it on first sight. Fitting happens under the
    /// cache lock, so concurrent streams hitting the same mask wait for
    /// one fit instead of racing duplicates; the fit is deterministic, so
    /// whichever thread populates an entry stores the same model.
    // chaos-lint: cold — degraded-tier fallback; fits once per unseen column mask, never on the all-counters-valid steady path
    fn reduced_predict(&self, keep: &[usize], sub: &[f64]) -> Option<f64> {
        let key = keep.iter().fold(0u64, |acc, &k| acc | (1 << (k % 64)));
        let mut cache = self.reduced_cache.lock();
        let model = cache.entry(key).or_insert_with(|| {
            chaos_obs::add("robust.reduced_refits", 1);
            let x = self.train_x.select_cols(keep);
            FittedModel::fit(ModelTechnique::Linear, &x, &self.train_y, &self.config.fit).ok()
        });
        model
            .as_ref()
            .and_then(|m| m.predict_row(sub).ok())
            .filter(|p| p.is_finite())
    }
}

/// Position of the CPU-utilization counter within a spec's current
/// columns, for wiring the strawman tier.
pub fn strawman_position(
    spec: &FeatureSpec,
    catalog: &chaos_counters::CounterCatalog,
) -> Option<usize> {
    let idx = catalog.index_of("Processor\\% Processor Time (_Total)")?;
    spec.counters.iter().position(|&c| c == idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_counters::{collect_run, CounterCatalog, FaultPlan};
    use chaos_sim::{Cluster, Platform};
    use chaos_workloads::{SimConfig, Workload};

    fn setup() -> (Vec<RunTrace>, RunTrace, Cluster, CounterCatalog) {
        let cluster = Cluster::homogeneous(Platform::Core2, 2, 2);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let train: Vec<RunTrace> = (0..2)
            .map(|r| {
                collect_run(
                    &cluster,
                    &catalog,
                    Workload::Prime,
                    &SimConfig::quick(),
                    300 + r,
                )
                .unwrap()
            })
            .collect();
        let test = collect_run(
            &cluster,
            &catalog,
            Workload::Prime,
            &SimConfig::quick(),
            390,
        )
        .unwrap();
        (train, test, cluster, catalog)
    }

    fn estimator(
        train: &[RunTrace],
        cluster: &Cluster,
        catalog: &CounterCatalog,
    ) -> RobustEstimator {
        let spec = FeatureSpec::general(catalog);
        let cpu = strawman_position(&spec, catalog);
        let idle = cluster.idle_power() / cluster.machines().len() as f64;
        let cfg = RobustConfig {
            fit: RobustConfig::fast()
                .fit
                .with_freq_column(spec.freq_column(catalog)),
            ..RobustConfig::fast()
        };
        RobustEstimator::fit(train, &spec, cpu, idle, cfg).unwrap()
    }

    #[test]
    fn clean_trace_answers_full_tier_everywhere() {
        let (train, test, cluster, catalog) = setup();
        let est = estimator(&train, &cluster, &catalog);
        let ce = est.estimate_cluster(&test);
        assert!(ce.coverage() > 0.999, "coverage {}", ce.coverage());
        assert!(ce.worst_tier.iter().all(|&t| t == EstimateTier::Full));
        // And it is accurate: DRE well inside the paper's regime.
        let actual = test.cluster_measured_power();
        let rmse = chaos_stats::metrics::rmse(&ce.power_w, &actual).unwrap();
        let dre = rmse / (cluster.max_power() - cluster.idle_power());
        assert!(dre < 0.15, "clean DRE {dre}");
    }

    #[test]
    fn moderate_dropout_keeps_estimates_finite_and_bounded() {
        let (train, test, cluster, catalog) = setup();
        let est = estimator(&train, &cluster, &catalog);
        let faulted = FaultPlan::new(77).with_counter_dropout(0.2).apply(&test);
        let ce = est.estimate_cluster(&faulted);
        assert!(ce.power_w.iter().all(|p| p.is_finite()));
        // Score against the *clean* measured power: the estimator only
        // saw the faulted counters.
        let actual = test.cluster_measured_power();
        let rmse = chaos_stats::metrics::rmse(&ce.power_w, &actual).unwrap();
        let dre = rmse / (cluster.max_power() - cluster.idle_power());
        assert!(dre < 0.35, "faulted DRE {dre}");
        // Imputation + reduced refits keep coverage high at 20% dropout.
        assert!(ce.coverage() > 0.5, "coverage {}", ce.coverage());
        assert!(est.reduced_models_fitted() > 0);
    }

    #[test]
    fn crashed_machine_falls_to_constant_floor() {
        let (train, test, cluster, catalog) = setup();
        let est = estimator(&train, &cluster, &catalog);
        let faulted = FaultPlan::new(5).with_crashes(1.0).apply(&test);
        let m = &faulted.machines[0];
        let series = est.estimate_machine(m);
        let crash_t = (0..m.seconds()).find(|&t| !m.alive_at(t)).unwrap();
        // After the imputation horizon runs out, the chain floors out.
        let horizon = 4;
        for e in &series[(crash_t + horizon).min(series.len() - 1)..] {
            assert_eq!(e.tier, EstimateTier::Constant);
            assert_eq!(e.power_w, est.idle_power_w());
        }
        for e in &series[..crash_t] {
            assert_eq!(e.tier, EstimateTier::Full);
        }
    }

    #[test]
    fn stuck_feature_demotes_to_reduced_not_constant() {
        let (train, test, cluster, catalog) = setup();
        let est = estimator(&train, &cluster, &catalog);
        // Invalidate one general-set feature for the whole run on one
        // machine by marking it stuck from t=1.
        let mut faulted = test.clone();
        let spec = FeatureSpec::general(&catalog);
        let c = spec.counters[3];
        let m = &mut faulted.machines[0];
        let n = m.seconds();
        let mut mask = chaos_counters::ValidityMask::all_valid(n, m.width());
        for t in 1..n {
            mask.counters[t][c] = false;
        }
        m.validity = mask;
        let series = est.estimate_machine(&faulted.machines[0]);
        // After the imputation horizon the chain settles on Reduced.
        let tail = &series[10..];
        assert!(
            tail.iter().all(|e| e.tier == EstimateTier::Reduced),
            "{:?}",
            tail[0].tier
        );
        assert!(tail.iter().all(|e| e.power_w.is_finite()));
        assert_eq!(est.reduced_models_fitted(), 1);
    }

    #[test]
    fn rolling_median_policy_bridges_gaps() {
        let (train, test, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let cpu = strawman_position(&spec, &catalog);
        let idle = cluster.idle_power() / cluster.machines().len() as f64;
        let cfg = RobustConfig {
            fit: RobustConfig::fast()
                .fit
                .with_freq_column(spec.freq_column(&catalog)),
            ..RobustConfig::fast()
        }
        .with_impute(ImputePolicy::RollingMedian {
            window: 5,
            max_run: 3,
        });
        let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).unwrap();
        let faulted = FaultPlan::new(9).with_counter_dropout(0.05).apply(&test);
        let series = est.estimate_machine(&faulted.machines[0]);
        assert!(series.iter().any(|e| e.imputed > 0));
        assert!(series
            .iter()
            .filter(|e| e.imputed > 0)
            .all(|e| e.tier == EstimateTier::Full || e.tier == EstimateTier::Reduced));
    }

    #[test]
    fn no_imputation_policy_demotes_immediately() {
        let (train, test, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let cpu = strawman_position(&spec, &catalog);
        let idle = cluster.idle_power() / cluster.machines().len() as f64;
        let cfg = RobustConfig {
            fit: RobustConfig::fast()
                .fit
                .with_freq_column(spec.freq_column(&catalog)),
            ..RobustConfig::fast()
        }
        .with_impute(ImputePolicy::None);
        let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).unwrap();
        let faulted = FaultPlan::new(4).with_counter_dropout(0.15).apply(&test);
        let series = est.estimate_machine(&faulted.machines[0]);
        assert!(series.iter().all(|e| e.imputed == 0));
        assert!(series.iter().any(|e| e.tier == EstimateTier::Reduced));
    }

    #[test]
    fn cluster_estimation_is_policy_invariant() {
        let (train, test, cluster, catalog) = setup();
        let spec = FeatureSpec::general(&catalog);
        let cpu = strawman_position(&spec, &catalog);
        let idle = cluster.idle_power() / cluster.machines().len() as f64;
        let base = RobustConfig {
            fit: RobustConfig::fast()
                .fit
                .with_freq_column(spec.freq_column(&catalog)),
            ..RobustConfig::fast()
        };
        let faulted = FaultPlan::new(77).with_counter_dropout(0.2).apply(&test);
        let serial_est = RobustEstimator::fit(&train, &spec, cpu, idle, base).unwrap();
        let serial = serial_est.estimate_cluster(&faulted);
        let par_cfg = RobustConfig {
            exec: ExecPolicy::Parallel { threads: 4 },
            ..base
        };
        let par_est = RobustEstimator::fit(&train, &spec, cpu, idle, par_cfg).unwrap();
        let parallel = par_est.estimate_cluster(&faulted);
        assert_eq!(serial.power_w, parallel.power_w);
        assert_eq!(serial.worst_tier, parallel.worst_tier);
        assert_eq!(serial.tier_counts, parallel.tier_counts);
    }

    #[test]
    fn split_api_matches_estimate_second() {
        let (train, test, cluster, catalog) = setup();
        let est = estimator(&train, &cluster, &catalog);
        let faulted = FaultPlan::new(21).with_counter_dropout(0.1).apply(&test);
        let m = &faulted.machines[0];
        let mut direct_imp = est.new_imputer();
        let mut split_imp = est.new_imputer();
        for t in 0..m.seconds() {
            let direct = est.estimate_second(m, t, &mut direct_imp);
            let assembled = est.assemble_row(m, t, &mut split_imp);
            assert_eq!(assembled.complete(), assembled.available.iter().all(|&a| a));
            let split = est.estimate_from_row(&assembled);
            assert_eq!(direct, split, "split API diverged at t={t}");
        }
    }

    #[test]
    fn tier_ordering_matches_capability() {
        assert!(EstimateTier::Full < EstimateTier::Reduced);
        assert!(EstimateTier::Reduced < EstimateTier::Strawman);
        assert!(EstimateTier::Strawman < EstimateTier::Constant);
        assert_eq!(EstimateTier::Full.label(), "full");
    }
}
