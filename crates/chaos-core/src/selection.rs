//! Algorithm 1: the six-step feature-reduction procedure that turns ~250
//! candidate counters into the ~10-counter cluster feature set.
//!
//! | Step | Paper description                                   | Here |
//! |------|------------------------------------------------------|------|
//! | 1    | Remove pairwise correlations above \|0.95\|          | [`step1_correlation_prune`] |
//! | 2    | Remove co-dependent counters (`a = b + c`) by definition | [`step2_codependence`] |
//! | 3    | Per-machine L1-regularized regression                | lasso support, per machine × workload |
//! | 4    | Per-machine stepwise regression (Wald test)          | backward elimination on the lasso support |
//! | 5    | Weighted union histogram across machines/workloads   | weight 1 for stepwise survivors, less for lasso-only |
//! | 6    | Cluster-level stepwise over the pooled data          | threshold adjustment until stable |

use crate::dataset::{machine_dataset, pooled_dataset};
use crate::features::FeatureSpec;
use chaos_counters::{CounterCatalog, RunTrace};
use chaos_stats::exec::ExecPolicy;
use chaos_stats::gram::GramCache;
use chaos_stats::lasso::{lambda_max, LassoConfig, LassoFit};
use chaos_stats::stepwise::{backward_eliminate, backward_eliminate_cached, StepwiseConfig};
use chaos_stats::{corr, describe, Matrix, StatsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tunables of the selection pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Step 1 correlation threshold (the paper's 0.95; sensitivity
    /// analysis found lower values give diminishing returns).
    pub corr_threshold: f64,
    /// Lasso λ as a fraction of each dataset's `lambda_max`.
    pub lasso_lambda_frac: f64,
    /// Wald significance level for the per-machine stepwise (step 4).
    pub machine_alpha: f64,
    /// Wald significance level for the cluster stepwise (step 6).
    pub cluster_alpha: f64,
    /// Histogram weight for features kept by the lasso but eliminated in
    /// stepwise (significant features weigh 1.0).
    pub lasso_only_weight: f64,
    /// Initial histogram threshold as a fraction of the number of
    /// (machine × workload) combinations. The paper starts at an absolute
    /// count of 5 with 20 combinations (25%), and the cluster stepwise
    /// pushed it to 7.
    pub initial_threshold_frac: f64,
    /// Row caps keeping lasso/stepwise affordable on long traces.
    pub max_machine_rows: usize,
    /// Row cap for the pooled cluster-level refits.
    pub max_cluster_rows: usize,
    /// Execution policy for the per-(machine × workload) model fits of
    /// steps 3–4. Results are bit-identical across policies: each combo is
    /// fitted independently and the step 5 histogram is accumulated in the
    /// fixed (workload, machine) order regardless of completion order.
    #[serde(default)]
    pub exec: ExecPolicy,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            corr_threshold: 0.95,
            lasso_lambda_frac: 0.02,
            machine_alpha: 0.01,
            cluster_alpha: 0.01,
            lasso_only_weight: 0.4,
            initial_threshold_frac: 0.25,
            max_machine_rows: 1_200,
            max_cluster_rows: 3_000,
            exec: ExecPolicy::Serial,
        }
    }
}

/// Output of Algorithm 1 for one cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionResult {
    /// Final cluster feature set (counter indices), ascending.
    pub selected: Vec<usize>,
    /// Step 5 histogram: weighted occurrence per counter across machines
    /// and workloads, descending by weight. Drives Figure 2.
    pub histogram: Vec<(usize, f64)>,
    /// Final histogram threshold after step 6's adjustment.
    pub threshold: f64,
    /// Candidates surviving step 1.
    pub survivors_step1: usize,
    /// Candidates surviving step 2.
    pub survivors_step2: usize,
    /// Number of regression models fitted along the way (lasso fits plus
    /// every stepwise refit) — the paper's ">1200 models per cluster"
    /// exploration is dominated by these.
    pub models_built: usize,
}

impl SelectionResult {
    /// The selected features as a [`FeatureSpec`].
    pub fn feature_spec(&self) -> FeatureSpec {
        FeatureSpec::new(self.selected.clone())
    }
}

/// Step 1: prune pairwise correlations above the threshold, preferring to
/// keep the counter more correlated with measured power.
///
/// # Errors
///
/// Propagates dataset and correlation errors.
pub fn step1_correlation_prune(
    traces: &[RunTrace],
    catalog: &CounterCatalog,
    config: &SelectionConfig,
) -> Result<Vec<usize>, StatsError> {
    let all = FeatureSpec::new((0..catalog.len()).collect());
    let ds = pooled_dataset(traces, &all)?.thinned(config.max_cluster_rows);
    let c = corr::correlation_matrix(&ds.x)?;
    // Priority: descending |correlation with power|, with a small bonus
    // for canonical signal counters so that, within a >0.95-correlated
    // group, the directly-measured counter survives rather than an alias
    // or a compound proxy — mirroring the paper's domain-informed
    // pre-selection of candidate counters.
    let mut prio: Vec<(usize, f64)> = (0..catalog.len())
        .map(|j| {
            let col = ds.x.col(j);
            let r = corr::pearson(&col, &ds.y).unwrap_or(0.0).abs();
            let def = catalog.def(j);
            let canonical_bonus =
                if crate::features::GENERAL_FEATURE_NAMES.contains(&def.name.as_str()) {
                    0.06
                } else if matches!(def.kind, chaos_counters::CounterKind::Signal { .. }) {
                    0.02
                } else {
                    0.0
                };
            (j, r + canonical_bonus)
        })
        .collect();
    // chaos-lint: allow(R4) — correlations come from corr::matrix,
    // which maps degenerate columns to 0.0, never NaN.
    prio.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN correlations"));
    let priority: Vec<usize> = prio.into_iter().map(|(j, _)| j).collect();
    corr::prune_correlated(&c, config.corr_threshold, &priority)
}

/// Columns that carry usable signal: variance strictly positive and not
/// vanishingly small relative to the mean. A counter pinned at a large
/// constant (e.g. a fixed 1600 MHz frequency on the non-DVFS Atom) is
/// nearly collinear with the intercept and destabilizes the Wald test.
fn live_columns(x: &Matrix) -> Vec<usize> {
    (0..x.cols())
        .filter(|&j| {
            let col = x.col(j);
            let sd = describe::std_dev_population(&col);
            if sd <= 0.0 {
                return false;
            }
            let mean = describe::mean(&col).abs();
            mean == 0.0 || sd / mean > 5e-3
        })
        .collect()
}

/// Z-scores every column (columns are known to be live). The Wald test is
/// scale-invariant in exact arithmetic; standardizing keeps it that way
/// numerically.
fn standardized(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for j in 0..x.cols() {
        let col = x.col(j);
        let m = describe::mean(&col);
        let sd = describe::std_dev_population(&col).max(f64::MIN_POSITIVE);
        for (i, v) in col.iter().enumerate() {
            out.set(i, j, (v - m) / sd);
        }
    }
    out
}

/// Step 2: eliminate co-dependent counters using counter *definitions*:
/// wherever `a = b + c` and the sum survived step 1, drop the addends (one
/// counter carries the information of two).
pub fn step2_codependence(candidates: &[usize], catalog: &CounterCatalog) -> Vec<usize> {
    let mut keep: Vec<usize> = candidates.to_vec();
    for (sum, a, b) in catalog.codependent_sums() {
        if keep.contains(&sum) {
            keep.retain(|&j| j != a && j != b);
        }
    }
    keep
}

/// Runs the full six-step pipeline over one cluster's traces (all
/// workloads, all runs).
///
/// # Errors
///
/// Propagates statistical errors; returns
/// [`StatsError::InsufficientData`] if the traces are empty.
pub fn select_features(
    traces: &[RunTrace],
    catalog: &CounterCatalog,
    config: &SelectionConfig,
) -> Result<SelectionResult, StatsError> {
    if traces.is_empty() {
        return Err(StatsError::InsufficientData {
            observations: 0,
            required: 1,
        });
    }
    let _span_total = chaos_obs::span("selection.total");
    chaos_obs::add("selection.runs", 1);
    let mut models_built = 0usize;

    // Steps 1–2.
    let span1 = chaos_obs::span("selection.step1");
    let s1 = step1_correlation_prune(traces, catalog, config)?;
    drop(span1);
    let survivors_step1 = s1.len();
    let span2 = chaos_obs::span("selection.step2");
    let s2 = step2_codependence(&s1, catalog);
    drop(span2);
    let survivors_step2 = s2.len();

    // Group runs by workload for per-(machine, workload) models.
    let mut by_workload: BTreeMap<&str, Vec<&RunTrace>> = BTreeMap::new();
    for t in traces {
        by_workload.entry(t.workload.as_str()).or_default().push(t);
    }
    // chaos-lint: allow(R4) — guarded: select_features returns
    // InsufficientData above when traces is empty.
    let machine_ids: Vec<usize> = traces[0].machines.iter().map(|m| m.machine_id).collect();

    // Steps 3–5: per machine × workload lasso + stepwise. Each combo is an
    // independent pure fit, so the combos fan out under `config.exec`; the
    // step 5 histogram is then accumulated serially in the fixed
    // (workload, machine) order, which keeps the floating-point weight
    // sums bit-identical regardless of the execution policy.
    let workload_runs: Vec<Vec<RunTrace>> = by_workload
        .values()
        .map(|runs| runs.iter().map(|r| (*r).clone()).collect())
        .collect();
    let combos: Vec<(usize, usize)> = (0..workload_runs.len())
        .flat_map(|wi| machine_ids.iter().map(move |&mid| (wi, mid)))
        .collect();

    /// Per-combo result: catalog-index weight contributions plus the
    /// number of models fitted along the way.
    struct ComboOutcome {
        contributions: Vec<(usize, f64)>,
        models: usize,
    }

    let span35 = chaos_obs::span("selection.steps3_5");
    chaos_obs::add("selection.combos", combos.len() as u64);
    let outcomes: Vec<Option<ComboOutcome>> = config.exec.try_par_map(&combos, |&(wi, mid)| {
        let spec = FeatureSpec::new(s2.clone());
        let ds = machine_dataset(&workload_runs[wi], &spec, mid)?.thinned(config.max_machine_rows);
        // Only counters that genuinely move on this machine can enter.
        let live = live_columns(&ds.x);
        if live.is_empty() {
            return Ok(None);
        }
        let xl = ds.x.select_cols(&live);

        // Step 3: lasso support.
        let lmax = lambda_max(&xl, &ds.y)?;
        let lasso = LassoFit::fit(
            &xl,
            &ds.y,
            &LassoConfig {
                lambda: config.lasso_lambda_frac * lmax,
                ..LassoConfig::default()
            },
        )?;
        let mut models = 1usize;
        let support = lasso.support();
        if support.is_empty() {
            return Ok(Some(ComboOutcome {
                contributions: Vec::new(),
                models,
            }));
        }

        // Step 4: stepwise over the support (standardized for numerical
        // stability of the Wald statistics). The memoizing Gram cache
        // shares X'X across elimination rounds instead of re-factorizing
        // the design from scratch at every refit.
        let xs = standardized(&xl.select_cols(&support));
        let mut gram = GramCache::new(&xs, &ds.y)?;
        let sw = backward_eliminate_cached(
            &mut gram,
            &StepwiseConfig {
                alpha: config.machine_alpha,
                min_features: 1,
            },
        )?;
        models += sw.rounds + 1;

        // Step 5 contributions: map back to catalog indices.
        let contributions = support
            .iter()
            .enumerate()
            .map(|(pos_in_support, _)| {
                let catalog_idx = s2[live[support[pos_in_support]]];
                let significant = sw.selected.contains(&pos_in_support);
                let w = if significant {
                    1.0
                } else {
                    config.lasso_only_weight
                };
                (catalog_idx, w)
            })
            .collect();
        Ok(Some(ComboOutcome {
            contributions,
            models,
        }))
    })?;

    let mut weights: Vec<f64> = vec![0.0; catalog.len()];
    for outcome in outcomes.into_iter().flatten() {
        models_built += outcome.models;
        for (catalog_idx, w) in outcome.contributions {
            weights[catalog_idx] += w;
        }
    }

    let mut histogram: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .filter(|(_, w)| **w > 0.0)
        .map(|(j, w)| (j, *w))
        .collect();
    // chaos-lint: allow(R4) — lasso weights are clamped finite by the
    // coordinate-descent solver before they reach the histogram.
    histogram.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
    drop(span35);

    // Step 6: threshold + cluster-level stepwise, adjusting the threshold
    // until the pooled stepwise keeps everything above it.
    let _span6 = chaos_obs::span("selection.step6");
    let pooled_spec = FeatureSpec::new(s2.clone());
    let pooled = pooled_dataset(traces, &pooled_spec)?.thinned(config.max_cluster_rows);

    // Initial line: a fraction of the (machine × workload) combination
    // count — 25% reproduces the paper's "started at 5" with 20 combos.
    let combos = (by_workload.len() * machine_ids.len()) as f64;
    let mut threshold = (config.initial_threshold_frac * combos).round().max(2.0);

    // Candidates above the line; if the line overshoots everything, lower
    // it until at least two candidates qualify (the paper's "the
    // threshold can be reduced" direction).
    let mut above: Vec<usize> = Vec::new();
    while threshold >= 1.0 {
        above = histogram
            .iter()
            .filter(|(_, w)| *w >= threshold)
            .map(|(j, _)| *j)
            .collect();
        if above.len() >= 2 {
            break;
        }
        threshold -= 1.0;
    }
    if above.is_empty() {
        above = histogram.iter().take(3).map(|(j, _)| *j).collect();
    }

    // Pooled cluster-level stepwise over the thresholded candidates; its
    // survivors are the final set, and the effective threshold is the
    // smallest surviving weight — "the stepwise regression moved that
    // threshold up" in the paper's telling.
    let cols: Vec<usize> = above
        .iter()
        .map(|j| {
            s2.iter()
                .position(|k| k == j)
                // chaos-lint: allow(R4) — `above` is filtered from the
                // step 5 histogram, whose columns all come from s2.
                .expect("candidate survived step 2")
        })
        .collect();
    let xp = pooled.x.select_cols(&cols);
    let live = live_columns(&xp);
    let mut selected: Vec<usize>;
    if live.is_empty() {
        selected = above;
    } else {
        let xpl = standardized(&xp.select_cols(&live));
        let sw = backward_eliminate(
            &xpl,
            &pooled.y,
            &StepwiseConfig {
                alpha: config.cluster_alpha,
                min_features: 2.min(live.len()),
            },
        )?;
        models_built += sw.rounds + 1;
        selected = sw.selected.iter().map(|&p| above[live[p]]).collect();
        let min_weight = selected
            .iter()
            .filter_map(|j| histogram.iter().find(|(k, _)| k == j).map(|(_, w)| *w))
            .fold(f64::INFINITY, f64::min);
        if min_weight.is_finite() {
            threshold = threshold.max(min_weight.floor());
        }
    }

    selected.sort_unstable();
    selected.dedup();
    chaos_obs::add("selection.models_built", models_built as u64);
    chaos_obs::add("selection.features_selected", selected.len() as u64);
    chaos_obs::event(
        "selection.done",
        &[
            ("selected", chaos_obs::Value::U64(selected.len() as u64)),
            ("models_built", chaos_obs::Value::U64(models_built as u64)),
            ("threshold", chaos_obs::Value::F64(threshold)),
        ],
    );
    Ok(SelectionResult {
        selected,
        histogram,
        threshold,
        survivors_step1,
        survivors_step2,
        models_built,
    })
}

/// Builds the design matrix for inspection of a selection (used by tests
/// and the Table II generator).
///
/// # Errors
///
/// Propagates dataset construction errors.
pub fn selected_matrix(
    traces: &[RunTrace],
    result: &SelectionResult,
) -> Result<Matrix, StatsError> {
    Ok(pooled_dataset(traces, &result.feature_spec())?.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_counters::{collect_run, CounterKind};
    use chaos_sim::{Cluster, Platform};
    use chaos_workloads::{SimConfig, Workload};

    fn small_traces(platform: Platform) -> (Vec<RunTrace>, CounterCatalog) {
        let cluster = Cluster::homogeneous(platform, 3, 5);
        let catalog = CounterCatalog::for_platform(&platform.spec());
        let mut traces = Vec::new();
        for (wi, w) in [Workload::Prime, Workload::WordCount].iter().enumerate() {
            for r in 0..2 {
                traces.push(
                    collect_run(
                        &cluster,
                        &catalog,
                        *w,
                        &SimConfig::quick(),
                        (wi * 10 + r) as u64,
                    )
                    .unwrap(),
                );
            }
        }
        (traces, catalog)
    }

    #[test]
    fn step1_removes_aliases_keeps_utilization() {
        let (traces, catalog) = small_traces(Platform::Core2);
        let cfg = SelectionConfig::default();
        let survivors = step1_correlation_prune(&traces, &catalog, &cfg).unwrap();
        assert!(survivors.len() < catalog.len());
        // At most one member of the utilization alias family survives (the
        // members are >0.95-correlated by construction), and at least one
        // member carries the utilization signal forward.
        let family: Vec<usize> = [
            "Processor\\% Processor Time (_Total)",
            "Processor Information\\% Processor Time (_Total)",
            "Processor\\% Processor Utility (_Total)",
            "Processor\\% Idle Time (_Total)",
        ]
        .iter()
        .map(|n| catalog.index_of(n).unwrap())
        .collect();
        let surviving: Vec<usize> = family
            .iter()
            .copied()
            .filter(|j| survivors.contains(j))
            .collect();
        assert!(
            surviving.len() <= 2,
            "too many members of a correlated family survived: {surviving:?}"
        );
        assert!(
            !surviving.is_empty(),
            "the utilization family was pruned entirely"
        );
        // The canonical-counter bonus should keep the canonical counter.
        assert!(survivors.contains(&family[0]));
    }

    #[test]
    fn step2_drops_addends_of_surviving_sums() {
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let (sum, a, b) = catalog.codependent_sums()[0];
        let candidates = vec![sum, a, b, 0];
        let kept = step2_codependence(&candidates, &catalog);
        assert!(kept.contains(&sum));
        assert!(!kept.contains(&a));
        assert!(!kept.contains(&b));
        // If the sum did not survive step 1, addends stay.
        let kept2 = step2_codependence(&[a, b], &catalog);
        assert_eq!(kept2, vec![a, b]);
    }

    #[test]
    fn full_selection_produces_small_relevant_set() {
        let (traces, catalog) = small_traces(Platform::Core2);
        let result = select_features(&traces, &catalog, &SelectionConfig::default()).unwrap();
        assert!(
            result.selected.len() >= 2 && result.selected.len() <= 30,
            "selected {} features",
            result.selected.len()
        );
        assert!(result.survivors_step1 < catalog.len());
        assert!(result.survivors_step2 <= result.survivors_step1);
        assert!(result.models_built > 10);
        // Histogram is sorted descending.
        for w in result.histogram.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // A CPU-activity counter (utilization or a tight proxy of it) must
        // be in the set for CPU-driven platforms — the paper's most common
        // feature. Proxies that track utilization at >0.95 correlation may
        // legitimately stand in for it after step 1.
        let util_family = [
            "Processor\\% Processor Time (_Total)",
            "Processor Information\\% Processor Time (_Total)",
            "Processor\\% Processor Utility (_Total)",
            "Processor\\% Idle Time (_Total)",
            "Processor\\% User Time (_Total)",
            "System\\System Calls/sec",
            "Memory\\Cache Faults/sec",
            "Memory\\Demand Zero Faults/sec",
        ];
        let found = result
            .selected
            .iter()
            .any(|&j| util_family.contains(&catalog.def(j).name.as_str()));
        assert!(
            found,
            "utilization family missing from {:?}",
            result
                .selected
                .iter()
                .map(|&j| &catalog.def(j).name)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn selection_excludes_pure_noise_counters() {
        let (traces, catalog) = small_traces(Platform::Core2);
        let result = select_features(&traces, &catalog, &SelectionConfig::default()).unwrap();
        let noise_selected = result
            .selected
            .iter()
            .filter(|&&j| matches!(catalog.def(j).kind, CounterKind::Noise { .. }))
            .count();
        assert!(
            noise_selected * 3 <= result.selected.len(),
            "too many noise counters selected: {noise_selected}/{}",
            result.selected.len()
        );
    }

    #[test]
    fn empty_traces_rejected() {
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        assert!(select_features(&[], &catalog, &SelectionConfig::default()).is_err());
    }
}
