//! Model-space sweeps: technique × feature-set grids, as in Figures 3–4
//! and Table IV.

use crate::eval::{evaluate, EvalConfig, EvalOutcome};
use crate::features::FeatureSpec;
use crate::models::ModelTechnique;
use chaos_counters::RunTrace;
use chaos_sim::Cluster;
use chaos_stats::exec::ExecPolicy;
use chaos_stats::StatsError;
use serde::{Deserialize, Serialize};

/// One evaluated grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Technique of the cell.
    pub technique: ModelTechnique,
    /// Feature-set label ("U" = CPU-only, "C" = cluster-specific,
    /// "G" = general, "CP" = cluster + MHz(t−1)).
    pub feature_label: String,
    /// Cross-validated outcome.
    pub outcome: EvalOutcome,
}

impl SweepCell {
    /// Table IV-style label: technique letter + feature label, e.g. "QC".
    pub fn label(&self) -> String {
        format!("{}{}", self.technique.letter(), self.feature_label)
    }
}

/// Runs the full technique × feature-set grid over one workload's runs.
///
/// Combinations the paper marks as meaningless are skipped: the quadratic
/// and switching models require multiple features, and the switching
/// model requires a frequency feature in the set.
///
/// Grid cells are independent evaluations and fan out under
/// [`EvalConfig::exec`]. When the grid itself runs in parallel, each
/// cell's inner cross-validation is forced serial — outcomes are
/// policy-invariant, so this only avoids thread oversubscription and
/// never changes results. Cells are returned in grid order regardless of
/// completion order.
///
/// # Errors
///
/// Propagates evaluation errors other than per-cell
/// [`StatsError::InvalidParameter`] skips.
pub fn sweep_grid(
    traces: &[RunTrace],
    cluster: &Cluster,
    feature_sets: &[(String, FeatureSpec)],
    techniques: &[ModelTechnique],
    config: &EvalConfig,
) -> Result<Vec<SweepCell>, StatsError> {
    // chaos-lint: allow(R4) — Cluster construction asserts at least
    // one machine, so machines()[0] cannot be out of bounds.
    let catalog =
        chaos_counters::CounterCatalog::for_platform(&cluster.machines()[0].spec().platform.spec());
    let cell_config = if config.exec.is_parallel() {
        EvalConfig {
            exec: ExecPolicy::Serial,
            ..*config
        }
    } else {
        *config
    };
    let combos: Vec<(&String, &FeatureSpec, ModelTechnique)> = feature_sets
        .iter()
        .flat_map(|(label, spec)| {
            techniques
                .iter()
                .copied()
                .filter(|t| !(t.requires_multiple_features() && spec.width() < 2))
                .filter(|&t| {
                    !(t == ModelTechnique::Switching && spec.freq_column(&catalog).is_none())
                })
                .map(move |t| (label, spec, t))
        })
        .collect();
    let _span = chaos_obs::span("sweep.grid");
    chaos_obs::add("sweep.cells", combos.len() as u64);
    let results = config.exec.par_map(&combos, |&(label, spec, technique)| {
        match evaluate(traces, cluster, spec, technique, &cell_config) {
            Ok(outcome) => Ok(Some(SweepCell {
                technique,
                feature_label: label.clone(),
                outcome,
            })),
            // A singular fold (e.g. a degenerate feature subset on a
            // short trace) invalidates the cell, not the sweep.
            Err(StatsError::Singular) | Err(StatsError::InsufficientData { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    });
    let mut cells = Vec::new();
    for r in results {
        if let Some(cell) = r? {
            cells.push(cell);
        }
    }
    chaos_obs::add("sweep.cells_skipped", (combos.len() - cells.len()) as u64);
    Ok(cells)
}

/// The best cell of a sweep by average DRE.
pub fn best_cell(cells: &[SweepCell]) -> Option<&SweepCell> {
    cells.iter().min_by(|a, b| {
        a.outcome
            .avg_dre()
            .partial_cmp(&b.outcome.avg_dre())
            // chaos-lint: allow(R4) — avg_dre averages finite per-fold
            // DREs (evaluate rejects non-finite predictions).
            .expect("DRE values are finite")
    })
}

/// Total number of models fitted across a sweep (for the paper's ">1200
/// models per cluster" accounting).
pub fn models_built(cells: &[SweepCell]) -> usize {
    cells.iter().map(|c| c.outcome.models_built).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_counters::{collect_run, CounterCatalog};
    use chaos_sim::Platform;
    use chaos_workloads::{SimConfig, Workload};

    fn setup() -> (Vec<RunTrace>, Cluster, CounterCatalog) {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 1);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let traces = (0..2)
            .map(|r| {
                collect_run(
                    &cluster,
                    &catalog,
                    Workload::WordCount,
                    &SimConfig::quick(),
                    70 + r,
                )
                .unwrap()
            })
            .collect();
        (traces, cluster, catalog)
    }

    #[test]
    fn grid_skips_invalid_combinations() {
        let (traces, cluster, catalog) = setup();
        let sets = vec![
            ("U".to_string(), FeatureSpec::cpu_only(&catalog)),
            ("G".to_string(), FeatureSpec::general(&catalog)),
        ];
        let cells = sweep_grid(
            &traces,
            &cluster,
            &sets,
            &ModelTechnique::ALL,
            &EvalConfig::fast(),
        )
        .unwrap();
        // CPU-only admits linear + piecewise only; general admits all 4.
        let u_cells: Vec<_> = cells.iter().filter(|c| c.feature_label == "U").collect();
        let g_cells: Vec<_> = cells.iter().filter(|c| c.feature_label == "G").collect();
        assert_eq!(u_cells.len(), 2, "{u_cells:?}");
        assert_eq!(g_cells.len(), 4);
        for c in u_cells {
            assert!(!c.technique.requires_multiple_features());
        }
    }

    #[test]
    fn best_cell_minimizes_dre() {
        let (traces, cluster, catalog) = setup();
        let sets = vec![("G".to_string(), FeatureSpec::general(&catalog))];
        let cells = sweep_grid(
            &traces,
            &cluster,
            &sets,
            &[ModelTechnique::Linear, ModelTechnique::PiecewiseLinear],
            &EvalConfig::fast(),
        )
        .unwrap();
        let best = best_cell(&cells).unwrap();
        for c in &cells {
            assert!(best.outcome.avg_dre() <= c.outcome.avg_dre());
        }
        assert!(models_built(&cells) >= cells.len());
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let (traces, cluster, catalog) = setup();
        let sets = vec![
            ("U".to_string(), FeatureSpec::cpu_only(&catalog)),
            ("G".to_string(), FeatureSpec::general(&catalog)),
        ];
        let serial = sweep_grid(
            &traces,
            &cluster,
            &sets,
            &ModelTechnique::ALL,
            &EvalConfig::fast(),
        )
        .unwrap();
        let parallel = sweep_grid(
            &traces,
            &cluster,
            &sets,
            &ModelTechnique::ALL,
            &EvalConfig {
                exec: ExecPolicy::Parallel { threads: 4 },
                ..EvalConfig::fast()
            },
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cell_labels_match_table_iv_convention() {
        let (traces, cluster, catalog) = setup();
        let sets = vec![("C".to_string(), FeatureSpec::general(&catalog))];
        let cells = sweep_grid(
            &traces,
            &cluster,
            &sets,
            &[ModelTechnique::Quadratic],
            &EvalConfig::fast(),
        )
        .unwrap();
        assert_eq!(cells[0].label(), "QC");
    }
}
