//! End-to-end determinism: every parallel path in the experiment engine
//! must produce results bit-identical to serial execution.
//!
//! The engine's contract (see `chaos_stats::exec`) is that an
//! [`ExecPolicy`] only changes wall-clock time, never results: work items
//! are pure functions of their inputs, results merge in input order, and
//! floating-point reductions always run over the ordered, merged results.
//! These tests pin that contract at the public-API level for each fan-out
//! stage: cross-validated evaluation, model fitting, Algorithm 1 feature
//! selection, the technique × feature-set sweep, and the fault-rate sweep.
//!
//! The observability layer makes the same promise from a different angle:
//! `CHAOS_OBS` levels only add side-channel metrics, never feedback into
//! the computation, so `full` runs must stay bit-identical to `off` runs.

use chaos_core::eval::{evaluate, fault_sweep, EvalConfig};
use chaos_core::models::{FitOptions, FittedModel};
use chaos_core::robust::RobustConfig;
use chaos_core::selection::{select_features, SelectionConfig};
use chaos_core::sweep::sweep_grid;
use chaos_core::{ExecPolicy, FeatureSpec, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog, FaultPlan, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};

const PAR: ExecPolicy = ExecPolicy::Parallel { threads: 4 };

fn setup(runs: u64) -> (Vec<RunTrace>, Cluster, CounterCatalog) {
    let cluster = Cluster::homogeneous(Platform::Core2, 3, 4);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let traces = (0..runs)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                Workload::Prime,
                &SimConfig::quick(),
                900 + r,
            )
            .unwrap()
        })
        .collect();
    (traces, cluster, catalog)
}

#[test]
fn evaluation_folds_are_policy_invariant() {
    let (traces, cluster, catalog) = setup(3);
    let spec = FeatureSpec::general(&catalog);
    for technique in [ModelTechnique::Linear, ModelTechnique::PiecewiseLinear] {
        let serial = evaluate(&traces, &cluster, &spec, technique, &EvalConfig::fast()).unwrap();
        let parallel = evaluate(
            &traces,
            &cluster,
            &spec,
            technique,
            &EvalConfig::fast().with_exec(PAR),
        )
        .unwrap();
        // DRE, rMSE, and every other fold metric must match bit for bit.
        assert_eq!(serial, parallel, "{technique}");
    }
}

#[test]
fn fitted_model_coefficients_are_policy_invariant() {
    let (traces, _cluster, catalog) = setup(2);
    let spec = FeatureSpec::general(&catalog);
    let ds = chaos_core::dataset::pooled_dataset(&traces, &spec)
        .unwrap()
        .thinned(600);
    for technique in [ModelTechnique::PiecewiseLinear, ModelTechnique::Quadratic] {
        let serial = FittedModel::fit(technique, &ds.x, &ds.y, &FitOptions::fast()).unwrap();
        let parallel =
            FittedModel::fit(technique, &ds.x, &ds.y, &FitOptions::fast().with_exec(PAR)).unwrap();
        // The serialized form exposes every coefficient, knot, and clamp.
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "{technique}"
        );
    }
}

#[test]
fn feature_selection_is_policy_invariant() {
    let (traces, _cluster, catalog) = setup(2);
    let serial = select_features(&traces, &catalog, &SelectionConfig::default()).unwrap();
    let parallel = select_features(
        &traces,
        &catalog,
        &SelectionConfig {
            exec: PAR,
            ..SelectionConfig::default()
        },
    )
    .unwrap();
    assert_eq!(serial.selected, parallel.selected);
    assert_eq!(serial.threshold, parallel.threshold);
    assert_eq!(serial.models_built, parallel.models_built);
    // Histogram weights are f64 sums — still bit-identical because the
    // combo contributions accumulate in a fixed order.
    assert_eq!(
        serde_json::to_string(&serial.histogram).unwrap(),
        serde_json::to_string(&parallel.histogram).unwrap()
    );
}

#[test]
fn sweep_grid_is_policy_invariant() {
    let (traces, cluster, catalog) = setup(2);
    let sets = vec![
        ("U".to_string(), FeatureSpec::cpu_only(&catalog)),
        ("G".to_string(), FeatureSpec::general(&catalog)),
    ];
    let serial = sweep_grid(
        &traces,
        &cluster,
        &sets,
        &ModelTechnique::ALL,
        &EvalConfig::fast(),
    )
    .unwrap();
    let parallel = sweep_grid(
        &traces,
        &cluster,
        &sets,
        &ModelTechnique::ALL,
        &EvalConfig::fast().with_exec(PAR),
    )
    .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn observability_full_is_bit_identical_to_off() {
    let (traces, cluster, catalog) = setup(2);
    let spec = FeatureSpec::general(&catalog);

    chaos_obs::set_level(chaos_obs::ObsLevel::Off);
    let selection_off = select_features(&traces, &catalog, &SelectionConfig::default()).unwrap();
    let eval_off = evaluate(
        &traces,
        &cluster,
        &spec,
        ModelTechnique::PiecewiseLinear,
        &EvalConfig::fast().with_exec(PAR),
    )
    .unwrap();

    // No sink is installed here, so Full only exercises the counter,
    // histogram, and span paths — exactly what the pipeline hits.
    chaos_obs::set_level(chaos_obs::ObsLevel::Full);
    let selection_full = select_features(&traces, &catalog, &SelectionConfig::default()).unwrap();
    let eval_full = evaluate(
        &traces,
        &cluster,
        &spec,
        ModelTechnique::PiecewiseLinear,
        &EvalConfig::fast().with_exec(PAR),
    )
    .unwrap();
    chaos_obs::set_level(chaos_obs::ObsLevel::Off);

    assert_eq!(
        serde_json::to_string(&selection_off).unwrap(),
        serde_json::to_string(&selection_full).unwrap()
    );
    assert_eq!(eval_off, eval_full);
    // And the Full run really did record: the side channel exists, it
    // just cannot touch the results.
    assert!(chaos_obs::counters()
        .iter()
        .any(|(name, v)| name == "selection.models_built" && *v > 0));
    assert!(chaos_obs::histograms()
        .iter()
        .any(|(name, _)| name == "span.selection.total"));
}

/// Regression for the `tier_counts` map: it feeds metrics emission and
/// user-facing reports, so its iteration order must be byte-stable. It
/// is a `BTreeMap` ordered by tier; serializing the same cluster
/// estimate twice — and across execution policies — must produce
/// identical bytes. (With a `HashMap` this flaked across processes via
/// `RandomState`.)
#[test]
fn tier_counts_report_is_byte_stable() {
    use chaos_core::robust::{strawman_position, RobustEstimator};

    let (traces, cluster, catalog) = setup(2);
    let spec = FeatureSpec::general(&catalog);
    let config = RobustConfig::fast();
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let estimator = RobustEstimator::fit(
        &traces,
        &spec,
        strawman_position(&spec, &catalog),
        idle,
        config,
    )
    .unwrap();
    // Fault the live run so several tiers answer and the map holds more
    // than one entry — a single-entry map can never expose order bugs.
    let live = FaultPlan::new(42).with_counter_dropout(0.2).apply(
        &collect_run(
            &cluster,
            &catalog,
            Workload::Prime,
            &SimConfig::quick(),
            1234,
        )
        .unwrap(),
    );

    let render = |est: &chaos_core::robust::ClusterEstimate| {
        let mut out = String::new();
        for (tier, count) in &est.tier_counts {
            out.push_str(&format!("{}={count};", tier.label()));
        }
        out.push_str(&format!("{:?}", est.tier_counts));
        out
    };

    let serial = estimator.estimate_cluster(&live);
    assert!(
        serial.tier_counts.len() > 1,
        "fixture must exercise several tiers: {:?}",
        serial.tier_counts
    );
    // Same estimate rendered twice: identical bytes.
    assert_eq!(render(&serial).into_bytes(), render(&serial).into_bytes());
    // Re-estimated from scratch: identical bytes.
    assert_eq!(
        render(&serial).into_bytes(),
        render(&estimator.estimate_cluster(&live)).into_bytes()
    );
    // And across execution policies.
    let par_estimator = RobustEstimator::fit(
        &traces,
        &spec,
        strawman_position(&spec, &catalog),
        idle,
        RobustConfig {
            exec: PAR,
            ..RobustConfig::fast()
        },
    )
    .unwrap();
    let parallel = par_estimator.estimate_cluster(&live);
    assert_eq!(render(&serial).into_bytes(), render(&parallel).into_bytes());
}

#[test]
fn fault_sweep_is_policy_invariant() {
    let (traces, cluster, catalog) = setup(2);
    let spec = FeatureSpec::general(&catalog);
    let base = FaultPlan::new(77);
    let rates = [0.0, 0.1, 0.3];
    let serial = fault_sweep(
        &traces[..1],
        &traces[1..],
        &cluster,
        &spec,
        &base,
        &rates,
        &RobustConfig::fast(),
    )
    .unwrap();
    let parallel = fault_sweep(
        &traces[..1],
        &traces[1..],
        &cluster,
        &spec,
        &base,
        &rates,
        &RobustConfig {
            exec: PAR,
            ..RobustConfig::fast()
        },
    )
    .unwrap();
    assert_eq!(serial, parallel);
}
