//! Regression suite for the decimated fault sweep's window-boundary
//! semantics.
//!
//! The bug class this pins: when a `ValidityMask` dropout lands
//! *exactly on* a decimation window edge (t = k·interval), a sloppy
//! windowing implementation — inclusive `[start, start+interval]`
//! ranges, or overlap between consecutive windows — attributes the edge
//! sample to two windows, shifting two window means at once (or, once
//! invalidated, silently changing a window it should never have touched).
//! `RunTrace::decimated` uses disjoint `[start, min(start+interval, n))`
//! windows, so every source sample belongs to exactly one decimated
//! sample; these tests fail loudly if that ever regresses, and pin the
//! `fault_sweep_decimated` evaluation path built on top of it.

use chaos_core::eval::{fault_sweep, fault_sweep_decimated};
use chaos_core::robust::RobustConfig;
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, CounterCatalog, FaultPlan, ValidityMask};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};

const INTERVAL: usize = 5;

/// A boundary dropout must change only the window it falls in.
///
/// Counter 0 is overwritten with its own timestamp so window means are
/// exact small integers, then the sample at `t = INTERVAL` — the first
/// second of window 1, i.e. exactly on the decimation edge — is
/// invalidated the way a fault-plan dropout does it (NaN + mask).
#[test]
fn dropout_on_window_edge_is_counted_once() {
    let cluster = Cluster::homogeneous(Platform::Atom, 1, 3);
    let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
    let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 61).unwrap();
    let mut faulted = run.clone();
    {
        let m = &mut faulted.machines[0];
        let (secs, width) = (m.seconds(), m.width());
        assert!(secs >= 2 * INTERVAL, "need two full windows, got {secs}");
        for t in 0..secs {
            m.counters[t][0] = t as f64;
        }
        let mut mask = ValidityMask::all_valid(secs, width);
        // The dropout: exactly on the edge between window 0 and window 1.
        m.counters[INTERVAL][0] = f64::NAN;
        mask.counters[INTERVAL][0] = false;
        m.validity = mask;
    }

    let dec = faulted.decimated(INTERVAL).unwrap();
    let m = &dec.machines[0];

    // Window 0 covers t = 0..4 and must be untouched by the edge
    // dropout: mean(0,1,2,3,4) = 2 exactly.
    assert_eq!(m.counters[0][0], 2.0, "window 0 shifted by an edge fault");
    assert!(m.counter_ok(0, 0));

    // Window 1 covers t = 5..9 with t = 5 invalid: mean(6,7,8,9) = 7.5.
    assert_eq!(m.counters[1][0], 7.5, "window 1 mean wrong");
    assert!(m.counter_ok(1, 0), "3 of 5 samples valid, window stays ok");

    // Conservation: every valid source sample is attributed to exactly
    // one window, so Σ window_mean · n_valid reconstructs the source sum.
    let source = &faulted.machines[0];
    let secs = source.seconds();
    let mut reconstructed = 0.0;
    for (w, row) in m.counters.iter().enumerate() {
        let lo = w * INTERVAL;
        let hi = (lo + INTERVAL).min(secs);
        let valid = (lo..hi).filter(|&t| source.counter_ok(t, 0)).count();
        if valid > 0 {
            reconstructed += row[0] * valid as f64;
        }
    }
    let direct: f64 = (0..secs)
        .filter(|&t| source.counter_ok(t, 0))
        .map(|t| source.counters[t][0])
        .sum();
    assert!(
        (reconstructed - direct).abs() < 1e-9,
        "sample attributed to zero or two windows: {reconstructed} vs {direct}"
    );
}

/// A fully dead window (every sample invalid) must produce one NaN
/// invalid decimated sample — not leak into a neighbor.
#[test]
fn fully_dropped_window_stays_contained() {
    let cluster = Cluster::homogeneous(Platform::Atom, 1, 3);
    let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
    let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 62).unwrap();
    let mut faulted = run.clone();
    {
        let m = &mut faulted.machines[0];
        let (secs, width) = (m.seconds(), m.width());
        assert!(secs >= 3 * INTERVAL);
        for t in 0..secs {
            m.counters[t][0] = 1.0;
        }
        let mut mask = ValidityMask::all_valid(secs, width);
        for t in INTERVAL..2 * INTERVAL {
            m.counters[t][0] = f64::NAN;
            mask.counters[t][0] = false;
        }
        m.validity = mask;
    }
    let dec = faulted.decimated(INTERVAL).unwrap();
    let m = &dec.machines[0];
    assert_eq!(m.counters[0][0], 1.0);
    assert!(
        m.counters[1][0].is_nan(),
        "dead window must decimate to NaN"
    );
    assert!(!m.counter_ok(1, 0), "dead window must be masked invalid");
    assert_eq!(m.counters[2][0], 1.0, "neighbor window contaminated");
    assert!(m.counter_ok(2, 0));
}

fn sweep_fixture() -> (Vec<chaos_counters::RunTrace>, Cluster, CounterCatalog) {
    let cluster = Cluster::homogeneous(Platform::Core2, 2, 8);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let traces = (0..2)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                Workload::Prime,
                &SimConfig::quick(),
                450 + r,
            )
            .unwrap()
        })
        .collect();
    (traces, cluster, catalog)
}

/// With `interval_s == 1` decimation is the identity, so the decimated
/// sweep must be bit-identical to the plain sweep.
#[test]
fn decimated_sweep_at_interval_one_matches_fault_sweep() {
    let (traces, cluster, catalog) = sweep_fixture();
    let spec = FeatureSpec::general(&catalog);
    let base = FaultPlan::new(9);
    let rates = [0.0, 0.15];
    let plain = fault_sweep(
        &traces[..1],
        &traces[1..],
        &cluster,
        &spec,
        &base,
        &rates,
        &RobustConfig::fast(),
    )
    .unwrap();
    let decimated = fault_sweep_decimated(
        &traces[..1],
        &traces[1..],
        &cluster,
        &spec,
        &base,
        &rates,
        1,
        &RobustConfig::fast(),
    )
    .unwrap();
    assert_eq!(plain, decimated);
}

/// End-to-end: a coarser interval still yields finite, sane outcomes at
/// every fault rate, and interval 0 is rejected.
#[test]
fn decimated_sweep_handles_coarse_intervals_and_rejects_zero() {
    let (traces, cluster, catalog) = sweep_fixture();
    let spec = FeatureSpec::general(&catalog);
    let base = FaultPlan::new(9);
    let out = fault_sweep_decimated(
        &traces[..1],
        &traces[1..],
        &cluster,
        &spec,
        &base,
        &[0.0, 0.2],
        INTERVAL,
        &RobustConfig::fast(),
    )
    .unwrap();
    assert_eq!(out.len(), 2);
    for o in &out {
        assert!(o.robust_dre.is_finite(), "rate {}: DRE", o.fault_rate);
        assert!(o.robust_rmse.is_finite(), "rate {}: rMSE", o.fault_rate);
        assert!(o.coverage > 0.0, "rate {}: coverage", o.fault_rate);
    }
    assert!(fault_sweep_decimated(
        &traces[..1],
        &traces[1..],
        &cluster,
        &spec,
        &base,
        &[0.0],
        0,
        &RobustConfig::fast(),
    )
    .is_err());
}
