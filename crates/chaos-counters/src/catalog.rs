//! The per-platform counter catalog: ~250 candidate counters in the
//! paper's eight categories.

use chaos_sim::PlatformSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Counter categories, matching Table II's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterCategory {
    /// Network interface counters.
    Network,
    /// Memory manager counters.
    Memory,
    /// Physical disk counters.
    PhysicalDisk,
    /// Per-process rollup counters (the `_Total` instance).
    Process,
    /// Processor counters.
    Processor,
    /// File-system cache counters.
    FileSystemCache,
    /// Job object details counters.
    JobObjectDetails,
    /// Processor performance (frequency) counters.
    ProcessorPerformance,
    /// System-wide counters (context switches, queue lengths, …).
    System,
}

impl CounterCategory {
    /// Short label used in figure output (Fig. 2's category legend).
    pub fn label(self) -> &'static str {
        match self {
            CounterCategory::Network => "Network",
            CounterCategory::Memory => "Memory",
            CounterCategory::PhysicalDisk => "PhysicalDisk",
            CounterCategory::Process => "Process",
            CounterCategory::Processor => "Processor",
            CounterCategory::FileSystemCache => "FSCache",
            CounterCategory::JobObjectDetails => "JOD",
            CounterCategory::ProcessorPerformance => "ProcPerf",
            CounterCategory::System => "System",
        }
    }
}

impl fmt::Display for CounterCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Semantic sources a signal counter can read from the hidden machine
/// state. The synthesizer maps each to a value every second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names mirror the Windows counter names
pub enum SignalSource {
    CpuUtilPct,
    CpuUserPct,
    CpuPrivilegedPct,
    CpuIdlePct,
    CpuInterruptsPerSec,
    CpuDpcPct,
    CoreFreqMhz(usize),
    CoreFreqPctMax(usize),
    DiskBytesPerSec,
    DiskReadBytesPerSec,
    DiskWriteBytesPerSec,
    DiskTimePct,
    DiskIdlePct,
    DiskReadsPerSec,
    DiskWritesPerSec,
    DiskQueueLength,
    NetDatagramsPerSec,
    NetBytesTotalPerSec,
    NetBytesSentPerSec,
    NetBytesRecvPerSec,
    NetPacketsPerSec,
    NetOutputQueueLength,
    PagesPerSec,
    PageFaultsPerSec,
    CacheFaultsPerSec,
    PageReadsPerSec,
    PageWritesPerSec,
    CommittedBytes,
    PoolNonpagedAllocs,
    AvailableBytes,
    TransitionFaultsPerSec,
    DemandZeroFaultsPerSec,
    ProcTotalPageFaultsPerSec,
    ProcIoDataBytesPerSec,
    ProcThreadCount,
    ProcHandleCount,
    ProcWorkingSet,
    FscDataMapPinsPerSec,
    FscPinReadsPerSec,
    FscPinReadHitsPct,
    FscCopyReadsPerSec,
    FscFastReadsNotPossiblePerSec,
    FscLazyWriteFlushesPerSec,
    FscDataMapsPerSec,
    FscReadAheadsPerSec,
    FscDirtyPages,
    FscLazyWritePagesPerSec,
    JodPageFileBytesPeak,
    JodPageFileBytes,
    JodVirtualBytes,
    JodWorkingSetPeak,
    SysContextSwitchesPerSec,
    SysSystemCallsPerSec,
    SysProcesses,
    SysThreads,
    SysProcessorQueueLength,
}

/// How a counter's value is produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CounterKind {
    /// A genuine observation of machine state, with multiplicative
    /// observation noise (`noise_frac` of the reading).
    Signal {
        /// What the counter observes.
        source: SignalSource,
        /// Relative per-sample observation noise.
        noise_frac: f64,
    },
    /// An alias of another counter: `gain · base + small noise`. With
    /// small `noise_frac` its correlation with the base exceeds 0.95 —
    /// the redundancy Algorithm 1 step 1 removes.
    Correlated {
        /// Index of the base counter in the catalog.
        base: usize,
        /// Multiplicative gain.
        gain: f64,
        /// Relative noise; small values keep |r| > 0.95.
        noise_frac: f64,
    },
    /// Exactly the sum of two other counters (`a = b + c`) — the
    /// co-dependence Algorithm 1 step 2 removes by definition inspection.
    Sum {
        /// First addend's catalog index.
        a: usize,
        /// Second addend's catalog index.
        b: usize,
    },
    /// Carries no information about machine state: either i.i.d. noise or
    /// a bounded random walk. The L1 regularization's prey.
    Noise {
        /// Value scale.
        scale: f64,
        /// Random walk (true) or i.i.d. (false).
        walk: bool,
    },
}

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterDef {
    /// Windows-style counter path, e.g. `Memory\Pages/sec`.
    pub name: String,
    /// Category (Table II grouping).
    pub category: CounterCategory,
    /// Value generator.
    pub kind: CounterKind,
}

/// A platform's counter catalog.
///
/// Core-count-dependent counters (per-core frequencies) make the catalog
/// per-platform, exactly as on real hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterCatalog {
    defs: Vec<CounterDef>,
}

impl CounterCatalog {
    /// Builds the standard ~250-counter catalog for a platform.
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        let mut b = Builder::default();
        use CounterCategory as C;
        use SignalSource as S;

        // --- Processor ------------------------------------------------
        let cpu_util = b.signal(
            "Processor\\% Processor Time (_Total)",
            C::Processor,
            S::CpuUtilPct,
            0.01,
        );
        b.signal(
            "Processor\\% User Time (_Total)",
            C::Processor,
            S::CpuUserPct,
            0.05,
        );
        b.signal(
            "Processor\\% Privileged Time (_Total)",
            C::Processor,
            S::CpuPrivilegedPct,
            0.05,
        );
        b.signal(
            "Processor\\% Idle Time (_Total)",
            C::Processor,
            S::CpuIdlePct,
            0.02,
        );
        let interrupts = b.signal(
            "Processor\\Interrupts/sec (_Total)",
            C::Processor,
            S::CpuInterruptsPerSec,
            0.05,
        );
        b.signal(
            "Processor\\% DPC Time (_Total)",
            C::Processor,
            S::CpuDpcPct,
            0.06,
        );
        // Aliases (correlated > 0.95 with the base).
        b.correlated(
            "Processor\\% Processor Utility (_Total)",
            C::Processor,
            cpu_util,
            1.02,
            0.01,
        );
        b.correlated(
            "Processor Information\\% Processor Time (_Total)",
            C::Processor,
            cpu_util,
            1.0,
            0.005,
        );
        b.correlated(
            "Processor\\DPCs Queued/sec (_Total)",
            C::Processor,
            interrupts,
            0.3,
            0.03,
        );

        // --- Processor performance (per-core frequency) ----------------
        for core in 0..spec.cores {
            let f = b.signal(
                format!("Processor Performance\\Processor Frequency (Processor_{core})"),
                C::ProcessorPerformance,
                S::CoreFreqMhz(core),
                0.002,
            );
            if core == 0 {
                b.correlated(
                    "Processor Performance\\% of Maximum Frequency (Processor_0)",
                    C::ProcessorPerformance,
                    f,
                    100.0 / spec.max_pstate().freq_mhz,
                    0.005,
                );
            }
        }

        // --- Physical disk ---------------------------------------------
        let disk_read = b.signal(
            "PhysicalDisk\\Disk Read Bytes/sec (_Total)",
            C::PhysicalDisk,
            S::DiskReadBytesPerSec,
            0.04,
        );
        let disk_write = b.signal(
            "PhysicalDisk\\Disk Write Bytes/sec (_Total)",
            C::PhysicalDisk,
            S::DiskWriteBytesPerSec,
            0.04,
        );
        b.sum(
            "PhysicalDisk\\Disk Total Disk Bytes/sec (_Total)",
            C::PhysicalDisk,
            disk_read,
            disk_write,
        );
        let disk_time = b.signal(
            "PhysicalDisk\\Disk Total Disk Time % (_Total)",
            C::PhysicalDisk,
            S::DiskTimePct,
            0.03,
        );
        b.signal(
            "PhysicalDisk\\% Idle Time (_Total)",
            C::PhysicalDisk,
            S::DiskIdlePct,
            0.03,
        );
        let disk_reads = b.signal(
            "PhysicalDisk\\Disk Reads/sec (_Total)",
            C::PhysicalDisk,
            S::DiskReadsPerSec,
            0.05,
        );
        let disk_writes = b.signal(
            "PhysicalDisk\\Disk Writes/sec (_Total)",
            C::PhysicalDisk,
            S::DiskWritesPerSec,
            0.05,
        );
        b.sum(
            "PhysicalDisk\\Disk Transfers/sec (_Total)",
            C::PhysicalDisk,
            disk_reads,
            disk_writes,
        );
        b.signal(
            "PhysicalDisk\\Avg. Disk Queue Length (_Total)",
            C::PhysicalDisk,
            S::DiskQueueLength,
            0.08,
        );
        b.correlated(
            "PhysicalDisk\\% Disk Read Time (_Total)",
            C::PhysicalDisk,
            disk_time,
            0.6,
            0.04,
        );
        b.correlated(
            "PhysicalDisk\\% Disk Write Time (_Total)",
            C::PhysicalDisk,
            disk_time,
            0.45,
            0.04,
        );
        b.correlated(
            "LogicalDisk\\Disk Bytes/sec (_Total)",
            C::PhysicalDisk,
            disk_read,
            1.8,
            0.02,
        );

        // --- Network ----------------------------------------------------
        let net_sent = b.signal(
            "Network Interface\\Bytes Sent/sec",
            C::Network,
            S::NetBytesSentPerSec,
            0.04,
        );
        let net_recv = b.signal(
            "Network Interface\\Bytes Received/sec",
            C::Network,
            S::NetBytesRecvPerSec,
            0.04,
        );
        b.sum(
            "Network Interface\\Bytes Total/sec",
            C::Network,
            net_sent,
            net_recv,
        );
        let datagrams = b.signal(
            "UDPv4\\Datagrams/sec",
            C::Network,
            S::NetDatagramsPerSec,
            0.05,
        );
        let packets = b.signal(
            "Network Interface\\Packets/sec",
            C::Network,
            S::NetPacketsPerSec,
            0.04,
        );
        b.signal(
            "Network Interface\\Output Queue Length",
            C::Network,
            S::NetOutputQueueLength,
            0.10,
        );
        b.correlated("TCPv4\\Segments/sec", C::Network, packets, 0.85, 0.02);
        b.correlated("IPv4\\Datagrams/sec", C::Network, datagrams, 1.05, 0.01);
        b.correlated(
            "Network Interface\\Packets Sent/sec",
            C::Network,
            net_sent,
            0.0007,
            0.02,
        );
        b.correlated(
            "Network Interface\\Packets Received/sec",
            C::Network,
            net_recv,
            0.0007,
            0.02,
        );

        // --- Memory -----------------------------------------------------
        b.signal("Memory\\Pages/sec", C::Memory, S::PagesPerSec, 0.05);
        let page_faults = b.signal(
            "Memory\\Page Faults/sec",
            C::Memory,
            S::PageFaultsPerSec,
            0.05,
        );
        let cache_faults = b.signal(
            "Memory\\Cache Faults/sec",
            C::Memory,
            S::CacheFaultsPerSec,
            0.05,
        );
        let page_reads = b.signal(
            "Memory\\Page Reads/sec",
            C::Memory,
            S::PageReadsPerSec,
            0.06,
        );
        let page_writes = b.signal(
            "Memory\\Page Writes/sec",
            C::Memory,
            S::PageWritesPerSec,
            0.06,
        );
        b.signal(
            "Memory\\Committed Bytes",
            C::Memory,
            S::CommittedBytes,
            0.01,
        );
        b.signal(
            "Memory\\Pool Nonpaged Allocs",
            C::Memory,
            S::PoolNonpagedAllocs,
            0.03,
        );
        b.signal(
            "Memory\\Available Bytes",
            C::Memory,
            S::AvailableBytes,
            0.01,
        );
        b.signal(
            "Memory\\Transition Faults/sec",
            C::Memory,
            S::TransitionFaultsPerSec,
            0.06,
        );
        b.signal(
            "Memory\\Demand Zero Faults/sec",
            C::Memory,
            S::DemandZeroFaultsPerSec,
            0.06,
        );
        b.sum(
            "Memory\\Pages Input+Output/sec",
            C::Memory,
            page_reads,
            page_writes,
        );
        b.correlated("Memory\\Pages Input/sec", C::Memory, page_reads, 3.8, 0.03);
        b.correlated(
            "Memory\\Pages Output/sec",
            C::Memory,
            page_writes,
            3.8,
            0.03,
        );
        b.correlated("Memory\\Cache Bytes", C::Memory, cache_faults, 2e4, 0.03);
        b.correlated(
            "Memory\\Pool Paged Allocs",
            C::Memory,
            page_faults,
            0.15,
            0.04,
        );

        // --- Process (_Total) --------------------------------------------
        let proc_pf = b.signal(
            "Process\\Total Page Faults/sec (_Total)",
            C::Process,
            S::ProcTotalPageFaultsPerSec,
            0.05,
        );
        let proc_io = b.signal(
            "Process\\Total IO Data Bytes/sec (_Total)",
            C::Process,
            S::ProcIoDataBytesPerSec,
            0.04,
        );
        b.signal(
            "Process\\Thread Count (_Total)",
            C::Process,
            S::ProcThreadCount,
            0.08,
        );
        b.signal(
            "Process\\Handle Count (_Total)",
            C::Process,
            S::ProcHandleCount,
            0.10,
        );
        b.signal(
            "Process\\Working Set (_Total)",
            C::Process,
            S::ProcWorkingSet,
            0.01,
        );
        b.correlated(
            "Process\\IO Other Bytes/sec (_Total)",
            C::Process,
            proc_io,
            0.12,
            0.05,
        );
        b.correlated(
            "Process\\Private Bytes (_Total)",
            C::Process,
            proc_pf,
            5e4,
            0.04,
        );

        // --- File system cache -------------------------------------------
        let pin_reads = b.signal(
            "Cache\\Pin Reads/sec",
            C::FileSystemCache,
            S::FscPinReadsPerSec,
            0.05,
        );
        let map_pins = b.signal(
            "Cache\\Data Map Pins/sec",
            C::FileSystemCache,
            S::FscDataMapPinsPerSec,
            0.05,
        );
        b.signal(
            "Cache\\Pin Read Hits %",
            C::FileSystemCache,
            S::FscPinReadHitsPct,
            0.02,
        );
        let copy_reads = b.signal(
            "Cache\\Copy Reads/sec",
            C::FileSystemCache,
            S::FscCopyReadsPerSec,
            0.05,
        );
        b.signal(
            "Cache\\Fast Reads Not Possible/sec",
            C::FileSystemCache,
            S::FscFastReadsNotPossiblePerSec,
            0.06,
        );
        let lazy_flush = b.signal(
            "Cache\\Lazy Write Flushes/sec",
            C::FileSystemCache,
            S::FscLazyWriteFlushesPerSec,
            0.06,
        );
        b.signal(
            "Cache\\Data Maps/sec",
            C::FileSystemCache,
            S::FscDataMapsPerSec,
            0.05,
        );
        b.signal(
            "Cache\\Read Aheads/sec",
            C::FileSystemCache,
            S::FscReadAheadsPerSec,
            0.06,
        );
        b.signal(
            "Cache\\Dirty Pages",
            C::FileSystemCache,
            S::FscDirtyPages,
            0.05,
        );
        b.signal(
            "Cache\\Lazy Write Pages/sec",
            C::FileSystemCache,
            S::FscLazyWritePagesPerSec,
            0.06,
        );
        b.correlated(
            "Cache\\Copy Read Hits %",
            C::FileSystemCache,
            copy_reads,
            0.002,
            0.05,
        );
        b.correlated(
            "Cache\\MDL Reads/sec",
            C::FileSystemCache,
            map_pins,
            0.4,
            0.04,
        );
        b.correlated(
            "Cache\\Lazy Write Flushes (alias)/sec",
            C::FileSystemCache,
            lazy_flush,
            1.0,
            0.01,
        );
        b.correlated(
            "Cache\\Sync Pin Reads/sec",
            C::FileSystemCache,
            pin_reads,
            0.9,
            0.02,
        );

        // --- Job object details ------------------------------------------
        b.signal(
            "Job Object Details\\Total Page File Bytes Peak",
            C::JobObjectDetails,
            S::JodPageFileBytesPeak,
            0.005,
        );
        let jod_pf = b.signal(
            "Job Object Details\\Total Page File Bytes",
            C::JobObjectDetails,
            S::JodPageFileBytes,
            0.01,
        );
        b.signal(
            "Job Object Details\\Total Virtual Bytes",
            C::JobObjectDetails,
            S::JodVirtualBytes,
            0.01,
        );
        b.signal(
            "Job Object Details\\Total Working Set Peak",
            C::JobObjectDetails,
            S::JodWorkingSetPeak,
            0.005,
        );
        b.correlated(
            "Job Object Details\\Total Pool Nonpaged Bytes",
            C::JobObjectDetails,
            jod_pf,
            0.001,
            0.03,
        );

        // --- System -------------------------------------------------------
        let ctx = b.signal(
            "System\\Context Switches/sec",
            C::System,
            S::SysContextSwitchesPerSec,
            0.12,
        );
        b.signal(
            "System\\System Calls/sec",
            C::System,
            S::SysSystemCallsPerSec,
            0.05,
        );
        b.signal("System\\Processes", C::System, S::SysProcesses, 0.06);
        b.signal("System\\Threads", C::System, S::SysThreads, 0.10);
        b.signal(
            "System\\Processor Queue Length",
            C::System,
            S::SysProcessorQueueLength,
            0.10,
        );
        b.correlated(
            "System\\File Control Operations/sec",
            C::System,
            ctx,
            0.08,
            0.05,
        );

        // --- Filler: the long tail of counters that carry nothing ---------
        // Real Perfmon exposes thousands of counters that never move or
        // move with no relation to power. They exercise the L1 step.
        let noise_names: &[(&str, CounterCategory, f64, bool)] = &[
            ("Memory\\System Code Total Bytes", C::Memory, 2e6, true),
            ("Memory\\System Driver Total Bytes", C::Memory, 4e6, true),
            (
                "Memory\\Free System Page Table Entries",
                C::Memory,
                3e5,
                true,
            ),
            ("Objects\\Events", C::System, 4e3, true),
            ("Objects\\Mutexes", C::System, 1e3, true),
            ("Objects\\Sections", C::System, 3e3, true),
            ("Objects\\Semaphores", C::System, 2e3, true),
            ("Server\\Sessions", C::System, 12.0, true),
            ("Server\\Files Open", C::System, 30.0, true),
            ("Print Queue\\Jobs", C::System, 0.5, false),
            ("Telephony\\Lines", C::System, 1.0, false),
            ("Paging File\\% Usage Peak", C::Memory, 4.0, true),
            ("Browser\\Announcements Total/sec", C::Network, 2.0, false),
            ("Redirector\\Bytes Total/sec", C::Network, 1e4, false),
            ("NBT Connection\\Bytes Total/sec", C::Network, 5e3, false),
            ("WMI Objects\\HiPerf Classes", C::System, 20.0, true),
            (
                "Security System-Wide Statistics\\KDC AS Requests",
                C::System,
                3.0,
                false,
            ),
            (
                "Distributed Transaction Coordinator\\Active Transactions",
                C::System,
                2.0,
                false,
            ),
            (
                "Event Tracing for Windows\\Total Number of Active Sessions",
                C::System,
                8.0,
                true,
            ),
            ("Terminal Services\\Active Sessions", C::System, 1.0, true),
        ];
        for (name, cat, scale, walk) in noise_names {
            b.noise(*name, *cat, *scale, *walk);
        }
        // Numbered filler to reach the paper's ~250 candidates.
        let mut i = 0;
        while b.defs.len() < 250 {
            let cat = [
                C::Memory,
                C::Process,
                C::System,
                C::Network,
                C::PhysicalDisk,
                C::FileSystemCache,
            ][i % 6];
            b.noise(
                format!("{}\\Vendor Extension Counter #{i}", cat.label()),
                cat,
                10.0 * (1 + i % 17) as f64,
                i % 3 == 0,
            );
            i += 1;
        }

        CounterCatalog { defs: b.defs }
    }

    /// All counter definitions, index-aligned with synthesized rows.
    pub fn defs(&self) -> &[CounterDef] {
        &self.defs
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the catalog is empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definition at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn def(&self, idx: usize) -> &CounterDef {
        &self.defs[idx]
    }

    /// Finds a counter index by exact name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.defs.iter().position(|d| d.name == name)
    }

    /// Indices of all counters in a category.
    pub fn in_category(&self, category: CounterCategory) -> Vec<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.category == category)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of counters that are *definitionally* sums of other
    /// counters (`a = b + c`) — what Algorithm 1 step 2 removes by
    /// inspecting counter definitions.
    pub fn codependent_sums(&self) -> Vec<(usize, usize, usize)> {
        self.defs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| match d.kind {
                CounterKind::Sum { a, b } => Some((i, a, b)),
                _ => None,
            })
            .collect()
    }
}

#[derive(Default)]
struct Builder {
    defs: Vec<CounterDef>,
}

impl Builder {
    fn push(&mut self, def: CounterDef) -> usize {
        self.defs.push(def);
        self.defs.len() - 1
    }

    fn signal(
        &mut self,
        name: impl Into<String>,
        category: CounterCategory,
        source: SignalSource,
        noise_frac: f64,
    ) -> usize {
        self.push(CounterDef {
            name: name.into(),
            category,
            kind: CounterKind::Signal { source, noise_frac },
        })
    }

    fn correlated(
        &mut self,
        name: impl Into<String>,
        category: CounterCategory,
        base: usize,
        gain: f64,
        noise_frac: f64,
    ) -> usize {
        self.push(CounterDef {
            name: name.into(),
            category,
            kind: CounterKind::Correlated {
                base,
                gain,
                noise_frac,
            },
        })
    }

    fn sum(
        &mut self,
        name: impl Into<String>,
        category: CounterCategory,
        a: usize,
        b: usize,
    ) -> usize {
        self.push(CounterDef {
            name: name.into(),
            category,
            kind: CounterKind::Sum { a, b },
        })
    }

    fn noise(
        &mut self,
        name: impl Into<String>,
        category: CounterCategory,
        scale: f64,
        walk: bool,
    ) -> usize {
        self.push(CounterDef {
            name: name.into(),
            category,
            kind: CounterKind::Noise { scale, walk },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_sim::Platform;

    #[test]
    fn catalog_has_about_250_counters() {
        for p in Platform::ALL {
            let c = CounterCatalog::for_platform(&p.spec());
            assert!(c.len() >= 240 && c.len() <= 260, "{p}: {}", c.len());
        }
    }

    #[test]
    fn per_core_frequency_counters_match_core_count() {
        let atom = CounterCatalog::for_platform(&Platform::Atom.spec());
        let xeon = CounterCatalog::for_platform(&Platform::XeonSas.spec());
        let count = |c: &CounterCatalog| {
            c.defs()
                .iter()
                .filter(|d| {
                    matches!(
                        d.kind,
                        CounterKind::Signal {
                            source: SignalSource::CoreFreqMhz(_),
                            ..
                        }
                    )
                })
                .count()
        };
        assert_eq!(count(&atom), 2);
        assert_eq!(count(&xeon), 8);
    }

    #[test]
    fn table_ii_counters_are_present() {
        let c = CounterCatalog::for_platform(&Platform::Opteron.spec());
        for name in [
            "UDPv4\\Datagrams/sec",
            "Memory\\Page Faults/sec",
            "Memory\\Committed Bytes",
            "Memory\\Cache Faults/sec",
            "Memory\\Pages/sec",
            "Memory\\Page Reads/sec",
            "Memory\\Pool Nonpaged Allocs",
            "PhysicalDisk\\Disk Total Disk Time % (_Total)",
            "PhysicalDisk\\Disk Total Disk Bytes/sec (_Total)",
            "Process\\Total Page Faults/sec (_Total)",
            "Process\\Total IO Data Bytes/sec (_Total)",
            "Processor\\% Processor Time (_Total)",
            "Processor\\Interrupts/sec (_Total)",
            "Processor\\% DPC Time (_Total)",
            "Cache\\Data Map Pins/sec",
            "Cache\\Pin Reads/sec",
            "Cache\\Pin Read Hits %",
            "Cache\\Copy Reads/sec",
            "Cache\\Fast Reads Not Possible/sec",
            "Cache\\Lazy Write Flushes/sec",
            "Job Object Details\\Total Page File Bytes Peak",
            "Processor Performance\\Processor Frequency (Processor_0)",
        ] {
            assert!(c.index_of(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn counter_names_are_unique() {
        let c = CounterCatalog::for_platform(&Platform::Core2.spec());
        let mut names: Vec<&str> = c.defs().iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate counter names");
    }

    #[test]
    fn references_point_backwards() {
        // Correlated/Sum kinds must reference already-defined counters so
        // single-pass synthesis works.
        let c = CounterCatalog::for_platform(&Platform::XeonSata.spec());
        for (i, d) in c.defs().iter().enumerate() {
            match d.kind {
                CounterKind::Correlated { base, .. } => assert!(base < i, "{}", d.name),
                CounterKind::Sum { a, b } => {
                    assert!(a < i && b < i, "{}", d.name)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn codependent_sums_exist() {
        let c = CounterCatalog::for_platform(&Platform::Atom.spec());
        let sums = c.codependent_sums();
        assert!(sums.len() >= 3, "got {}", sums.len());
        for (i, a, b) in sums {
            assert_ne!(i, a);
            assert_ne!(i, b);
        }
    }

    #[test]
    fn category_queries_work() {
        let c = CounterCatalog::for_platform(&Platform::Atom.spec());
        let mem = c.in_category(CounterCategory::Memory);
        assert!(mem.len() >= 10);
        for i in mem {
            assert_eq!(c.def(i).category, CounterCategory::Memory);
        }
        assert_eq!(CounterCategory::FileSystemCache.label(), "FSCache");
    }
}
