//! Trace collection: drive a cluster through a workload and record
//! counters + power at 1 Hz, like Perfmon logging software counters and
//! WattsUp readings side by side.

use crate::catalog::CounterCatalog;
use crate::synth::CounterSynth;
use chaos_sim::{Cluster, Platform, PowerMeter};
use chaos_workloads::{simulate, SimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One machine's recording for one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineRunTrace {
    /// Machine id within the cluster.
    pub machine_id: usize,
    /// The machine's platform (needed to look up its counter catalog in
    /// heterogeneous clusters).
    pub platform: Platform,
    /// `counters[t][c]` — counter `c` at second `t`.
    pub counters: Vec<Vec<f64>>,
    /// Metered wall power at each second (what models train against).
    pub measured_power_w: Vec<f64>,
    /// Ground-truth wall power (for diagnostics; never shown to models).
    pub true_power_w: Vec<f64>,
}

impl MachineRunTrace {
    /// Trace length in seconds.
    pub fn seconds(&self) -> usize {
        self.counters.len()
    }
}

/// A full cluster recording for one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Workload name.
    pub workload: String,
    /// The seed that drove scheduling, governor jitter, and meters.
    pub run_seed: u64,
    /// Per-machine traces, in machine-id order.
    pub machines: Vec<MachineRunTrace>,
}

impl RunTrace {
    /// Trace length in seconds (equal across machines).
    pub fn seconds(&self) -> usize {
        self.machines.first().map_or(0, MachineRunTrace::seconds)
    }

    /// Cluster-level metered power: the sum of per-machine meters, second
    /// by second (what Figure 1 plots).
    pub fn cluster_measured_power(&self) -> Vec<f64> {
        self.sum_series(|m| &m.measured_power_w)
    }

    /// Cluster-level ground-truth power.
    pub fn cluster_true_power(&self) -> Vec<f64> {
        self.sum_series(|m| &m.true_power_w)
    }

    fn sum_series<'a, F>(&'a self, f: F) -> Vec<f64>
    where
        F: Fn(&'a MachineRunTrace) -> &'a [f64],
    {
        let n = self.seconds();
        let mut out = vec![0.0; n];
        for m in &self.machines {
            for (o, v) in out.iter_mut().zip(f(m)) {
                *o += v;
            }
        }
        out
    }

    /// Returns a copy sampled every `interval_s` seconds — what a slower
    /// collector (e.g. the 10-minute intervals some prior work used)
    /// would have recorded. Rate counters in Perfmon are averages over
    /// the sampling interval, so values are window-averaged, not point
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s == 0`.
    pub fn decimated(&self, interval_s: usize) -> RunTrace {
        assert!(interval_s > 0, "interval must be positive");
        if interval_s == 1 {
            return self.clone();
        }
        let machines = self
            .machines
            .iter()
            .map(|m| {
                let n = m.seconds();
                let mut counters = Vec::new();
                let mut measured = Vec::new();
                let mut truth = Vec::new();
                let width = m.counters.first().map_or(0, Vec::len);
                let mut start = 0;
                while start < n {
                    let end = (start + interval_s).min(n);
                    let len = (end - start) as f64;
                    let mut crow = vec![0.0; width];
                    let mut pm = 0.0;
                    let mut pt = 0.0;
                    for t in start..end {
                        for (j, c) in crow.iter_mut().enumerate() {
                            *c += m.counters[t][j];
                        }
                        pm += m.measured_power_w[t];
                        pt += m.true_power_w[t];
                    }
                    for c in &mut crow {
                        *c /= len;
                    }
                    counters.push(crow);
                    measured.push(pm / len);
                    truth.push(pt / len);
                    start = end;
                }
                MachineRunTrace {
                    machine_id: m.machine_id,
                    platform: m.platform,
                    counters,
                    measured_power_w: measured,
                    true_power_w: truth,
                }
            })
            .collect();
        RunTrace {
            workload: self.workload.clone(),
            run_seed: self.run_seed,
            machines,
        }
    }
}

/// Collects one run on a **homogeneous** cluster using the supplied
/// catalog (which must match the cluster's platform).
///
/// # Panics
///
/// Panics if the cluster is heterogeneous or the catalog does not match
/// the platform's catalog; use [`collect_run_mixed`] for mixed clusters.
pub fn collect_run(
    cluster: &Cluster,
    catalog: &CounterCatalog,
    job: impl Into<chaos_workloads::scheduler::JobSource>,
    config: &SimConfig,
    seed: u64,
) -> RunTrace {
    assert!(
        cluster.is_homogeneous(),
        "collect_run requires a homogeneous cluster; use collect_run_mixed"
    );
    let platform = cluster.machines()[0].spec().platform;
    assert_eq!(
        catalog.len(),
        CounterCatalog::for_platform(&platform.spec()).len(),
        "catalog does not match cluster platform"
    );
    collect_with(cluster, job, config, seed, |p| {
        assert_eq!(p, platform);
        catalog.clone()
    })
}

/// Collects one run on any cluster, building each machine's catalog from
/// its own platform (heterogeneous clusters get per-platform catalogs, as
/// in the paper's 10-machine Core2+Opteron experiment).
pub fn collect_run_mixed(
    cluster: &Cluster,
    job: impl Into<chaos_workloads::scheduler::JobSource>,
    config: &SimConfig,
    seed: u64,
) -> RunTrace {
    collect_with(cluster, job, config, seed, |p| {
        CounterCatalog::for_platform(&p.spec())
    })
}

fn collect_with(
    cluster: &Cluster,
    job: impl Into<chaos_workloads::scheduler::JobSource>,
    config: &SimConfig,
    seed: u64,
    catalog_for: impl Fn(Platform) -> CounterCatalog,
) -> RunTrace {
    let demand_trace = simulate(cluster, job, config, seed);
    let mut machines = Vec::with_capacity(cluster.len());

    for (mi, machine) in cluster.machines().iter().enumerate() {
        let platform = machine.spec().platform;
        let catalog = catalog_for(platform);
        // Two seed families: machine-stable properties (counter
        // sensitivities, meter calibration) persist across runs; per-run
        // noise streams are fresh each run. Conflating them would create
        // spurious run-level correlations between counters and power.
        let machine_seed = cluster
            .seed()
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (mi as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let run_seed = seed ^ (mi as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut synth =
            CounterSynth::with_seeds(&catalog, machine.spec(), machine_seed, run_seed);
        let mut gov_rng = ChaCha8Rng::seed_from_u64(run_seed.wrapping_add(1));
        let mut meter_rng = ChaCha8Rng::seed_from_u64(run_seed.wrapping_add(2));
        let meter = PowerMeter::sample(&mut ChaCha8Rng::seed_from_u64(
            machine_seed.wrapping_add(3),
        ));
        // Hidden thermal drift: load-history-dependent power no counter
        // observes — the irreducible error floor of counter-based models.
        let mut thermal = chaos_sim::ThermalModel::new();
        let mut thermal_rng = ChaCha8Rng::seed_from_u64(run_seed.wrapping_add(4));

        let demands = demand_trace.machine(mi);
        let mut counters = Vec::with_capacity(demands.len());
        let mut measured = Vec::with_capacity(demands.len());
        let mut truth = Vec::with_capacity(demands.len());
        for d in demands {
            let state = machine.apply_demand(d, &mut gov_rng);
            let thermal_w = machine.dynamic_range()
                * thermal.step(state.cpu_utilization(), &mut thermal_rng);
            let p = machine.true_power(&state)
                + thermal_w
                + machine.variation().meter_offset_w;
            counters.push(synth.step(&catalog, &state));
            truth.push(p);
            measured.push(meter.read(p, &mut meter_rng));
        }
        machines.push(MachineRunTrace {
            machine_id: mi,
            platform,
            counters,
            measured_power_w: measured,
            true_power_w: truth,
        });
    }

    RunTrace {
        workload: demand_trace.workload.clone(),
        run_seed: seed,
        machines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_workloads::Workload;

    #[test]
    fn homogeneous_collection_shapes() {
        let cluster = Cluster::homogeneous(Platform::Atom, 3, 1);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::WordCount, &SimConfig::quick(), 5);
        assert_eq!(run.machines.len(), 3);
        let secs = run.seconds();
        assert!(secs > 30);
        for m in &run.machines {
            assert_eq!(m.seconds(), secs);
            assert_eq!(m.counters[0].len(), catalog.len());
            assert_eq!(m.measured_power_w.len(), secs);
            assert_eq!(m.true_power_w.len(), secs);
        }
    }

    #[test]
    fn measured_power_tracks_truth_within_meter_class() {
        let cluster = Cluster::homogeneous(Platform::Core2, 2, 2);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 9);
        for m in &run.machines {
            for (meas, truth) in m.measured_power_w.iter().zip(&m.true_power_w) {
                let rel = (meas - truth).abs() / truth;
                assert!(rel < 0.03, "relative meter error {rel}");
            }
        }
    }

    #[test]
    fn cluster_power_is_sum_of_machines() {
        let cluster = Cluster::homogeneous(Platform::Athlon, 3, 3);
        let catalog = CounterCatalog::for_platform(&Platform::Athlon.spec());
        let run = collect_run(&cluster, &catalog, Workload::WordCount, &SimConfig::quick(), 4);
        let total = run.cluster_measured_power();
        let t = run.seconds() / 2;
        let manual: f64 = run.machines.iter().map(|m| m.measured_power_w[t]).sum();
        assert!((total[t] - manual).abs() < 1e-9);
    }

    #[test]
    fn workload_power_signatures_differ() {
        // Figure 1's premise: Prime's cluster power profile differs
        // dramatically from idle-heavy WordCount bookends. Compare mean
        // power of Prime vs WordCount on the same cluster.
        let cluster = Cluster::homogeneous(Platform::Core2, 5, 1);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let cfg = SimConfig::quick();
        let prime = collect_run(&cluster, &catalog, Workload::Prime, &cfg, 11);
        let wc = collect_run(&cluster, &catalog, Workload::WordCount, &cfg, 11);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mid_mean = |v: &[f64]| {
            let (a, b) = (v.len() / 4, 3 * v.len() / 4);
            mean(&v[a..b])
        };
        // Prime saturates the CPUs through its middle phase; WordCount is
        // shorter and lighter — their mid-run power levels must differ.
        let prime_mid = mid_mean(&prime.cluster_measured_power());
        let wc_mid = mid_mean(&wc.cluster_measured_power());
        assert!(
            prime_mid > wc_mid,
            "prime mid-run {prime_mid} should exceed wordcount {wc_mid}"
        );
        assert!(mean(&prime.cluster_measured_power()) > cluster.idle_power());
    }

    #[test]
    fn mixed_collection_handles_heterogeneous_clusters() {
        let cluster = Cluster::heterogeneous(&[(Platform::Core2, 2), (Platform::Opteron, 2)], 6);
        let run = collect_run_mixed(&cluster, Workload::Sort, &SimConfig::quick(), 13);
        assert_eq!(run.machines.len(), 4);
        assert_eq!(run.machines[0].platform, Platform::Core2);
        assert_eq!(run.machines[3].platform, Platform::Opteron);
        // Each machine's rows match its own platform's catalog width, and
        // the two platforms' catalogs differ in content (per-core
        // frequency counters).
        let cat_core2 = CounterCatalog::for_platform(&Platform::Core2.spec());
        let cat_opteron = CounterCatalog::for_platform(&Platform::Opteron.spec());
        assert_eq!(run.machines[0].counters[0].len(), cat_core2.len());
        assert_eq!(run.machines[3].counters[0].len(), cat_opteron.len());
        assert_ne!(cat_core2.defs(), cat_opteron.defs());
    }

    #[test]
    #[should_panic(expected = "homogeneous")]
    fn collect_run_rejects_mixed_clusters() {
        let cluster = Cluster::heterogeneous(&[(Platform::Core2, 1), (Platform::Atom, 1)], 0);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 0);
    }

    #[test]
    fn decimation_averages_windows() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 5);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 3);
        let dec = run.decimated(5);
        assert_eq!(dec.seconds(), run.seconds().div_ceil(5));
        // The first decimated power sample is the mean of the first five.
        let m = &run.machines[0];
        let want: f64 = m.measured_power_w[..5].iter().sum::<f64>() / 5.0;
        assert!((dec.machines[0].measured_power_w[0] - want).abs() < 1e-9);
        // Counter width unchanged; energy roughly conserved.
        assert_eq!(dec.machines[0].counters[0].len(), catalog.len());
        let e_full: f64 = m.true_power_w.iter().sum();
        let e_dec: f64 = dec.machines[0].true_power_w.iter().sum::<f64>() * 5.0;
        assert!((e_full - e_dec).abs() / e_full < 0.05);
        // interval 1 is the identity.
        assert_eq!(run.decimated(1), run);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn decimation_rejects_zero() {
        let cluster = Cluster::homogeneous(Platform::Atom, 1, 5);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 3);
        run.decimated(0);
    }

    #[test]
    fn different_run_seeds_give_different_traces() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 7);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let a = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 1);
        let b = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 2);
        assert_ne!(a.machines[0].measured_power_w, b.machines[0].measured_power_w);
        // Same seed reproduces exactly.
        let c = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 1);
        assert_eq!(a, c);
    }
}
