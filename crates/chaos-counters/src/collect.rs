//! Trace collection: drive a cluster through a workload and record
//! counters + power at 1 Hz, like Perfmon logging software counters and
//! WattsUp readings side by side.
//!
//! Collection APIs return typed [`CollectError`]s instead of panicking,
//! and every [`MachineRunTrace`] carries a per-sample [`ValidityMask`] so
//! fault injection ([`crate::faults`]) and downstream estimators can tell
//! a lost sample from a real zero.

use crate::catalog::CounterCatalog;
use crate::synth::CounterSynth;
use chaos_sim::churn::{MembershipEvent, MembershipKind};
use chaos_sim::{Cluster, Platform, PowerMeter};
use chaos_workloads::{simulate, SimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from trace collection, decimation, and validation.
///
/// Real collectors lose samples, meters drop out, and serialized traces
/// arrive truncated; these conditions are data, not programming errors,
/// so the public APIs surface them as values instead of panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CollectError {
    /// [`collect_run`] was given a heterogeneous cluster; use
    /// [`collect_run_mixed`] instead.
    HeterogeneousCluster,
    /// The supplied catalog does not match the cluster's platform.
    CatalogMismatch {
        /// Counter count of the platform's own catalog.
        expected: usize,
        /// Counter count of the catalog supplied.
        got: usize,
    },
    /// [`RunTrace::decimated`] was asked for a zero-second interval.
    ZeroInterval,
    /// A trace's shape is inconsistent (per-machine lengths disagree,
    /// counter rows have mixed widths, or series lengths mismatch).
    Ragged {
        /// Human-readable description of the shape conflict.
        context: String,
    },
    /// A sample marked valid holds a non-finite value.
    NonFinite {
        /// Machine the sample belongs to.
        machine_id: usize,
        /// Second of the offending sample.
        second: usize,
        /// Which series held the value.
        context: String,
    },
    /// A serialized trace failed to deserialize.
    Deserialize {
        /// The underlying serde error, stringified.
        message: String,
    },
    /// The trace's membership-event schedule is inconsistent (unsorted,
    /// out-of-range machine or donor ids, or events beyond the run).
    Membership {
        /// Human-readable description of the offending event.
        context: String,
    },
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::HeterogeneousCluster => write!(
                f,
                "collect_run requires a homogeneous cluster; use collect_run_mixed"
            ),
            CollectError::CatalogMismatch { expected, got } => write!(
                f,
                "catalog does not match cluster platform: expected {expected} counters, got {got}"
            ),
            CollectError::ZeroInterval => write!(f, "decimation interval must be positive"),
            CollectError::Ragged { context } => write!(f, "ragged trace: {context}"),
            CollectError::NonFinite {
                machine_id,
                second,
                context,
            } => write!(
                f,
                "non-finite value marked valid on machine {machine_id} at t={second}s ({context})"
            ),
            CollectError::Deserialize { message } => {
                write!(f, "trace deserialization failed: {message}")
            }
            CollectError::Membership { context } => {
                write!(f, "invalid membership schedule: {context}")
            }
        }
    }
}

impl Error for CollectError {}

/// Per-sample validity of one machine's recording.
///
/// An **empty** mask (the serde default, and what [`collect_run`]
/// produces) means *every* sample is valid — the common case costs
/// nothing. Fault injection materializes the vectors it needs; a `false`
/// entry marks a sample that was lost, frozen, or recorded after the
/// machine died, even when the stored value is finite (stale repeats).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidityMask {
    /// `counters[t][c]` — whether counter `c` at second `t` is trustworthy.
    /// Empty means all valid.
    pub counters: Vec<Vec<bool>>,
    /// Per-second meter validity. Empty means all valid.
    pub meter: Vec<bool>,
    /// Per-second machine liveness (`false` after a crash). Empty means
    /// alive throughout.
    pub alive: Vec<bool>,
}

impl ValidityMask {
    /// Whether counter `c` at second `t` is valid (empty mask ⇒ valid).
    pub fn counter_ok(&self, t: usize, c: usize) -> bool {
        self.counters
            .get(t)
            .is_none_or(|row| row.get(c).copied().unwrap_or(true))
    }

    /// Whether the meter reading at second `t` is valid.
    pub fn meter_ok(&self, t: usize) -> bool {
        self.meter.get(t).copied().unwrap_or(true)
    }

    /// Whether the machine was alive at second `t`.
    pub fn alive(&self, t: usize) -> bool {
        self.alive.get(t).copied().unwrap_or(true)
    }

    /// Whether the mask marks every sample valid.
    pub fn is_all_valid(&self) -> bool {
        self.counters.iter().flatten().all(|&b| b)
            && self.meter.iter().all(|&b| b)
            && self.alive.iter().all(|&b| b)
    }

    /// Materializes explicit all-true vectors for a trace of the given
    /// shape (fault injection flips individual entries afterwards).
    pub fn all_valid(seconds: usize, width: usize) -> ValidityMask {
        ValidityMask {
            counters: vec![vec![true; width]; seconds],
            meter: vec![true; seconds],
            alive: vec![true; seconds],
        }
    }
}

/// One machine's recording for one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineRunTrace {
    /// Machine id within the cluster.
    pub machine_id: usize,
    /// The machine's platform (needed to look up its counter catalog in
    /// heterogeneous clusters).
    pub platform: Platform,
    /// `counters[t][c]` — counter `c` at second `t`.
    pub counters: Vec<Vec<f64>>,
    /// Metered wall power at each second (what models train against).
    pub measured_power_w: Vec<f64>,
    /// Ground-truth wall power (for diagnostics; never shown to models).
    pub true_power_w: Vec<f64>,
    /// Per-sample validity (empty = everything valid; see [`ValidityMask`]).
    #[serde(default)]
    pub validity: ValidityMask,
}

impl MachineRunTrace {
    /// Trace length in seconds.
    pub fn seconds(&self) -> usize {
        self.counters.len()
    }

    /// Counter-row width (0 for an empty trace).
    pub fn width(&self) -> usize {
        self.counters.first().map_or(0, Vec::len)
    }

    /// Whether counter `c` at second `t` is valid.
    pub fn counter_ok(&self, t: usize, c: usize) -> bool {
        self.validity.counter_ok(t, c)
    }

    /// Whether the meter reading at second `t` is valid.
    pub fn meter_ok(&self, t: usize) -> bool {
        self.validity.meter_ok(t)
    }

    /// Whether the machine was alive at second `t`.
    pub fn alive_at(&self, t: usize) -> bool {
        self.validity.alive(t)
    }

    /// The sample at second `t` as a borrowed [`CounterSample`].
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.seconds()`.
    pub fn sample(&self, t: usize) -> CounterSample<'_> {
        CounterSample {
            machine_id: self.machine_id,
            t,
            counters: &self.counters[t],
            measured_power_w: self.measured_power_w[t],
            trace: self,
        }
    }

    /// Iterates this machine's samples in time order — the 1 Hz replay a
    /// streaming consumer ingests.
    pub fn samples(&self) -> impl Iterator<Item = CounterSample<'_>> + '_ {
        (0..self.seconds()).map(move |t| self.sample(t))
    }
}

/// One machine's observation for one second, borrowed from its trace —
/// the unit of ingestion for streaming consumers (`chaos-stream`).
///
/// Validity queries go through the owning trace's [`ValidityMask`], so a
/// sample carries the same fault visibility the batch pipeline sees.
#[derive(Debug, Clone, Copy)]
pub struct CounterSample<'a> {
    /// Machine id within the cluster.
    pub machine_id: usize,
    /// Second this sample was recorded at.
    pub t: usize,
    /// Full counter row at `t` (catalog width). Invalid entries may be
    /// NaN; check [`counter_ok`](CounterSample::counter_ok).
    pub counters: &'a [f64],
    /// Metered wall power at `t`, watts (NaN under meter faults).
    pub measured_power_w: f64,
    trace: &'a MachineRunTrace,
}

impl CounterSample<'_> {
    /// Whether counter `c` of this sample is trustworthy.
    pub fn counter_ok(&self, c: usize) -> bool {
        self.trace.counter_ok(self.t, c)
    }

    /// Whether the meter reading of this sample is valid.
    pub fn meter_ok(&self) -> bool {
        self.trace.meter_ok(self.t)
    }

    /// Whether the machine was alive this second.
    pub fn alive(&self) -> bool {
        self.trace.alive_at(self.t)
    }
}

/// All machines' samples for one second, in machine-id order — exactly
/// the set Eq. 5's cluster sum runs over.
#[derive(Debug, Clone)]
pub struct ClusterSample<'a> {
    /// Second of the cluster sample.
    pub t: usize,
    /// Per-machine samples, machine-id order.
    pub machines: Vec<CounterSample<'a>>,
    /// Membership events taking effect this second (usually empty).
    pub membership: Vec<&'a MembershipEvent>,
}

/// A full cluster recording for one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Workload name.
    pub workload: String,
    /// The seed that drove scheduling, governor jitter, and meters.
    pub run_seed: u64,
    /// Per-machine traces, in machine-id order.
    pub machines: Vec<MachineRunTrace>,
    /// Fleet-membership transitions over the run, sorted by time. Empty
    /// (the serde default) means the membership is static — every
    /// machine contributes for the whole run.
    #[serde(default)]
    pub membership: Vec<MembershipEvent>,
}

impl RunTrace {
    /// Trace length in seconds: the *minimum* across machines, so cluster
    /// series never mix seconds some machines did not report. Equal to
    /// every machine's length for well-formed traces ([`RunTrace::validate`]
    /// flags the ragged case).
    pub fn seconds(&self) -> usize {
        self.machines
            .iter()
            .map(MachineRunTrace::seconds)
            .min()
            .unwrap_or(0)
    }

    /// Cluster-level metered power: the sum of per-machine meters, second
    /// by second (what Figure 1 plots). Invalid meter samples propagate
    /// their NaN; see [`ValidityMask`] to detect them.
    pub fn cluster_measured_power(&self) -> Vec<f64> {
        self.sum_series(|m| &m.measured_power_w)
    }

    /// Streams the run one second at a time: each [`ClusterSample`] holds
    /// every machine's observation for that second, in machine-id order,
    /// plus any membership events taking effect that second. Bounded by
    /// [`RunTrace::seconds`] (the minimum across machines), so ragged
    /// tails are never yielded. This is the replay surface `chaos-stream`
    /// consumes.
    pub fn sample_stream(&self) -> impl Iterator<Item = ClusterSample<'_>> + '_ {
        (0..self.seconds()).map(move |t| ClusterSample {
            t,
            machines: self.machines.iter().map(|m| m.sample(t)).collect(),
            membership: self.membership.iter().filter(|e| e.t == t).collect(),
        })
    }

    /// Returns a copy carrying the given membership-event schedule.
    /// Validate with [`RunTrace::validate_membership`] before feeding the
    /// result to a consumer that honors membership.
    pub fn with_membership(mut self, membership: Vec<MembershipEvent>) -> Self {
        self.membership = membership;
        self
    }

    /// Tiles this run out to a fleet of `machines` machines: machine `i`
    /// of the result is a renumbered clone of source machine
    /// `i % self.machines.len()`.
    ///
    /// This is how the serve load generator manufactures 5000-machine
    /// ingest streams without simulating 5000 machines: simulate a small
    /// base cluster once, then tile it. Estimation cost downstream is
    /// the real per-machine cost — every tiled machine runs its own
    /// engine — only the *simulation* is amortized. Membership schedules
    /// reference machine ids and do not survive renumbering, so tiling a
    /// run with membership events is rejected.
    ///
    /// # Errors
    ///
    /// * [`CollectError::Ragged`] if this run has no machines or
    ///   `machines` is zero.
    /// * [`CollectError::Membership`] if this run carries membership
    ///   events.
    pub fn tiled_to(&self, machines: usize) -> Result<RunTrace, CollectError> {
        if self.machines.is_empty() || machines == 0 {
            return Err(CollectError::Ragged {
                context: format!(
                    "tiled_to needs a non-empty source and target ({} source machines, {machines} requested)",
                    self.machines.len()
                ),
            });
        }
        if !self.membership.is_empty() {
            return Err(CollectError::Membership {
                context:
                    "tiled_to cannot renumber a membership schedule; tile first, then attach events"
                        .to_string(),
            });
        }
        let tiled = (0..machines)
            .map(|id| {
                let mut m = self.machines[id % self.machines.len()].clone();
                m.machine_id = id;
                m
            })
            .collect();
        Ok(RunTrace {
            workload: self.workload.clone(),
            run_seed: self.run_seed,
            machines: tiled,
            membership: Vec::new(),
        })
    }

    /// Whether machine `machine_id` is active at the *start* of the run:
    /// a machine whose first scheduled event is a join arrives mid-run
    /// and starts inactive; every other machine starts active.
    pub fn initially_active(&self, machine_id: usize) -> bool {
        match self.membership.iter().find(|e| e.machine_id == machine_id) {
            Some(first) => !matches!(first.kind, MembershipKind::Join { .. }),
            None => true,
        }
    }

    /// Checks the membership schedule against the trace shape: events
    /// sorted by time and inside the run, machine and donor ids in
    /// range, and no event naming its own machine as donor.
    ///
    /// # Errors
    ///
    /// [`CollectError::Membership`] describing the first offending event.
    pub fn validate_membership(&self) -> Result<(), CollectError> {
        let n = self.machines.len();
        let seconds = self.seconds();
        let mut last_t = 0usize;
        for e in &self.membership {
            if e.t < last_t {
                return Err(CollectError::Membership {
                    context: format!(
                        "event at t={} follows one at t={last_t}; sort events by time",
                        e.t
                    ),
                });
            }
            last_t = e.t;
            if e.t >= seconds {
                return Err(CollectError::Membership {
                    context: format!("event at t={} is beyond the {seconds}-second run", e.t),
                });
            }
            if e.machine_id >= n {
                return Err(CollectError::Membership {
                    context: format!(
                        "event at t={} names machine {} of a {n}-machine trace",
                        e.t, e.machine_id
                    ),
                });
            }
            let donor = match e.kind {
                MembershipKind::Join { donor } | MembershipKind::Replace { donor } => donor,
                MembershipKind::Leave => None,
            };
            if let Some(d) = donor {
                if d >= n {
                    return Err(CollectError::Membership {
                        context: format!(
                            "event at t={} names donor {d} of a {n}-machine trace",
                            e.t
                        ),
                    });
                }
                if d == e.machine_id {
                    return Err(CollectError::Membership {
                        context: format!("event at t={} makes machine {d} its own donor", e.t),
                    });
                }
            }
        }
        Ok(())
    }

    /// Cluster-level ground-truth power.
    pub fn cluster_true_power(&self) -> Vec<f64> {
        self.sum_series(|m| &m.true_power_w)
    }

    fn sum_series<'a, F>(&'a self, f: F) -> Vec<f64>
    where
        F: Fn(&'a MachineRunTrace) -> &'a [f64],
    {
        let n = self.seconds();
        let mut out = vec![0.0; n];
        for m in &self.machines {
            for (o, v) in out.iter_mut().zip(f(m)) {
                *o += v;
            }
        }
        out
    }

    /// Checks structural and numerical integrity: every machine reports
    /// the same number of seconds, counter rows are rectangular, power
    /// series match the counter length, any validity mask matches the
    /// trace shape, and no sample that claims to be valid is non-finite.
    ///
    /// Run this on every trace that crosses a serialization boundary —
    /// [`RunTrace::seconds`] and the cluster sums are only meaningful on
    /// traces that pass.
    ///
    /// # Errors
    ///
    /// * [`CollectError::Ragged`] for any shape inconsistency.
    /// * [`CollectError::NonFinite`] for a NaN/∞ sample not excused by
    ///   the validity mask.
    pub fn validate(&self) -> Result<(), CollectError> {
        let Some(first) = self.machines.first() else {
            return Ok(());
        };
        let seconds = first.seconds();
        for m in &self.machines {
            let id = m.machine_id;
            if m.seconds() != seconds {
                return Err(CollectError::Ragged {
                    context: format!(
                        "machine {id} has {} seconds, machine {} has {seconds}",
                        m.seconds(),
                        first.machine_id
                    ),
                });
            }
            let width = m.width();
            if let Some((t, row)) = m
                .counters
                .iter()
                .enumerate()
                .find(|(_, row)| row.len() != width)
            {
                return Err(CollectError::Ragged {
                    context: format!(
                        "machine {id} counter row at t={t} has width {}, expected {width}",
                        row.len()
                    ),
                });
            }
            for (name, len) in [
                ("measured_power_w", m.measured_power_w.len()),
                ("true_power_w", m.true_power_w.len()),
            ] {
                if len != seconds {
                    return Err(CollectError::Ragged {
                        context: format!(
                            "machine {id} {name} has {len} samples, expected {seconds}"
                        ),
                    });
                }
            }
            for (name, len, expect) in [
                ("validity.counters", m.validity.counters.len(), seconds),
                ("validity.meter", m.validity.meter.len(), seconds),
                ("validity.alive", m.validity.alive.len(), seconds),
            ] {
                if len != 0 && len != expect {
                    return Err(CollectError::Ragged {
                        context: format!(
                            "machine {id} {name} has {len} entries, expected {expect}"
                        ),
                    });
                }
            }
            for (t, row) in m.counters.iter().enumerate() {
                for (c, v) in row.iter().enumerate() {
                    if !v.is_finite() && m.counter_ok(t, c) {
                        return Err(CollectError::NonFinite {
                            machine_id: id,
                            second: t,
                            context: format!("counter {c}"),
                        });
                    }
                }
            }
            for (t, v) in m.measured_power_w.iter().enumerate() {
                if !v.is_finite() && m.meter_ok(t) {
                    return Err(CollectError::NonFinite {
                        machine_id: id,
                        second: t,
                        context: "measured_power_w".into(),
                    });
                }
            }
            if let Some((t, _)) = m
                .true_power_w
                .iter()
                .enumerate()
                .find(|(_, v)| !v.is_finite())
            {
                return Err(CollectError::NonFinite {
                    machine_id: id,
                    second: t,
                    context: "true_power_w".into(),
                });
            }
        }
        self.validate_membership()
    }

    /// Deserializes a trace from JSON and [validates](RunTrace::validate)
    /// it — the entry point for traces arriving from other agents, where
    /// truncation and corruption are routine.
    ///
    /// # Errors
    ///
    /// [`CollectError::Deserialize`] for malformed JSON, plus everything
    /// [`RunTrace::validate`] reports.
    pub fn from_json(json: &str) -> Result<RunTrace, CollectError> {
        let trace: RunTrace =
            serde_json::from_str(json).map_err(|e| CollectError::Deserialize {
                message: e.to_string(),
            })?;
        trace.validate()?;
        Ok(trace)
    }

    /// Returns a copy sampled every `interval_s` seconds — what a slower
    /// collector (e.g. the 10-minute intervals some prior work used)
    /// would have recorded. Rate counters in Perfmon are averages over
    /// the sampling interval, so values are window-averaged, not point
    /// samples. Windows average only *valid* source samples; a window
    /// with none left is NaN and marked invalid.
    ///
    /// # Errors
    ///
    /// [`CollectError::ZeroInterval`] if `interval_s == 0`.
    pub fn decimated(&self, interval_s: usize) -> Result<RunTrace, CollectError> {
        if interval_s == 0 {
            return Err(CollectError::ZeroInterval);
        }
        if interval_s == 1 {
            return Ok(self.clone());
        }
        let machines = self
            .machines
            .iter()
            .map(|m| decimate_machine(m, interval_s))
            .collect();
        // Membership events land in the decimated window containing them;
        // same-window collisions keep their original order.
        let membership = self
            .membership
            .iter()
            .map(|e| MembershipEvent {
                t: e.t / interval_s,
                ..*e
            })
            .collect();
        Ok(RunTrace {
            workload: self.workload.clone(),
            run_seed: self.run_seed,
            machines,
            membership,
        })
    }
}

fn decimate_machine(m: &MachineRunTrace, interval_s: usize) -> MachineRunTrace {
    let n = m.seconds();
    let width = m.width();
    let masked = !m.validity.is_all_valid();
    let mut counters = Vec::new();
    let mut measured = Vec::new();
    let mut truth = Vec::new();
    let mut mask = ValidityMask::default();
    let mut start = 0;
    while start < n {
        let end = (start + interval_s).min(n);
        let mut crow = vec![0.0; width];
        let mut ccount = vec![0usize; width];
        let mut pm = 0.0;
        let mut pm_count = 0usize;
        let mut pt = 0.0;
        let mut any_alive = false;
        for t in start..end {
            for (j, (acc, cnt)) in crow.iter_mut().zip(ccount.iter_mut()).enumerate() {
                if m.counter_ok(t, j) {
                    *acc += m.counters[t][j];
                    *cnt += 1;
                }
            }
            if m.meter_ok(t) {
                pm += m.measured_power_w[t];
                pm_count += 1;
            }
            pt += m.true_power_w[t];
            any_alive |= m.alive_at(t);
        }
        let crow: Vec<f64> = crow
            .iter()
            .zip(&ccount)
            .map(|(&acc, &cnt)| if cnt > 0 { acc / cnt as f64 } else { f64::NAN })
            .collect();
        if masked {
            mask.counters.push(ccount.iter().map(|&c| c > 0).collect());
            mask.meter.push(pm_count > 0);
            mask.alive.push(any_alive);
        }
        counters.push(crow);
        measured.push(if pm_count > 0 {
            pm / pm_count as f64
        } else {
            f64::NAN
        });
        truth.push(pt / (end - start) as f64);
        start = end;
    }
    MachineRunTrace {
        machine_id: m.machine_id,
        platform: m.platform,
        counters,
        measured_power_w: measured,
        true_power_w: truth,
        validity: mask,
    }
}

/// Collects one run on a **homogeneous** cluster using the supplied
/// catalog (which must match the cluster's platform).
///
/// # Errors
///
/// * [`CollectError::HeterogeneousCluster`] for a mixed cluster; use
///   [`collect_run_mixed`] instead.
/// * [`CollectError::CatalogMismatch`] if the catalog does not match the
///   cluster platform's own catalog.
pub fn collect_run(
    cluster: &Cluster,
    catalog: &CounterCatalog,
    job: impl Into<chaos_workloads::scheduler::JobSource>,
    config: &SimConfig,
    seed: u64,
) -> Result<RunTrace, CollectError> {
    if !cluster.is_homogeneous() {
        return Err(CollectError::HeterogeneousCluster);
    }
    // chaos-lint: allow(R4) — Cluster construction asserts at least
    // one machine, so machines()[0] cannot be out of bounds.
    let platform = cluster.machines()[0].spec().platform;
    let expected = CounterCatalog::for_platform(&platform.spec()).len();
    if catalog.len() != expected {
        return Err(CollectError::CatalogMismatch {
            expected,
            got: catalog.len(),
        });
    }
    Ok(collect_with(cluster, job, config, seed, |_| {
        catalog.clone()
    }))
}

/// Collects one run on any cluster, building each machine's catalog from
/// its own platform (heterogeneous clusters get per-platform catalogs, as
/// in the paper's 10-machine Core2+Opteron experiment).
pub fn collect_run_mixed(
    cluster: &Cluster,
    job: impl Into<chaos_workloads::scheduler::JobSource>,
    config: &SimConfig,
    seed: u64,
) -> RunTrace {
    collect_with(cluster, job, config, seed, |p| {
        CounterCatalog::for_platform(&p.spec())
    })
}

fn collect_with(
    cluster: &Cluster,
    job: impl Into<chaos_workloads::scheduler::JobSource>,
    config: &SimConfig,
    seed: u64,
    catalog_for: impl Fn(Platform) -> CounterCatalog,
) -> RunTrace {
    let demand_trace = simulate(cluster, job, config, seed);
    let mut machines = Vec::with_capacity(cluster.len());

    for (mi, machine) in cluster.machines().iter().enumerate() {
        let platform = machine.spec().platform;
        let catalog = catalog_for(platform);
        // Two seed families: machine-stable properties (counter
        // sensitivities, meter calibration) persist across runs; per-run
        // noise streams are fresh each run. Conflating them would create
        // spurious run-level correlations between counters and power.
        let machine_seed = cluster
            .seed()
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (mi as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let run_seed = seed ^ (mi as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut synth = CounterSynth::with_seeds(&catalog, machine.spec(), machine_seed, run_seed);
        let mut gov_rng = ChaCha8Rng::seed_from_u64(run_seed.wrapping_add(1));
        let mut meter_rng = ChaCha8Rng::seed_from_u64(run_seed.wrapping_add(2));
        let meter =
            PowerMeter::sample(&mut ChaCha8Rng::seed_from_u64(machine_seed.wrapping_add(3)));
        // Hidden thermal drift: load-history-dependent power no counter
        // observes — the irreducible error floor of counter-based models.
        let mut thermal = chaos_sim::ThermalModel::new();
        let mut thermal_rng = ChaCha8Rng::seed_from_u64(run_seed.wrapping_add(4));

        let demands = demand_trace.machine(mi);
        let mut counters = Vec::with_capacity(demands.len());
        let mut measured = Vec::with_capacity(demands.len());
        let mut truth = Vec::with_capacity(demands.len());
        for d in demands {
            let state = machine.apply_demand(d, &mut gov_rng);
            let thermal_w =
                machine.dynamic_range() * thermal.step(state.cpu_utilization(), &mut thermal_rng);
            let p = machine.true_power(&state) + thermal_w + machine.variation().meter_offset_w;
            counters.push(synth.step(&catalog, &state));
            truth.push(p);
            measured.push(meter.read(p, &mut meter_rng));
        }
        machines.push(MachineRunTrace {
            machine_id: mi,
            platform,
            counters,
            measured_power_w: measured,
            true_power_w: truth,
            validity: ValidityMask::default(),
        });
    }

    RunTrace {
        workload: demand_trace.workload.clone(),
        run_seed: seed,
        machines,
        membership: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_workloads::Workload;

    #[test]
    fn homogeneous_collection_shapes() {
        let cluster = Cluster::homogeneous(Platform::Atom, 3, 1);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(
            &cluster,
            &catalog,
            Workload::WordCount,
            &SimConfig::quick(),
            5,
        )
        .unwrap();
        assert_eq!(run.machines.len(), 3);
        let secs = run.seconds();
        assert!(secs > 30);
        for m in &run.machines {
            assert_eq!(m.seconds(), secs);
            assert_eq!(m.counters[0].len(), catalog.len());
            assert_eq!(m.width(), catalog.len());
            assert_eq!(m.measured_power_w.len(), secs);
            assert_eq!(m.true_power_w.len(), secs);
            // Fresh collections are fully valid via the empty mask.
            assert!(m.validity.is_all_valid());
            assert!(m.counter_ok(0, 0) && m.meter_ok(0) && m.alive_at(0));
        }
        run.validate().unwrap();
    }

    #[test]
    fn measured_power_tracks_truth_within_meter_class() {
        let cluster = Cluster::homogeneous(Platform::Core2, 2, 2);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 9).unwrap();
        for m in &run.machines {
            for (meas, truth) in m.measured_power_w.iter().zip(&m.true_power_w) {
                let rel = (meas - truth).abs() / truth;
                assert!(rel < 0.03, "relative meter error {rel}");
            }
        }
    }

    #[test]
    fn cluster_power_is_sum_of_machines() {
        let cluster = Cluster::homogeneous(Platform::Athlon, 3, 3);
        let catalog = CounterCatalog::for_platform(&Platform::Athlon.spec());
        let run = collect_run(
            &cluster,
            &catalog,
            Workload::WordCount,
            &SimConfig::quick(),
            4,
        )
        .unwrap();
        let total = run.cluster_measured_power();
        let t = run.seconds() / 2;
        let manual: f64 = run.machines.iter().map(|m| m.measured_power_w[t]).sum();
        assert!((total[t] - manual).abs() < 1e-9);
    }

    #[test]
    fn workload_power_signatures_differ() {
        // Figure 1's premise: Prime's cluster power profile differs
        // dramatically from idle-heavy WordCount bookends. Compare mean
        // power of Prime vs WordCount on the same cluster.
        let cluster = Cluster::homogeneous(Platform::Core2, 5, 1);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let cfg = SimConfig::quick();
        let prime = collect_run(&cluster, &catalog, Workload::Prime, &cfg, 11).unwrap();
        let wc = collect_run(&cluster, &catalog, Workload::WordCount, &cfg, 11).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mid_mean = |v: &[f64]| {
            let (a, b) = (v.len() / 4, 3 * v.len() / 4);
            mean(&v[a..b])
        };
        // Prime saturates the CPUs through its middle phase; WordCount is
        // shorter and lighter — their mid-run power levels must differ.
        let prime_mid = mid_mean(&prime.cluster_measured_power());
        let wc_mid = mid_mean(&wc.cluster_measured_power());
        assert!(
            prime_mid > wc_mid,
            "prime mid-run {prime_mid} should exceed wordcount {wc_mid}"
        );
        assert!(mean(&prime.cluster_measured_power()) > cluster.idle_power());
    }

    #[test]
    fn mixed_collection_handles_heterogeneous_clusters() {
        let cluster = Cluster::heterogeneous(&[(Platform::Core2, 2), (Platform::Opteron, 2)], 6);
        let run = collect_run_mixed(&cluster, Workload::Sort, &SimConfig::quick(), 13);
        assert_eq!(run.machines.len(), 4);
        assert_eq!(run.machines[0].platform, Platform::Core2);
        assert_eq!(run.machines[3].platform, Platform::Opteron);
        // Each machine's rows match its own platform's catalog width, and
        // the two platforms' catalogs differ in content (per-core
        // frequency counters).
        let cat_core2 = CounterCatalog::for_platform(&Platform::Core2.spec());
        let cat_opteron = CounterCatalog::for_platform(&Platform::Opteron.spec());
        assert_eq!(run.machines[0].counters[0].len(), cat_core2.len());
        assert_eq!(run.machines[3].counters[0].len(), cat_opteron.len());
        assert_ne!(cat_core2.defs(), cat_opteron.defs());
    }

    #[test]
    fn collect_run_rejects_mixed_clusters() {
        let cluster = Cluster::heterogeneous(&[(Platform::Core2, 1), (Platform::Atom, 1)], 0);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let err =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 0).unwrap_err();
        assert_eq!(err, CollectError::HeterogeneousCluster);
        assert!(err.to_string().contains("homogeneous"));
    }

    #[test]
    fn collect_run_rejects_mismatched_catalog() {
        let cluster = Cluster::homogeneous(Platform::Core2, 2, 0);
        // Atom's catalog has a different counter population.
        let wrong = CounterCatalog::for_platform(&Platform::Atom.spec());
        let expected = CounterCatalog::for_platform(&Platform::Core2.spec()).len();
        if wrong.len() == expected {
            // Platforms with identical catalog sizes cannot trip this
            // guard; nothing to assert.
            return;
        }
        let err =
            collect_run(&cluster, &wrong, Workload::Prime, &SimConfig::quick(), 0).unwrap_err();
        assert_eq!(
            err,
            CollectError::CatalogMismatch {
                expected,
                got: wrong.len()
            }
        );
    }

    #[test]
    fn decimation_averages_windows() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 5);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 3).unwrap();
        let dec = run.decimated(5).unwrap();
        assert_eq!(dec.seconds(), run.seconds().div_ceil(5));
        // The first decimated power sample is the mean of the first five.
        let m = &run.machines[0];
        let want: f64 = m.measured_power_w[..5].iter().sum::<f64>() / 5.0;
        assert!((dec.machines[0].measured_power_w[0] - want).abs() < 1e-9);
        // Counter width unchanged; energy roughly conserved.
        assert_eq!(dec.machines[0].counters[0].len(), catalog.len());
        let e_full: f64 = m.true_power_w.iter().sum();
        let e_dec: f64 = dec.machines[0].true_power_w.iter().sum::<f64>() * 5.0;
        assert!((e_full - e_dec).abs() / e_full < 0.05);
        // interval 1 is the identity.
        assert_eq!(run.decimated(1).unwrap(), run);
    }

    #[test]
    fn decimation_rejects_zero() {
        let cluster = Cluster::homogeneous(Platform::Atom, 1, 5);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 3).unwrap();
        assert_eq!(run.decimated(0).unwrap_err(), CollectError::ZeroInterval);
    }

    #[test]
    fn different_run_seeds_give_different_traces() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 7);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let a = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 1).unwrap();
        let b = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 2).unwrap();
        assert_ne!(
            a.machines[0].measured_power_w,
            b.machines[0].measured_power_w
        );
        // Same seed reproduces exactly.
        let c = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 1).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn validate_catches_ragged_machine_lengths() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 7);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let mut run =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 1).unwrap();
        run.machines[1].counters.pop();
        run.machines[1].measured_power_w.pop();
        run.machines[1].true_power_w.pop();
        let err = run.validate().unwrap_err();
        assert!(matches!(err, CollectError::Ragged { .. }), "{err}");
        // seconds() stays conservative on ragged traces: the shortest
        // machine bounds the cluster series.
        assert_eq!(run.seconds(), run.machines[1].seconds());
        let total = run.cluster_measured_power();
        assert_eq!(total.len(), run.seconds());
    }

    #[test]
    fn validate_catches_inconsistent_counter_width() {
        let cluster = Cluster::homogeneous(Platform::Atom, 1, 7);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let mut run =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 1).unwrap();
        run.machines[0].counters[3].pop();
        let err = run.validate().unwrap_err();
        assert!(matches!(err, CollectError::Ragged { .. }), "{err}");
    }

    #[test]
    fn validate_catches_unmasked_non_finite_values() {
        let cluster = Cluster::homogeneous(Platform::Atom, 1, 7);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let mut run =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 1).unwrap();
        run.machines[0].counters[2][4] = f64::NAN;
        let err = run.validate().unwrap_err();
        assert!(
            matches!(err, CollectError::NonFinite { second: 2, .. }),
            "{err}"
        );
        // The same NaN excused by a validity mask passes validation.
        let (secs, width) = (run.machines[0].seconds(), run.machines[0].width());
        let mut mask = ValidityMask::all_valid(secs, width);
        mask.counters[2][4] = false;
        run.machines[0].validity = mask;
        run.validate().unwrap();
    }

    #[test]
    fn sample_iterator_replays_trace_in_order() {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 9);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let run = collect_run(&cluster, &catalog, Workload::Sort, &SimConfig::quick(), 5).unwrap();
        let m = &run.machines[1];
        // Per-machine stream: one sample per second, values borrowed
        // straight from the trace.
        let samples: Vec<_> = m.samples().collect();
        assert_eq!(samples.len(), m.seconds());
        for (t, s) in samples.iter().enumerate() {
            assert_eq!(s.t, t);
            assert_eq!(s.machine_id, m.machine_id);
            assert_eq!(s.counters, m.counters[t].as_slice());
            assert!((s.measured_power_w - m.measured_power_w[t]).abs() < 1e-12);
        }
        // Cluster stream: machine-id order, bounded by RunTrace::seconds.
        let cluster_samples: Vec<_> = run.sample_stream().collect();
        assert_eq!(cluster_samples.len(), run.seconds());
        for (t, cs) in cluster_samples.iter().enumerate() {
            assert_eq!(cs.t, t);
            let ids: Vec<usize> = cs.machines.iter().map(|s| s.machine_id).collect();
            let want: Vec<usize> = run.machines.iter().map(|m| m.machine_id).collect();
            assert_eq!(ids, want);
        }
    }

    #[test]
    fn sample_iterator_surfaces_validity() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 3);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let mut run =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 7).unwrap();
        let (secs, width) = (run.machines[0].seconds(), run.machines[0].width());
        let mut mask = ValidityMask::all_valid(secs, width);
        mask.counters[4][1] = false;
        mask.meter[6] = false;
        mask.alive[8] = false;
        run.machines[0].validity = mask;
        let m = &run.machines[0];
        let s4 = m.sample(4);
        assert!(!s4.counter_ok(1));
        assert!(s4.counter_ok(0));
        assert!(s4.meter_ok() && s4.alive());
        let s6 = m.sample(6);
        assert!(!s6.meter_ok());
        assert!(s6.alive());
        let s8 = m.sample(8);
        assert!(!s8.alive());
        // The untouched machine reports everything valid through the
        // cluster stream too.
        for cs in run.sample_stream() {
            let other = &cs.machines[1];
            assert!(other.meter_ok() && other.alive());
        }
    }

    #[test]
    fn sample_iterator_respects_ragged_minimum() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 3);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let mut run =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 7).unwrap();
        run.machines[1].counters.pop();
        run.machines[1].measured_power_w.pop();
        run.machines[1].true_power_w.pop();
        // The cluster stream never yields a second the short machine
        // lacks, matching RunTrace::seconds().
        assert_eq!(run.sample_stream().count(), run.machines[1].seconds());
    }

    #[test]
    fn tiled_to_renumbers_and_replicates() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 3);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 7).unwrap();
        let fleet = run.tiled_to(5).unwrap();
        assert_eq!(fleet.machines.len(), 5);
        for (id, m) in fleet.machines.iter().enumerate() {
            assert_eq!(m.machine_id, id);
            let src = &run.machines[id % 2];
            assert_eq!(m.counters, src.counters);
            assert_eq!(m.measured_power_w, src.measured_power_w);
        }
        assert_eq!(fleet.seconds(), run.seconds());
        fleet.validate().expect("tiled run stays valid");
        // Shrinking works too (take a prefix of the tiling).
        assert_eq!(run.tiled_to(1).unwrap().machines.len(), 1);
    }

    #[test]
    fn tiled_to_rejects_degenerate_and_membership_runs() {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 3);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 7).unwrap();
        assert!(matches!(run.tiled_to(0), Err(CollectError::Ragged { .. })));
        let churned = run.with_membership(vec![MembershipEvent::leave(5, 1)]);
        assert!(matches!(
            churned.tiled_to(4),
            Err(CollectError::Membership { .. })
        ));
    }
}
