//! Fault injection: seeded, reproducible corruption of collected traces.
//!
//! CHAOS is pitched as a deployable framework — an agent on every machine
//! reading OS counters at 1 Hz and feeding a live model. Deployed
//! collectors do not behave like the clean simulator: counters drop out
//! of a Perfmon query set, meters disconnect mid-run, readings spike on
//! electrical noise, daemons hang and repeat their last sample, and whole
//! machines die. A [`FaultPlan`] replays those failure modes against a
//! clean [`RunTrace`] so the degradation behaviour of the modeling
//! pipeline can be measured instead of discovered in production.
//!
//! Faults are **data plus mask**: injected samples are corrupted in place
//! and the trace's [`ValidityMask`] records which samples a fault-aware
//! consumer may no longer trust. Stale repeats and frozen counters stay
//! finite — only the mask distinguishes them from good data, exactly like
//! a hung collector in the field.
//!
//! Injection is deterministic: the same plan applied to the same trace
//! yields the same faulted trace, and a plan with every rate at zero is
//! the identity.
//!
//! # Example
//!
//! ```
//! use chaos_counters::{collect_run, CounterCatalog, FaultPlan};
//! use chaos_sim::{Cluster, Platform};
//! use chaos_workloads::{SimConfig, Workload};
//!
//! let cluster = Cluster::homogeneous(Platform::Atom, 2, 1);
//! let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
//! let run = collect_run(&cluster, &catalog, Workload::WordCount, &SimConfig::quick(), 7)
//!     .expect("collection succeeds");
//! let faulted = FaultPlan::new(42).with_counter_dropout(0.1).apply(&run);
//! assert_eq!(faulted.machines.len(), run.machines.len());
//! assert!(!faulted.machines[0].validity.is_all_valid());
//! ```

use crate::collect::{MachineRunTrace, RunTrace, ValidityMask};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What a dropped counter sample turns into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropoutMode {
    /// The sample is lost outright: NaN in the trace. A collector that
    /// surfaces query failures behaves like this.
    Nan,
    /// The collector repeats the last value it saw (NaN at `t = 0`).
    /// A hung or buffering collector behaves like this — the data stays
    /// finite and only the validity mask betrays it.
    Stale,
}

/// A seeded, reproducible set of fault processes to apply to a trace.
///
/// All rates are probabilities in `[0, 1]`; they are clamped on use. The
/// default plan (any seed, all rates zero) is the identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the injection RNG streams (independent of the trace's
    /// collection seeds).
    pub seed: u64,
    /// Per-(second, counter) probability that the sample is lost.
    pub counter_dropout: f64,
    /// What a lost counter sample turns into.
    pub dropout_mode: DropoutMode,
    /// Per-counter probability that the counter freezes at some second
    /// and repeats that reading for the rest of the run.
    pub stuck_rate: f64,
    /// Per-second probability that the power meter enters an outage.
    pub meter_outage_rate: f64,
    /// Outage length in seconds once one starts.
    pub meter_outage_len: usize,
    /// Per-second probability of a meter glitch spike. Glitches corrupt
    /// the reading but stay *valid* in the mask — undetected corruption,
    /// like electrical noise on a WattsUp line.
    pub glitch_rate: f64,
    /// Relative magnitude of a glitch spike (0.5 ⇒ up to ±50 %).
    pub glitch_scale: f64,
    /// Per-machine probability that the machine crashes at a random
    /// second and reports nothing afterwards.
    pub crash_rate: f64,
    /// Fleet-churn scenario stamped onto the faulted trace's membership
    /// schedule (joins, leaves, replacements). `None` leaves the trace's
    /// membership untouched.
    #[serde(default)]
    pub churn: Option<chaos_sim::ChurnPlan>,
}

impl FaultPlan {
    /// A no-op plan: all rates zero. Building blocks compose via the
    /// `with_*` methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            counter_dropout: 0.0,
            dropout_mode: DropoutMode::Nan,
            stuck_rate: 0.0,
            meter_outage_rate: 0.0,
            meter_outage_len: 10,
            glitch_rate: 0.0,
            glitch_scale: 0.5,
            crash_rate: 0.0,
            churn: None,
        }
    }

    /// Sets per-sample counter dropout (NaN mode).
    pub fn with_counter_dropout(mut self, rate: f64) -> Self {
        self.counter_dropout = rate;
        self
    }

    /// Sets the dropout replacement mode.
    pub fn with_dropout_mode(mut self, mode: DropoutMode) -> Self {
        self.dropout_mode = mode;
        self
    }

    /// Sets the per-counter stuck/frozen probability.
    pub fn with_stuck_counters(mut self, rate: f64) -> Self {
        self.stuck_rate = rate;
        self
    }

    /// Sets meter outage start rate and outage length.
    pub fn with_meter_outages(mut self, rate: f64, len_s: usize) -> Self {
        self.meter_outage_rate = rate;
        self.meter_outage_len = len_s.max(1);
        self
    }

    /// Sets meter glitch-spike rate and relative magnitude.
    pub fn with_glitches(mut self, rate: f64, scale: f64) -> Self {
        self.glitch_rate = rate;
        self.glitch_scale = scale;
        self
    }

    /// Sets the per-machine crash probability.
    pub fn with_crashes(mut self, rate: f64) -> Self {
        self.crash_rate = rate;
        self
    }

    /// Attaches a fleet-churn scenario: [`FaultPlan::apply`] will stamp
    /// the generated membership schedule onto the faulted trace, driving
    /// joins/leaves/replacements through the same live path sample
    /// faults take.
    pub fn with_churn(mut self, churn: chaos_sim::ChurnPlan) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Whether this plan can alter a trace at all.
    pub fn is_identity(&self) -> bool {
        self.counter_dropout <= 0.0
            && self.stuck_rate <= 0.0
            && self.meter_outage_rate <= 0.0
            && self.glitch_rate <= 0.0
            && self.crash_rate <= 0.0
            && self
                .churn
                .as_ref()
                .is_none_or(chaos_sim::ChurnPlan::is_identity)
    }

    /// Applies the plan to a trace, returning the faulted copy. The input
    /// is never modified; `true_power_w` is never touched (it is the
    /// diagnostic ground truth faults cannot corrupt).
    ///
    /// Each machine draws from its own RNG stream seeded by
    /// `(plan seed, trace run seed, machine id)`, so the same plan on the
    /// same trace reproduces exactly and per-machine faults are
    /// independent.
    pub fn apply(&self, run: &RunTrace) -> RunTrace {
        if self.is_identity() {
            return run.clone();
        }
        let membership = match &self.churn {
            Some(plan) if !plan.is_identity() => plan.generate(run.machines.len(), run.seconds()),
            _ => run.membership.clone(),
        };
        RunTrace {
            workload: run.workload.clone(),
            run_seed: run.run_seed,
            machines: run
                .machines
                .iter()
                .map(|m| self.apply_machine(m, run.run_seed))
                .collect(),
            membership,
        }
    }

    fn machine_rng(&self, run_seed: u64, machine_id: usize) -> ChaCha8Rng {
        let s = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ run_seed.rotate_left(17)
            ^ (machine_id as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        ChaCha8Rng::seed_from_u64(s)
    }

    fn apply_machine(&self, m: &MachineRunTrace, run_seed: u64) -> MachineRunTrace {
        let n = m.seconds();
        let width = m.width();
        let mut out = m.clone();
        let mut mask = if m.validity.counters.is_empty()
            && m.validity.meter.is_empty()
            && m.validity.alive.is_empty()
        {
            ValidityMask::all_valid(n, width)
        } else {
            // Preserve any mask already present (e.g. stacked plans).
            let mut existing = m.validity.clone();
            if existing.counters.is_empty() {
                existing.counters = vec![vec![true; width]; n];
            }
            if existing.meter.is_empty() {
                existing.meter = vec![true; n];
            }
            if existing.alive.is_empty() {
                existing.alive = vec![true; n];
            }
            existing
        };
        let mut rng = self.machine_rng(run_seed, m.machine_id);

        // 1. Whole-machine crash: nothing is reported after crash_t.
        let crash_t = if n > 1 && rng.gen_bool(self.crash_rate.clamp(0.0, 1.0)) {
            Some(rng.gen_range(n / 4..n))
        } else {
            None
        };

        // 2. Stuck counters: counter c freezes at freeze_t and repeats
        // that reading for the rest of the run.
        let stuck = self.stuck_rate.clamp(0.0, 1.0);
        for c in 0..width {
            if stuck > 0.0 && n > 1 && rng.gen_bool(stuck) {
                let freeze_t = rng.gen_range(1..n);
                let frozen = out.counters[freeze_t][c];
                for t in freeze_t + 1..n {
                    out.counters[t][c] = frozen;
                    mask.counters[t][c] = false;
                }
            }
        }

        // 3. Per-sample dropout.
        let dropout = self.counter_dropout.clamp(0.0, 1.0);
        if dropout > 0.0 {
            for t in 0..n {
                for c in 0..width {
                    if rng.gen_bool(dropout) {
                        out.counters[t][c] = match self.dropout_mode {
                            DropoutMode::Nan => f64::NAN,
                            DropoutMode::Stale if t > 0 => out.counters[t - 1][c],
                            DropoutMode::Stale => f64::NAN,
                        };
                        mask.counters[t][c] = false;
                    }
                }
            }
        }

        // 4. Meter outages: once one starts, the meter reads NaN for
        // meter_outage_len seconds.
        let outage = self.meter_outage_rate.clamp(0.0, 1.0);
        if outage > 0.0 {
            let mut t = 0;
            while t < n {
                if rng.gen_bool(outage) {
                    let end = (t + self.meter_outage_len).min(n);
                    for u in t..end {
                        out.measured_power_w[u] = f64::NAN;
                        mask.meter[u] = false;
                    }
                    t = end;
                } else {
                    t += 1;
                }
            }
        }

        // 5. Glitch spikes: corrupt but *valid* — undetected noise.
        let glitch = self.glitch_rate.clamp(0.0, 1.0);
        if glitch > 0.0 {
            for t in 0..n {
                if mask.meter[t] && rng.gen_bool(glitch) {
                    let kick = rng.gen_range(-self.glitch_scale..self.glitch_scale);
                    out.measured_power_w[t] *= 1.0 + kick;
                }
            }
        }

        // Crash wipes everything after crash_t, overriding other faults.
        if let Some(ct) = crash_t {
            for t in ct..n {
                for c in 0..width {
                    out.counters[t][c] = f64::NAN;
                    mask.counters[t][c] = false;
                }
                out.measured_power_w[t] = f64::NAN;
                mask.meter[t] = false;
                mask.alive[t] = false;
            }
        }

        out.validity = mask;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CounterCatalog;
    use crate::collect::collect_run;
    use chaos_sim::{Cluster, Platform};
    use chaos_workloads::{SimConfig, Workload};

    fn trace() -> RunTrace {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 3);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        collect_run(
            &cluster,
            &catalog,
            Workload::WordCount,
            &SimConfig::quick(),
            21,
        )
        .unwrap()
    }

    #[test]
    fn zero_rate_plan_is_identity() {
        let run = trace();
        let same = FaultPlan::new(99).apply(&run);
        assert_eq!(same, run);
        assert!(FaultPlan::new(0).is_identity());
        assert!(!FaultPlan::new(0).with_counter_dropout(0.1).is_identity());
    }

    #[test]
    fn dropout_invalidates_roughly_the_requested_fraction() {
        let run = trace();
        let faulted = FaultPlan::new(7).with_counter_dropout(0.2).apply(&run);
        let m = &faulted.machines[0];
        let total = m.seconds() * m.width();
        let invalid = m
            .validity
            .counters
            .iter()
            .flatten()
            .filter(|&&ok| !ok)
            .count();
        let frac = invalid as f64 / total as f64;
        assert!((0.15..0.25).contains(&frac), "dropout fraction {frac}");
        // NaN mode: every invalidated sample is non-finite.
        for (t, row) in m.counters.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                assert_eq!(v.is_finite(), m.counter_ok(t, c));
            }
        }
        // Faulted traces still validate: NaNs are excused by the mask.
        faulted.validate().unwrap();
    }

    #[test]
    fn stale_mode_repeats_previous_value() {
        let run = trace();
        let faulted = FaultPlan::new(7)
            .with_counter_dropout(0.3)
            .with_dropout_mode(DropoutMode::Stale)
            .apply(&run);
        let m = &faulted.machines[0];
        let orig = &run.machines[0];
        let mut checked = 0;
        for t in 1..m.seconds() {
            for c in 0..m.width() {
                if !m.counter_ok(t, c) && m.counter_ok(t - 1, c) {
                    // A stale sample repeats the (possibly also stale)
                    // previous second, not the clean original.
                    assert_eq!(m.counters[t][c], m.counters[t - 1][c]);
                    checked += 1;
                }
            }
        }
        assert!(checked > 50, "stale repeats observed: {checked}");
        assert_eq!(m.seconds(), orig.seconds());
    }

    #[test]
    fn same_seed_reproduces_same_faults() {
        let run = trace();
        let plan = FaultPlan::new(11)
            .with_counter_dropout(0.1)
            .with_stuck_counters(0.05)
            .with_meter_outages(0.01, 5)
            .with_glitches(0.02, 0.5)
            .with_crashes(0.5);
        assert_eq!(plan.apply(&run), plan.apply(&run));
        // A different seed gives different faults.
        let other = FaultPlan {
            seed: 12,
            ..plan.clone()
        };
        assert_ne!(other.apply(&run), plan.apply(&run));
    }

    #[test]
    fn meter_outages_blank_contiguous_windows() {
        let run = trace();
        let faulted = FaultPlan::new(5).with_meter_outages(0.05, 8).apply(&run);
        let m = &faulted.machines[0];
        let invalid: Vec<usize> = (0..m.seconds()).filter(|&t| !m.meter_ok(t)).collect();
        assert!(!invalid.is_empty());
        for &t in &invalid {
            assert!(m.measured_power_w[t].is_nan());
        }
        // Counters are untouched by meter faults.
        assert_eq!(m.counters, run.machines[0].counters);
    }

    #[test]
    fn crash_silences_machine_tail() {
        let run = trace();
        // crash_rate 1.0: every machine crashes somewhere in [n/4, n).
        let faulted = FaultPlan::new(13).with_crashes(1.0).apply(&run);
        for m in &faulted.machines {
            let n = m.seconds();
            let crash_t = (0..n).find(|&t| !m.alive_at(t)).expect("machine crashed");
            assert!(crash_t >= n / 4);
            for t in crash_t..n {
                assert!(!m.alive_at(t));
                assert!(!m.meter_ok(t));
                assert!(m.measured_power_w[t].is_nan());
                assert!(m.counters[t].iter().all(|v| v.is_nan()));
            }
            for t in 0..crash_t {
                assert!(m.alive_at(t));
            }
        }
    }

    #[test]
    fn glitches_corrupt_but_stay_valid() {
        let run = trace();
        let faulted = FaultPlan::new(3).with_glitches(0.2, 0.5).apply(&run);
        let m = &faulted.machines[0];
        let orig = &run.machines[0];
        let changed = m
            .measured_power_w
            .iter()
            .zip(&orig.measured_power_w)
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 5, "glitches applied: {changed}");
        // Every reading (glitched or not) is still marked valid.
        assert!((0..m.seconds()).all(|t| m.meter_ok(t)));
        faulted.validate().unwrap();
    }

    #[test]
    fn stuck_counters_freeze_forever() {
        let run = trace();
        let faulted = FaultPlan::new(17).with_stuck_counters(0.2).apply(&run);
        let m = &faulted.machines[0];
        let n = m.seconds();
        let mut stuck_cols = 0;
        for c in 0..m.width() {
            // A stuck column is invalid from its freeze point onwards.
            if let Some(freeze) = (0..n).find(|&t| !m.counter_ok(t, c)) {
                stuck_cols += 1;
                let frozen = m.counters[freeze][c];
                for t in freeze..n {
                    assert!(!m.counter_ok(t, c));
                    assert_eq!(m.counters[t][c], frozen);
                }
            }
        }
        assert!(stuck_cols > 0, "no counters froze at 20% rate");
    }
}
