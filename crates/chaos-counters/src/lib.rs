//! OS-level performance-counter emulation: the ETW / Perfmon substitute.
//!
//! CHAOS models power from *OS-level* performance counters only. On the
//! paper's testbed those come from Windows Server 2008 R2, which exposes
//! ~10,000 counters, of which the authors pre-select ~250 candidates in
//! eight categories (processor, memory, physical disk, process, job
//! object, file-system cache, network, processor performance) and log
//! them at 1 Hz with Perfmon alongside the WattsUp power readings.
//!
//! This crate reproduces that observation layer over the simulator:
//!
//! * [`CounterCatalog`] — a per-platform catalog of ~250 counters: the
//!   named counters of the paper's Table II plus realistic filler. The
//!   filler is deliberately structured the way real counter populations
//!   are, because Algorithm 1's early steps exist to cope with it:
//!   *correlated aliases* (pairwise |r| > 0.95 — step 1's target),
//!   *co-dependent sums* (`a = b + c` — step 2's target), and
//!   *pure-noise counters* (the L1 regularization's target).
//! * [`CounterSynth`] — a stateful per-machine synthesizer mapping hidden
//!   [`chaos_sim::MachineState`] to counter readings with per-machine
//!   sensitivity variation and per-sample observation noise.
//! * [`collect_run`] — drives a cluster through a workload's demand trace
//!   and returns per-machine counter matrices plus measured (metered) and
//!   true power series — the exact data layout the modeling pipeline
//!   consumes.
//!
//! # Example
//!
//! ```
//! use chaos_counters::{collect_run, CounterCatalog};
//! use chaos_sim::{Cluster, Platform};
//! use chaos_workloads::{SimConfig, Workload};
//!
//! let cluster = Cluster::homogeneous(Platform::Atom, 3, 1);
//! let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
//! let run = collect_run(&cluster, &catalog, Workload::WordCount, &SimConfig::quick(), 42)
//!     .expect("homogeneous cluster with a matching catalog collects");
//! assert_eq!(run.machines.len(), 3);
//! assert_eq!(run.machines[0].counters[0].len(), catalog.len());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod collect;
pub mod faults;
pub mod store;
pub mod synth;

pub use catalog::{CounterCatalog, CounterCategory, CounterDef, CounterKind, SignalSource};
pub use chaos_sim::churn::{ChurnPlan, MembershipEvent, MembershipKind};
pub use collect::{
    collect_run, collect_run_mixed, ClusterSample, CollectError, CounterSample, MachineRunTrace,
    RunTrace, ValidityMask,
};
pub use faults::{DropoutMode, FaultPlan};
pub use store::{
    export_trace, export_trace_path, import_trace, import_trace_path, DiskSource, MemorySource,
    SampleSource, StoreError, TraceChunk,
};
pub use synth::CounterSynth;
