//! `RunTrace` ⇄ CHAOSCOL bridge and the [`SampleSource`] abstraction.
//!
//! This module connects the in-memory observation layer to the
//! columnar on-disk trace store (`chaos-trace`):
//!
//! * [`export_trace`] / [`import_trace`] convert a [`RunTrace`] to and
//!   from the CHAOSCOL binary format, bit-exactly — counter values,
//!   fault NaN payloads, signed zeros, validity masks (including the
//!   empty-vs-materialized distinction), and membership schedules all
//!   round-trip.
//! * [`SampleSource`] abstracts *where* samples come from: an in-memory
//!   [`RunTrace`] ([`MemorySource`]) or a CHAOSCOL file streamed block
//!   by block ([`DiskSource`]). Consumers — the offline robust
//!   estimator, the streaming engine — iterate [`TraceChunk`]s through
//!   one interface and produce bit-identical results either way.
//!
//! # Chunk contract
//!
//! A chunk carries `len()` payload seconds starting at global second
//! [`TraceChunk::start`], preceded by [`TraceChunk::lag`] rows of
//! context (the previous second) so lagged features can be assembled
//! without reaching back across chunk boundaries. Every chunk after
//! the first carries exactly one lag row; the first carries none, so
//! the `t == 0` lag-unavailable path behaves exactly as it does on a
//! whole in-memory trace.

use crate::collect::{MachineRunTrace, RunTrace, ValidityMask};
use chaos_sim::churn::{MembershipEvent, MembershipKind};
use chaos_sim::Platform;
use chaos_trace::{
    EventKind, MachineMeta, MemberEvent, SecondRow, TraceError, TraceMeta, TraceReader,
    TraceSummary, TraceWriter, DEFAULT_BLOCK_SECONDS,
};
use std::fmt;
use std::io::{BufReader, Read, Seek, Write};
use std::path::Path;

/// Errors from trace export, import, or chunked sample streaming.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying CHAOSCOL file is damaged or unreadable.
    Trace(TraceError),
    /// The trace's shape disagrees with what the caller needs.
    Shape {
        /// What disagreed.
        context: String,
    },
    /// The trace names a platform outside the paper's Table I.
    UnknownPlatform {
        /// The name that matched no platform.
        name: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Trace(e) => write!(f, "trace store: {e}"),
            StoreError::Shape { context } => write!(f, "trace store: {context}"),
            StoreError::UnknownPlatform { name } => {
                write!(f, "trace store: unknown platform {name:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for StoreError {
    fn from(e: TraceError) -> Self {
        StoreError::Trace(e)
    }
}

fn shape(context: impl Into<String>) -> StoreError {
    StoreError::Shape {
        context: context.into(),
    }
}

// ---------------------------------------------------------------------
// RunTrace → CHAOSCOL
// ---------------------------------------------------------------------

fn meta_of(run: &RunTrace) -> TraceMeta {
    TraceMeta {
        workload: run.workload.clone(),
        run_seed: run.run_seed,
        machines: run
            .machines
            .iter()
            .map(|m| {
                MachineMeta::with_masks(
                    m.machine_id as u64,
                    m.platform.name(),
                    m.width(),
                    !m.validity.counters.is_empty(),
                    !m.validity.meter.is_empty(),
                    !m.validity.alive.is_empty(),
                )
            })
            .collect(),
        membership: run
            .membership
            .iter()
            .map(|e| MemberEvent {
                t: e.t as u64,
                machine_id: e.machine_id as u64,
                kind: match &e.kind {
                    MembershipKind::Join { donor } => EventKind::Join {
                        donor: donor.map(|d| d as u64),
                    },
                    MembershipKind::Leave => EventKind::Leave,
                    MembershipKind::Replace { donor } => EventKind::Replace {
                        donor: donor.map(|d| d as u64),
                    },
                },
            })
            .collect(),
    }
}

/// Checks that no non-empty validity mask is shorter than the exported
/// span, then streams every second into `writer`.
fn write_rows<W: Write>(
    run: &RunTrace,
    mut writer: TraceWriter<W>,
) -> Result<(W, TraceSummary), StoreError> {
    let seconds = run.seconds();
    for m in &run.machines {
        let vm = &m.validity;
        let ragged = (!vm.counters.is_empty() && vm.counters.len() < seconds)
            || (!vm.meter.is_empty() && vm.meter.len() < seconds)
            || (!vm.alive.is_empty() && vm.alive.len() < seconds);
        if ragged {
            return Err(shape(format!(
                "machine {}: validity mask shorter than {seconds} seconds",
                m.machine_id
            )));
        }
    }
    for t in 0..seconds {
        let rows: Vec<SecondRow<'_>> = run
            .machines
            .iter()
            .map(|m| SecondRow {
                counters: &m.counters[t],
                measured_power_w: m.measured_power_w[t],
                true_power_w: m.true_power_w[t],
                counter_ok: (!m.validity.counters.is_empty())
                    .then(|| m.validity.counters[t].as_slice()),
                meter_ok: (!m.validity.meter.is_empty()).then(|| m.validity.meter[t]),
                alive: (!m.validity.alive.is_empty()).then(|| m.validity.alive[t]),
            })
            .collect();
        writer.push_second(&rows)?;
    }
    Ok(writer.finish()?)
}

/// Writes `run` to `w` in CHAOSCOL format with `block_s`-second blocks.
///
/// The trace covers `run.seconds()` seconds (the minimum across
/// machines); a non-empty validity mask shorter than that is a
/// [`StoreError::Shape`]. Pass [`DEFAULT_BLOCK_SECONDS`] unless you
/// have a reason not to.
///
/// # Errors
///
/// [`StoreError::Shape`] for ragged masks, [`StoreError::Trace`] for
/// I/O or encoding failures.
pub fn export_trace<W: Write>(
    run: &RunTrace,
    w: W,
    block_s: usize,
) -> Result<(W, TraceSummary), StoreError> {
    write_rows(run, TraceWriter::new(w, &meta_of(run), block_s)?)
}

/// Writes `run` to a CHAOSCOL file at `path`. See [`export_trace`].
///
/// # Errors
///
/// Same conditions as [`export_trace`].
pub fn export_trace_path(
    run: &RunTrace,
    path: impl AsRef<Path>,
    block_s: usize,
) -> Result<TraceSummary, StoreError> {
    let writer = TraceWriter::create_path(path.as_ref(), &meta_of(run), block_s)?;
    let (_, summary) = write_rows(run, writer)?;
    Ok(summary)
}

// ---------------------------------------------------------------------
// CHAOSCOL → RunTrace
// ---------------------------------------------------------------------

fn platform_of(name: &str) -> Result<Platform, StoreError> {
    name.parse().map_err(|_| StoreError::UnknownPlatform {
        name: name.to_string(),
    })
}

fn membership_of(meta: &TraceMeta) -> Result<Vec<MembershipEvent>, StoreError> {
    let to_usize = |v: u64, what: &str| -> Result<usize, StoreError> {
        usize::try_from(v).map_err(|_| shape(format!("{what} {v} does not fit usize")))
    };
    let donor_of = |d: &Option<u64>| -> Result<Option<usize>, StoreError> {
        d.map(|v| to_usize(v, "donor id")).transpose()
    };
    meta.membership
        .iter()
        .map(|e| {
            let kind = match &e.kind {
                EventKind::Join { donor } => MembershipKind::Join {
                    donor: donor_of(donor)?,
                },
                EventKind::Leave => MembershipKind::Leave,
                EventKind::Replace { donor } => MembershipKind::Replace {
                    donor: donor_of(donor)?,
                },
            };
            Ok(MembershipEvent {
                t: to_usize(e.t, "event second")?,
                machine_id: to_usize(e.machine_id, "machine id")?,
                kind,
            })
        })
        .collect()
}

/// Reads an entire CHAOSCOL stream back into an in-memory [`RunTrace`],
/// bit-identical to the trace that was exported.
///
/// # Errors
///
/// [`StoreError::Trace`] for corruption, [`StoreError::UnknownPlatform`]
/// or [`StoreError::Shape`] for metadata this crate cannot represent.
pub fn import_trace<R: Read + Seek>(r: R) -> Result<RunTrace, StoreError> {
    let mut src = DiskSource::new(TraceReader::new(r)?)?;
    src.materialize()
}

/// Reads a CHAOSCOL file at `path` into a [`RunTrace`]. See
/// [`import_trace`].
///
/// # Errors
///
/// Same conditions as [`import_trace`].
pub fn import_trace_path(path: impl AsRef<Path>) -> Result<RunTrace, StoreError> {
    let mut src = DiskSource::open_path(path)?;
    src.materialize()
}

// ---------------------------------------------------------------------
// SampleSource
// ---------------------------------------------------------------------

/// A contiguous run of cluster-seconds handed out by a
/// [`SampleSource`].
///
/// Machine rows cover seconds `start - lag .. start + len()`; index
/// into them with [`local`](TraceChunk::local). The `lag` rows exist
/// only as context for lagged-feature assembly — they were already
/// payload in the previous chunk and must not be estimated twice.
#[derive(Debug, Clone)]
pub struct TraceChunk {
    /// First global second this chunk is payload for.
    pub start: usize,
    /// Context rows preceding `start` in each machine's vectors.
    pub lag: usize,
    /// Per-machine rows, machine order, `lag + len()` seconds each.
    pub machines: Vec<MachineRunTrace>,
}

impl TraceChunk {
    /// Payload seconds in this chunk (context rows excluded).
    pub fn len(&self) -> usize {
        self.machines
            .iter()
            .map(|m| m.seconds())
            .min()
            .unwrap_or(0)
            .saturating_sub(self.lag)
    }

    /// Whether the chunk carries no payload seconds.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maps a global second to a row index into this chunk's machines.
    pub fn local(&self, t: usize) -> usize {
        t - self.start + self.lag
    }
}

/// Where cluster samples come from: memory or disk, one interface.
///
/// Consumers drain [`next_chunk`](SampleSource::next_chunk) until it
/// returns `None`; chunks arrive in order and partition the trace's
/// seconds exactly. The estimator guarantees bit-identical results
/// across sources and chunkings (see
/// `RobustEstimator::estimate_source`).
pub trait SampleSource {
    /// Workload label of the underlying run.
    fn workload(&self) -> &str;
    /// Seed of the run that produced the samples.
    fn run_seed(&self) -> u64;
    /// Number of machine streams.
    fn machines(&self) -> usize;
    /// Total payload seconds the source will hand out.
    fn seconds(&self) -> usize;
    /// The run's membership-churn schedule, upstream order.
    fn membership(&self) -> &[MembershipEvent];

    /// Hands out the next chunk, or `None` when the trace is drained.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the backing store fails mid-stream.
    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StoreError>;

    /// Drains the source into one in-memory [`RunTrace`].
    ///
    /// Needed by consumers whose access pattern is inherently global
    /// (e.g. membership warm-starts that read donor state at segment
    /// boundaries). Chunk-at-a-time consumers should prefer
    /// [`next_chunk`](SampleSource::next_chunk).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the backing store fails, or
    /// [`StoreError::Shape`] if the drained chunks do not add up to
    /// [`seconds`](SampleSource::seconds).
    fn materialize(&mut self) -> Result<RunTrace, StoreError> {
        let mut machines: Option<Vec<MachineRunTrace>> = None;
        let mut covered = 0usize;
        while let Some(chunk) = self.next_chunk()? {
            covered += chunk.len();
            match machines.as_mut() {
                None => {
                    if chunk.lag != 0 {
                        return Err(shape("first chunk carries lag context"));
                    }
                    machines = Some(chunk.machines);
                }
                Some(acc) => {
                    if acc.len() != chunk.machines.len() {
                        return Err(shape("chunk machine count changed mid-stream"));
                    }
                    for (dst, src) in acc.iter_mut().zip(chunk.machines) {
                        append_rows(dst, src, chunk.lag)?;
                    }
                }
            }
        }
        if covered != self.seconds() {
            return Err(shape(format!(
                "chunks covered {covered} of {} seconds",
                self.seconds()
            )));
        }
        Ok(RunTrace {
            workload: self.workload().to_string(),
            run_seed: self.run_seed(),
            machines: machines.unwrap_or_default(),
            membership: self.membership().to_vec(),
        })
    }
}

/// Appends `src`'s payload rows (skipping `lag` context rows) onto
/// `dst`.
fn append_rows(
    dst: &mut MachineRunTrace,
    src: MachineRunTrace,
    lag: usize,
) -> Result<(), StoreError> {
    if src.seconds() < lag {
        return Err(shape("chunk shorter than its own lag"));
    }
    dst.counters.extend(src.counters.into_iter().skip(lag));
    dst.measured_power_w
        .extend(src.measured_power_w.into_iter().skip(lag));
    dst.true_power_w
        .extend(src.true_power_w.into_iter().skip(lag));
    let masks_agree = dst.validity.counters.is_empty() == src.validity.counters.is_empty()
        && dst.validity.meter.is_empty() == src.validity.meter.is_empty()
        && dst.validity.alive.is_empty() == src.validity.alive.is_empty();
    if !masks_agree {
        return Err(shape("chunk mask presence changed mid-stream"));
    }
    dst.validity
        .counters
        .extend(src.validity.counters.into_iter().skip(lag));
    dst.validity
        .meter
        .extend(src.validity.meter.into_iter().skip(lag));
    dst.validity
        .alive
        .extend(src.validity.alive.into_iter().skip(lag));
    Ok(())
}

/// A [`SampleSource`] over an in-memory [`RunTrace`], chunked the same
/// way a disk trace would be so the chunked code path is exercised —
/// and proven bit-identical — even without a file.
#[derive(Debug)]
pub struct MemorySource<'a> {
    run: &'a RunTrace,
    chunk_s: usize,
    cursor: usize,
    seconds: usize,
}

impl<'a> MemorySource<'a> {
    /// A source over `run` with [`DEFAULT_BLOCK_SECONDS`]-second chunks.
    pub fn new(run: &'a RunTrace) -> Self {
        Self::with_chunk_seconds(run, DEFAULT_BLOCK_SECONDS)
    }

    /// A source over `run` handing out `chunk_s`-second chunks
    /// (minimum 1).
    pub fn with_chunk_seconds(run: &'a RunTrace, chunk_s: usize) -> Self {
        MemorySource {
            run,
            chunk_s: chunk_s.max(1),
            cursor: 0,
            seconds: run.seconds(),
        }
    }
}

/// Clones rows `from..to` of one machine (`from` may include lag
/// context). Masks stay empty when the machine's mask is empty.
fn slice_machine(m: &MachineRunTrace, from: usize, to: usize) -> MachineRunTrace {
    MachineRunTrace {
        machine_id: m.machine_id,
        platform: m.platform,
        counters: m.counters[from..to].to_vec(),
        measured_power_w: m.measured_power_w[from..to].to_vec(),
        true_power_w: m.true_power_w[from..to].to_vec(),
        validity: ValidityMask {
            counters: if m.validity.counters.is_empty() {
                Vec::new()
            } else {
                m.validity.counters[from..to].to_vec()
            },
            meter: if m.validity.meter.is_empty() {
                Vec::new()
            } else {
                m.validity.meter[from..to].to_vec()
            },
            alive: if m.validity.alive.is_empty() {
                Vec::new()
            } else {
                m.validity.alive[from..to].to_vec()
            },
        },
    }
}

impl SampleSource for MemorySource<'_> {
    fn workload(&self) -> &str {
        &self.run.workload
    }

    fn run_seed(&self) -> u64 {
        self.run.run_seed
    }

    fn machines(&self) -> usize {
        self.run.machines.len()
    }

    fn seconds(&self) -> usize {
        self.seconds
    }

    fn membership(&self) -> &[MembershipEvent] {
        &self.run.membership
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StoreError> {
        if self.cursor >= self.seconds {
            return Ok(None);
        }
        let start = self.cursor;
        let end = (start + self.chunk_s).min(self.seconds);
        let lag = usize::from(start > 0);
        let machines = self
            .run
            .machines
            .iter()
            .map(|m| slice_machine(m, start - lag, end))
            .collect();
        self.cursor = end;
        Ok(Some(TraceChunk {
            start,
            lag,
            machines,
        }))
    }

    fn materialize(&mut self) -> Result<RunTrace, StoreError> {
        self.cursor = self.seconds;
        Ok(self.run.clone())
    }
}

/// A [`SampleSource`] streaming a CHAOSCOL trace block by block.
///
/// Working memory is one block (`machines × block_seconds × width`),
/// independent of trace length; each machine's previous second is
/// cached between blocks to serve as the next chunk's lag context.
#[derive(Debug)]
pub struct DiskSource<R: Read + Seek> {
    reader: TraceReader<R>,
    workload: String,
    run_seed: u64,
    membership: Vec<MembershipEvent>,
    platforms: Vec<Platform>,
    machine_ids: Vec<usize>,
    next_block: usize,
    /// Last payload row of the previous block, per machine.
    lag_rows: Option<Vec<MachineRunTrace>>,
}

impl DiskSource<BufReader<std::fs::File>> {
    /// Opens a CHAOSCOL file as a sample source.
    ///
    /// # Errors
    ///
    /// [`StoreError::Trace`] for unreadable or corrupt files, plus the
    /// metadata conditions of [`DiskSource::new`].
    pub fn open_path(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        DiskSource::new(TraceReader::open_path(path.as_ref())?)
    }
}

impl<R: Read + Seek> DiskSource<R> {
    /// Wraps an open [`TraceReader`], validating that its metadata maps
    /// onto this crate's model (Table I platforms, usize-sized ids).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownPlatform`] or [`StoreError::Shape`] when it
    /// does not.
    pub fn new(reader: TraceReader<R>) -> Result<Self, StoreError> {
        let meta = reader.meta();
        let platforms = meta
            .machines
            .iter()
            .map(|m| platform_of(&m.platform))
            .collect::<Result<Vec<_>, _>>()?;
        let machine_ids = meta
            .machines
            .iter()
            .map(|m| {
                usize::try_from(m.machine_id)
                    .map_err(|_| shape(format!("machine id {} does not fit usize", m.machine_id)))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let membership = membership_of(meta)?;
        if usize::try_from(reader.seconds()).is_err() {
            return Err(shape("trace length does not fit usize"));
        }
        Ok(DiskSource {
            workload: meta.workload.clone(),
            run_seed: meta.run_seed,
            membership,
            platforms,
            machine_ids,
            next_block: 0,
            lag_rows: None,
            reader,
        })
    }

    /// The underlying reader (e.g. for seeks between chunk drains).
    pub fn reader(&mut self) -> &mut TraceReader<R> {
        &mut self.reader
    }
}

impl<R: Read + Seek> SampleSource for DiskSource<R> {
    fn workload(&self) -> &str {
        &self.workload
    }

    fn run_seed(&self) -> u64 {
        self.run_seed
    }

    fn machines(&self) -> usize {
        self.platforms.len()
    }

    fn seconds(&self) -> usize {
        self.reader.seconds() as usize
    }

    fn membership(&self) -> &[MembershipEvent] {
        &self.membership
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StoreError> {
        if self.next_block >= self.reader.blocks() {
            return Ok(None);
        }
        let block = self.reader.read_block(self.next_block)?;
        self.next_block += 1;
        let start =
            usize::try_from(block.start).map_err(|_| shape("block start does not fit usize"))?;
        let lag = usize::from(self.lag_rows.is_some());
        let mut machines = Vec::with_capacity(self.platforms.len());
        for (i, mb) in block.machines.iter().enumerate() {
            let mut m = MachineRunTrace {
                machine_id: self.machine_ids[i],
                platform: self.platforms[i],
                counters: Vec::with_capacity(lag + block.rows),
                measured_power_w: Vec::with_capacity(lag + block.rows),
                true_power_w: Vec::with_capacity(lag + block.rows),
                validity: ValidityMask {
                    counters: Vec::new(),
                    meter: Vec::new(),
                    alive: Vec::new(),
                },
            };
            if let Some(prev) = self.lag_rows.as_ref() {
                let p = &prev[i];
                m.counters.extend(p.counters.iter().cloned());
                m.measured_power_w.extend(p.measured_power_w.iter());
                m.true_power_w.extend(p.true_power_w.iter());
                m.validity
                    .counters
                    .extend(p.validity.counters.iter().cloned());
                m.validity.meter.extend(p.validity.meter.iter());
                m.validity.alive.extend(p.validity.alive.iter());
            }
            for r in 0..block.rows {
                m.counters.push(mb.counters_row(r).unwrap_or(&[]).to_vec());
                m.measured_power_w.push(mb.measured(r).unwrap_or(f64::NAN));
                m.true_power_w.push(mb.truth(r).unwrap_or(f64::NAN));
                if let Some(ok) = mb.counter_ok_row(r) {
                    m.validity.counters.push(ok.to_vec());
                }
                if let Some(ok) = mb.meter_ok_at(r) {
                    m.validity.meter.push(ok);
                }
                if let Some(a) = mb.alive_at(r) {
                    m.validity.alive.push(a);
                }
            }
            machines.push(m);
        }
        // Cache each machine's final row as the next chunk's lag
        // context.
        if block.rows > 0 {
            let last: Vec<MachineRunTrace> = machines
                .iter()
                .map(|m| {
                    let n = m.seconds();
                    slice_machine(m, n - 1, n)
                })
                .collect();
            self.lag_rows = Some(last);
        }
        Ok(Some(TraceChunk {
            start,
            lag,
            machines,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_run, RunTrace};
    use crate::{CounterCatalog, FaultPlan};
    use chaos_sim::Cluster;
    use chaos_workloads::{SimConfig, Workload};
    use std::io::Cursor;

    fn small_run() -> RunTrace {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 1);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        collect_run(
            &cluster,
            &catalog,
            Workload::WordCount,
            &SimConfig::quick(),
            11,
        )
        .expect("quick run collects")
    }

    fn faulted_run() -> RunTrace {
        let plan = FaultPlan::new(7)
            .with_counter_dropout(0.05)
            .with_meter_outages(0.02, 3)
            .with_glitches(0.02, 4.0)
            .with_crashes(0.01);
        plan.apply(&small_run())
    }

    #[test]
    fn export_import_round_trips_bit_exactly() {
        for run in [small_run(), faulted_run()] {
            let (bytes, summary) = export_trace(&run, Vec::new(), 16).expect("export");
            assert_eq!(summary.seconds as usize, run.seconds());
            let back = import_trace(Cursor::new(&bytes)).expect("import");
            assert_eq!(back, run, "CHAOSCOL round trip drifted");
        }
    }

    #[test]
    fn membership_and_donors_round_trip() {
        let base = small_run();
        let machines = base.machines.len();
        let run = base.tiled_to(machines).expect("tile").with_membership(vec![
            MembershipEvent::join(3, 1, Some(0)),
            MembershipEvent::join(5, 2, None),
            MembershipEvent::leave(9, 0),
            MembershipEvent::replace(12, 1, None),
        ]);
        let (bytes, _) = export_trace(&run, Vec::new(), 8).expect("export");
        let back = import_trace(Cursor::new(&bytes)).expect("import");
        assert_eq!(back.membership, run.membership);
        assert_eq!(back, run);
    }

    #[test]
    fn memory_and_disk_sources_agree_chunk_by_chunk() {
        let run = faulted_run();
        let (bytes, _) = export_trace(&run, Vec::new(), 16).expect("export");
        let mut mem = MemorySource::with_chunk_seconds(&run, 16);
        let mut disk = DiskSource::new(TraceReader::new(Cursor::new(&bytes)).expect("open"))
            .expect("disk source");
        assert_eq!(mem.seconds(), disk.seconds());
        assert_eq!(mem.machines(), disk.machines());
        loop {
            let a = mem.next_chunk().expect("mem chunk");
            let b = disk.next_chunk().expect("disk chunk");
            match (a, b) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.start, b.start);
                    assert_eq!(a.lag, b.lag);
                    assert_eq!(a.machines, b.machines, "chunk content diverged");
                }
                (a, b) => panic!(
                    "chunk streams ended unevenly (mem some: {}, disk some: {})",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
    }

    #[test]
    fn materialize_equals_the_original_run() {
        let run = faulted_run();
        let (bytes, _) = export_trace(&run, Vec::new(), 8).expect("export");
        let mut disk =
            DiskSource::new(TraceReader::new(Cursor::new(&bytes)).expect("open")).expect("src");
        assert_eq!(disk.materialize().expect("materialize"), run);
        let mut mem = MemorySource::new(&run);
        assert_eq!(mem.materialize().expect("materialize"), run);
    }

    #[test]
    fn corrupt_bytes_surface_as_store_errors() {
        let run = small_run();
        let (mut bytes, _) = export_trace(&run, Vec::new(), 16).expect("export");
        bytes[0] = b'X';
        assert!(matches!(
            import_trace(Cursor::new(&bytes)),
            Err(StoreError::Trace(TraceError::BadMagic))
        ));
    }

    #[test]
    fn unknown_platform_is_refused() {
        // Rewriting a platform string in place would break the frame
        // checksum, so go through the real writer with doctored meta:
        // a trace whose platform chaos-sim cannot parse.
        let meta = TraceMeta {
            workload: "x".into(),
            run_seed: 0,
            machines: vec![MachineMeta::new(0, "Pentium4", 1)],
            membership: Vec::new(),
        };
        let mut w = TraceWriter::new(Vec::new(), &meta, 4).expect("writer");
        w.push_second(&[SecondRow::clean(&[1.0], 2.0, 3.0)])
            .expect("push");
        let (doctored, _) = w.finish().expect("finish");
        assert!(matches!(
            import_trace(Cursor::new(&doctored)),
            Err(StoreError::UnknownPlatform { name }) if name == "Pentium4"
        ));
    }
}
