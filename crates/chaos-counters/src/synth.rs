//! Stateful per-machine counter synthesis from hidden machine state.

use crate::catalog::{CounterCatalog, CounterKind, SignalSource};
use chaos_sim::{MachineState, PlatformSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Average bytes per disk transfer (drives ops/sec counters).
const DISK_XFER_BYTES: f64 = 56e3;
/// Average bytes per network packet.
const NET_PKT_BYTES: f64 = 1460.0;

/// Synthesizes one machine's counter readings, second by second.
///
/// Holds the per-machine sensitivity gains (machines report slightly
/// different magnitudes for the same activity — part of what makes
/// per-machine feature sets differ in Algorithm 1 step 5), random-walk
/// states for the information-free counters, and running peaks for the
/// `…Peak` counters.
#[derive(Debug, Clone)]
pub struct CounterSynth {
    gains: Vec<f64>,
    walk: Vec<f64>,
    page_file_peak: f64,
    working_set_peak: f64,
    rng: ChaCha8Rng,
    nic_bw: f64,
    mem_bytes: f64,
    cores: usize,
    max_freq_mhz: f64,
}

impl CounterSynth {
    /// Creates a synthesizer for one machine, deriving both the fixed
    /// per-machine sensitivities and the per-sample noise stream from one
    /// seed. For multi-run collections use [`CounterSynth::with_seeds`]
    /// so the sensitivities stay fixed across runs.
    pub fn new(catalog: &CounterCatalog, spec: &PlatformSpec, seed: u64) -> Self {
        Self::with_seeds(catalog, spec, seed, seed)
    }

    /// Creates a synthesizer whose fixed sensitivities come from
    /// `machine_seed` (a property of the physical machine — identical
    /// across runs) while the observation-noise stream comes from
    /// `noise_seed` (fresh per run).
    pub fn with_seeds(
        catalog: &CounterCatalog,
        spec: &PlatformSpec,
        machine_seed: u64,
        noise_seed: u64,
    ) -> Self {
        let mut gain_rng = ChaCha8Rng::seed_from_u64(machine_seed);
        let rng = ChaCha8Rng::seed_from_u64(noise_seed);
        let gains: Vec<f64> = catalog
            .defs()
            .iter()
            .map(|_| gain_rng.gen_range(0.85..1.15_f64))
            .collect();
        let walk = vec![0.0; catalog.len()];
        CounterSynth {
            gains,
            walk,
            page_file_peak: 0.0,
            working_set_peak: 0.0,
            rng,
            nic_bw: spec.nic_max_bytes_per_sec,
            mem_bytes: spec.memory_gb * 1e9,
            cores: spec.cores,
            max_freq_mhz: spec.max_pstate().freq_mhz,
        }
    }

    /// Produces one second of counter readings for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is not the catalog this synthesizer was built
    /// with (length mismatch).
    pub fn step(&mut self, catalog: &CounterCatalog, state: &MachineState) -> Vec<f64> {
        assert_eq!(
            catalog.len(),
            self.gains.len(),
            "catalog does not match synthesizer"
        );
        let mut out = vec![0.0; catalog.len()];
        for (i, def) in catalog.defs().iter().enumerate() {
            let value = match def.kind {
                CounterKind::Signal { source, noise_frac } => {
                    let raw = self.signal_value(source, state);
                    let noisy = raw * self.gains[i] * (1.0 + noise_frac * self.unit_noise())
                        // A hair of additive noise keeps idle-constant
                        // counters from becoming exactly constant columns.
                        + noise_frac * 0.01 * self.unit_noise();
                    // Peak counters are monotone *as observed*: the OS
                    // reports the running maximum of the sampled value.
                    match source {
                        SignalSource::JodPageFileBytesPeak => {
                            self.page_file_peak = self.page_file_peak.max(noisy);
                            self.page_file_peak
                        }
                        SignalSource::JodWorkingSetPeak => {
                            self.working_set_peak = self.working_set_peak.max(noisy);
                            self.working_set_peak
                        }
                        _ => noisy,
                    }
                }
                CounterKind::Correlated {
                    base,
                    gain,
                    noise_frac,
                } => {
                    let b = out[base];
                    b * gain * (1.0 + noise_frac * self.unit_noise())
                        + noise_frac * 0.01 * self.unit_noise()
                }
                CounterKind::Sum { a, b } => out[a] + out[b],
                CounterKind::Noise { scale, walk } => {
                    if walk {
                        let step: f64 = self.rng.gen_range(-0.02..0.02);
                        self.walk[i] = (self.walk[i] + step).clamp(-1.0, 1.0);
                        scale * (1.0 + 0.5 * self.walk[i])
                    } else {
                        scale * self.rng.gen_range(0.0..1.0)
                    }
                }
            };
            out[i] = value.max(0.0);
        }
        out
    }

    /// Uniform noise in `[-1, 1]`.
    fn unit_noise(&mut self) -> f64 {
        self.rng.gen_range(-1.0..1.0)
    }

    /// Maps a semantic source to its physical value for this second.
    fn signal_value(&mut self, source: SignalSource, s: &MachineState) -> f64 {
        use SignalSource::*;
        let util = s.cpu_utilization();
        let disk_util = s.disk_util_frac;
        let net_frac = (s.net_total_bytes() / (2.0 * self.nic_bw)).min(1.0);
        let disk_ops = s.disk_total_bytes() / DISK_XFER_BYTES;
        let disk_read_ops = s.disk_read_bytes / DISK_XFER_BYTES;
        let disk_write_ops = s.disk_write_bytes / DISK_XFER_BYTES;
        let net_pkts = s.net_total_bytes() / NET_PKT_BYTES;
        let tasks = s.runnable_tasks;
        let priv_pct = (100.0 * (0.08 * util + 0.5 * disk_util + 0.35 * net_frac)).min(60.0);
        let page_faults = 500.0 + 30_000.0 * s.mem_bandwidth_frac + 800.0 * tasks;
        let pages = 4.0 + 900.0 * s.mem_bandwidth_frac + 0.25 * disk_ops;
        let committed = s.mem_committed_frac * self.mem_bytes;
        let working_set = 0.6 * committed;

        match source {
            CpuUtilPct => 100.0 * util,
            CpuUserPct => (100.0 * util - 0.6 * priv_pct).max(0.0),
            CpuPrivilegedPct => priv_pct.min(100.0 * util + 2.0),
            CpuIdlePct => 100.0 * (1.0 - util),
            CpuInterruptsPerSec => {
                120.0 + 1.2 * disk_ops + 0.9 * net_pkts + 60.0 * util * self.cores as f64
            }
            CpuDpcPct => (0.5 + 22.0 * net_frac + 9.0 * disk_util).min(40.0),
            CoreFreqMhz(core) => s.cores.get(core).map_or(0.0, |c| c.freq_mhz),
            CoreFreqPctMax(core) => s
                .cores
                .get(core)
                .map_or(0.0, |c| 100.0 * c.freq_mhz / self.max_freq_mhz),
            DiskBytesPerSec => s.disk_total_bytes(),
            DiskReadBytesPerSec => s.disk_read_bytes,
            DiskWriteBytesPerSec => s.disk_write_bytes,
            DiskTimePct => 100.0 * disk_util,
            DiskIdlePct => 100.0 * (1.0 - disk_util),
            DiskReadsPerSec => disk_read_ops,
            DiskWritesPerSec => disk_write_ops,
            DiskQueueLength => 8.0 * disk_util * disk_util,
            NetDatagramsPerSec => net_pkts * 0.45,
            NetBytesTotalPerSec => s.net_total_bytes(),
            NetBytesSentPerSec => s.net_tx_bytes,
            NetBytesRecvPerSec => s.net_rx_bytes,
            NetPacketsPerSec => net_pkts,
            NetOutputQueueLength => 4.0 * (s.net_tx_bytes / self.nic_bw).powi(2),
            PagesPerSec => pages,
            PageFaultsPerSec => page_faults,
            CacheFaultsPerSec => 300.0 + 25_000.0 * s.mem_bandwidth_frac + 2_000.0 * util,
            PageReadsPerSec => 0.25 * pages + 0.05 * disk_read_ops,
            PageWritesPerSec => 0.15 * pages + 0.03 * disk_write_ops,
            CommittedBytes => committed,
            PoolNonpagedAllocs => 8e4 + 2e4 * tasks + 5e-4 * s.net_total_bytes(),
            AvailableBytes => (1.0 - s.mem_committed_frac) * self.mem_bytes,
            TransitionFaultsPerSec => 0.4 * page_faults + 200.0 * util,
            DemandZeroFaultsPerSec => 0.3 * page_faults + 500.0 * util,
            ProcTotalPageFaultsPerSec => 0.9 * page_faults,
            ProcIoDataBytesPerSec => s.disk_total_bytes() + s.net_total_bytes(),
            ProcThreadCount => 120.0 + 15.0 * tasks,
            ProcHandleCount => 3_000.0 + 40.0 * tasks,
            ProcWorkingSet => working_set,
            FscDataMapPinsPerSec => 10.0 + 0.5 * disk_ops + 0.02 * net_pkts,
            FscPinReadsPerSec => 30.0 + 0.8 * disk_read_ops + 0.1 * disk_write_ops,
            FscPinReadHitsPct => (98.0 - 25.0 * disk_util).clamp(40.0, 99.5),
            FscCopyReadsPerSec => 50.0 + 1.1 * disk_read_ops,
            FscFastReadsNotPossiblePerSec => 2.0 + 0.1 * disk_write_ops + 0.05 * disk_read_ops,
            FscLazyWriteFlushesPerSec => 1.0 + 0.05 * disk_write_ops,
            FscDataMapsPerSec => 15.0 + 0.4 * disk_ops,
            FscReadAheadsPerSec => 0.3 * disk_read_ops,
            FscDirtyPages => 100.0 + 2e-5 * s.disk_write_bytes,
            FscLazyWritePagesPerSec => 0.8 * disk_write_ops,
            JodPageFileBytesPeak => 0.8 * committed,
            JodPageFileBytes => 0.8 * committed,
            JodVirtualBytes => 2.5 * committed,
            JodWorkingSetPeak => working_set,
            SysContextSwitchesPerSec => {
                500.0 + 1_500.0 * tasks + 0.5 * (1.2 * disk_ops + 0.9 * net_pkts)
            }
            SysSystemCallsPerSec => 2_000.0 + 30_000.0 * util + 2.0 * disk_ops + 1.5 * net_pkts,
            SysProcesses => 45.0 + 0.5 * tasks,
            SysThreads => 600.0 + 20.0 * tasks,
            SysProcessorQueueLength => (tasks - self.cores as f64).max(0.0) * 0.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_sim::{Machine, Platform, ResourceDemand};
    use rand::SeedableRng;

    fn setup(platform: Platform) -> (CounterCatalog, CounterSynth, Machine) {
        let spec = platform.spec();
        let catalog = CounterCatalog::for_platform(&spec);
        let synth = CounterSynth::new(&catalog, &spec, 7);
        let machine = Machine::nominal(platform, 0);
        (catalog, synth, machine)
    }

    #[test]
    fn step_produces_one_value_per_counter() {
        let (catalog, mut synth, machine) = setup(Platform::Core2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let state = machine.apply_demand(&ResourceDemand::cpu_only(1.0), &mut rng);
        let row = synth.step(&catalog, &state);
        assert_eq!(row.len(), catalog.len());
        assert!(row.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn utilization_counter_tracks_state() {
        let (catalog, mut synth, machine) = setup(Platform::Athlon);
        let idx = catalog
            .index_of("Processor\\% Processor Time (_Total)")
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let idle = machine.apply_demand(&ResourceDemand::idle(), &mut rng);
        let busy = machine.apply_demand(&ResourceDemand::cpu_only(2.0), &mut rng);
        let idle_v = synth.step(&catalog, &idle)[idx];
        let busy_v = synth.step(&catalog, &busy)[idx];
        assert!(idle_v < 10.0, "idle {idle_v}");
        assert!(busy_v > 80.0, "busy {busy_v}");
    }

    #[test]
    fn frequency_counter_reports_core0() {
        let (catalog, mut synth, machine) = setup(Platform::Core2);
        let idx = catalog
            .index_of("Processor Performance\\Processor Frequency (Processor_0)")
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let busy = machine.apply_demand(&ResourceDemand::cpu_only(2.0), &mut rng);
        let v = synth.step(&catalog, &busy)[idx];
        // Gain is within ±15%, frequency 2260.
        assert!((1800.0..2700.0).contains(&v), "freq counter {v}");
    }

    #[test]
    fn sum_counters_are_exact_sums() {
        let (catalog, mut synth, machine) = setup(Platform::XeonSas);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let d = ResourceDemand {
            disk_read_bytes: 40e6,
            disk_write_bytes: 30e6,
            ..ResourceDemand::cpu_only(2.0)
        };
        let state = machine.apply_demand(&d, &mut rng);
        let row = synth.step(&catalog, &state);
        for (i, a, b) in catalog.codependent_sums() {
            assert!(
                (row[i] - (row[a] + row[b])).abs() < 1e-9,
                "{}",
                catalog.def(i).name
            );
        }
    }

    #[test]
    fn correlated_aliases_track_their_base() {
        let (catalog, mut synth, machine) = setup(Platform::Opteron);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Gather 200 samples of varying load and check |r| > 0.95 for a
        // known alias pair.
        let base = catalog
            .index_of("Processor\\% Processor Time (_Total)")
            .unwrap();
        let alias = catalog
            .index_of("Processor\\% Processor Utility (_Total)")
            .unwrap();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let cores = (i % 9) as f64;
            let state = machine.apply_demand(&ResourceDemand::cpu_only(cores), &mut rng);
            let row = synth.step(&catalog, &state);
            xs.push(row[base]);
            ys.push(row[alias]);
        }
        let r = chaos_stats::corr::pearson(&xs, &ys).unwrap();
        assert!(r > 0.95, "alias correlation {r}");
    }

    #[test]
    fn peak_counters_are_monotone() {
        let (catalog, mut synth, machine) = setup(Platform::Core2);
        let idx = catalog
            .index_of("Job Object Details\\Total Page File Bytes Peak")
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut prev = 0.0;
        for i in 0..50 {
            let d = ResourceDemand {
                mem_committed_frac: 0.1 + 0.01 * (i % 30) as f64,
                ..ResourceDemand::cpu_only(1.0)
            };
            let state = machine.apply_demand(&d, &mut rng);
            let v = synth.step(&catalog, &state)[idx];
            assert!(v >= prev - 1e-6, "peak decreased at {i}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let spec = Platform::Atom.spec();
        let catalog = CounterCatalog::for_platform(&spec);
        let machine = Machine::nominal(Platform::Atom, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let state = machine.apply_demand(&ResourceDemand::cpu_only(1.5), &mut rng);
        let mut s1 = CounterSynth::new(&catalog, &spec, 99);
        let mut s2 = CounterSynth::new(&catalog, &spec, 99);
        assert_eq!(s1.step(&catalog, &state), s2.step(&catalog, &state));
        let mut s3 = CounterSynth::new(&catalog, &spec, 100);
        assert_ne!(s1.step(&catalog, &state), s3.step(&catalog, &state));
    }

    #[test]
    fn catalogs_differ_across_core_counts() {
        // Catalogs pad to the same ~250 length, but their contents differ:
        // the Xeon exposes eight per-core frequency counters, the Atom two.
        let cat_a = CounterCatalog::for_platform(&Platform::Atom.spec());
        let cat_x = CounterCatalog::for_platform(&Platform::XeonSas.spec());
        assert!(cat_a
            .index_of("Processor Performance\\Processor Frequency (Processor_7)")
            .is_none());
        assert!(cat_x
            .index_of("Processor Performance\\Processor Frequency (Processor_7)")
            .is_some());
    }
}
