//! Property-based tests for counter synthesis and trace collection.

use chaos_counters::{collect_run, CounterCatalog, CounterKind, CounterSynth, FaultPlan};
use chaos_sim::{Cluster, Machine, Platform, ResourceDemand};
use chaos_workloads::{SimConfig, Workload};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_platform() -> impl Strategy<Value = Platform> {
    prop_oneof![
        Just(Platform::Atom),
        Just(Platform::Core2),
        Just(Platform::Opteron),
        Just(Platform::XeonSas),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every synthesized counter value is finite and non-negative, and
    /// the definitional sums hold exactly, for arbitrary demands.
    #[test]
    fn synthesis_invariants(
        platform in any_platform(),
        cpu in 0.0..8.0f64,
        disk in 0.0..5e8f64,
        net in 0.0..2e8f64,
        seed in 0u64..200,
    ) {
        let spec = platform.spec();
        let catalog = CounterCatalog::for_platform(&spec);
        let machine = Machine::nominal(platform, 0);
        let mut synth = CounterSynth::new(&catalog, &spec, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let demand = ResourceDemand {
            cpu_cores: cpu,
            disk_read_bytes: disk,
            net_rx_bytes: net,
            ..ResourceDemand::idle()
        };
        for _ in 0..5 {
            let state = machine.apply_demand(&demand, &mut rng);
            let row = synth.step(&catalog, &state);
            for (i, v) in row.iter().enumerate() {
                prop_assert!(v.is_finite() && *v >= 0.0, "{}: {v}", catalog.def(i).name);
            }
            for (s, a, b) in catalog.codependent_sums() {
                prop_assert!((row[s] - (row[a] + row[b])).abs() < 1e-9);
            }
        }
    }

    /// Collection is reproducible: identical (cluster, workload, seed)
    /// triples produce identical traces.
    #[test]
    fn collection_reproducible(seed in 0u64..20) {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 9);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let a = collect_run(&cluster, &catalog, Workload::WordCount, &SimConfig::quick(), seed);
        let b = collect_run(&cluster, &catalog, Workload::WordCount, &SimConfig::quick(), seed);
        prop_assert!(a.is_ok());
        prop_assert_eq!(a.unwrap(), b.unwrap());
    }

    /// Measured power tracks ground truth within the meter's class for
    /// every second of every machine.
    #[test]
    fn meter_tracks_truth(seed in 0u64..10) {
        let cluster = Cluster::homogeneous(Platform::Core2, 2, 4);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let run =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), seed).unwrap();
        for m in &run.machines {
            for (meas, truth) in m.measured_power_w.iter().zip(&m.true_power_w) {
                prop_assert!((meas - truth).abs() <= truth * 0.016 + 0.45);
            }
        }
    }

    /// A fault plan with every rate at zero is the identity on any trace.
    #[test]
    fn zero_rate_fault_plan_is_identity(seed in 0u64..20, plan_seed in 0u64..1000) {
        let cluster = Cluster::homogeneous(Platform::Atom, 2, 6);
        let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
        let run =
            collect_run(&cluster, &catalog, Workload::Sort, &SimConfig::quick(), seed).unwrap();
        prop_assert_eq!(FaultPlan::new(plan_seed).apply(&run), run);
    }

    /// Injection never changes the shape of a trace: machine count,
    /// per-machine seconds, counter width, and power-series lengths all
    /// survive, the validity mask matches the trace shape, and the
    /// faulted trace still passes validation (NaNs excused by the mask).
    #[test]
    fn fault_injection_preserves_shape(
        seed in 0u64..10,
        dropout in 0.0..0.5f64,
        crash in 0.0..1.0f64,
    ) {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 4);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let run =
            collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), seed).unwrap();
        let faulted = FaultPlan::new(seed ^ 0xF00D)
            .with_counter_dropout(dropout)
            .with_stuck_counters(0.05)
            .with_meter_outages(0.02, 6)
            .with_glitches(0.05, 0.4)
            .with_crashes(crash)
            .apply(&run);
        prop_assert_eq!(faulted.machines.len(), run.machines.len());
        for (f, o) in faulted.machines.iter().zip(&run.machines) {
            prop_assert_eq!(f.seconds(), o.seconds());
            prop_assert_eq!(f.width(), o.width());
            prop_assert_eq!(f.measured_power_w.len(), o.measured_power_w.len());
            // Ground truth is never touched by injection.
            prop_assert_eq!(&f.true_power_w, &o.true_power_w);
        }
        prop_assert!(faulted.validate().is_ok());
    }

    /// Injection is reproducible: the same plan applied twice to the same
    /// trace yields identical faulted traces.
    #[test]
    fn fault_injection_reproducible(seed in 0u64..10, plan_seed in 0u64..100) {
        let cluster = Cluster::homogeneous(Platform::Opteron, 2, 5);
        let catalog = CounterCatalog::for_platform(&Platform::Opteron.spec());
        let run =
            collect_run(&cluster, &catalog, Workload::WordCount, &SimConfig::quick(), seed)
                .unwrap();
        let plan = FaultPlan::new(plan_seed)
            .with_counter_dropout(0.15)
            .with_meter_outages(0.03, 4)
            .with_crashes(0.3);
        prop_assert_eq!(plan.apply(&run), plan.apply(&run));
    }

    /// Catalog structure is stable: ~250 counters, all reference kinds
    /// point backwards, names unique.
    #[test]
    fn catalog_structure(platform in any_platform()) {
        let catalog = CounterCatalog::for_platform(&platform.spec());
        prop_assert!(catalog.len() >= 240 && catalog.len() <= 260);
        let mut names = std::collections::HashSet::new();
        for (i, d) in catalog.defs().iter().enumerate() {
            prop_assert!(names.insert(d.name.clone()), "dup {}", d.name);
            match d.kind {
                CounterKind::Correlated { base, .. } => prop_assert!(base < i),
                CounterKind::Sum { a, b } => prop_assert!(a < i && b < i),
                _ => {}
            }
        }
    }
}
