//! Content-hash incremental cache for pass-1 analyses.
//!
//! A [`crate::FileAnalysis`] is a pure function of a file's bytes, so
//! the cache keys each entry on an FNV-1a hash of those bytes plus a
//! run *fingerprint* covering the rule registry and [`Config`]. A warm
//! run re-hashes every file (cheap) and replays unchanged analyses
//! instead of re-lexing; pass 2 always runs over the full set, so the
//! resulting report is byte-identical to a cold run — a property the
//! `cache_identity` integration test pins.
//!
//! # Format
//!
//! Plain text, one record per line, tab-separated fields with
//! `\t`/`\n`/`\\` escaped. The header names the format version and the
//! fingerprint; any mismatch, short read, or malformed line discards
//! the whole cache silently (the cost of a false miss is one cold run;
//! the cost of a false hit would be a stale report).
//!
//! ```text
//! chaos-lint-cache/2 <fingerprint-hex>
//! H <content-hash-hex> <rel-path>        # starts one file's entry
//! G <forbid> <denydocs> <role> <crate>   # file globals
//! F <rule> <line> <message> <hint>       # raw finding
//! D <scope> <line> <cover_end> <rules,> <reason|->
//! P <line> <message>                     # directive problem
//! M <line> <message>                     # marker problem
//! N <name> <qual|-> <mods,|-> <line> <end> <flags> <index-lines,|->
//! C <kind> <path::...> <line> <flags>    # call site of the last N
//! ```

use crate::directive::Scope;
use crate::report::Finding;
use crate::rules::{Config, RULES};
use crate::scan::FileRole;
use crate::symbols::{CallKind, CallSite, FnDef};
use crate::{CachedDirective, FileAnalysis};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// FNV-1a 64-bit hash of a byte string — the content key. Dependency-
/// free and stable across platforms; collision risk over a few hundred
/// workspace files is negligible, and a collision only yields a stale
/// lint report, never wrong program behavior.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of everything besides file bytes that shapes a
/// [`FileAnalysis`]: the rule registry (IDs, summaries, hints — a
/// reworded hint changes findings byte-for-byte) and the [`Config`].
/// Editing rules.rs therefore invalidates the cache wholesale.
pub fn fingerprint(cfg: &Config) -> u64 {
    let mut acc = String::from("chaos-lint-cache/2\x1f");
    for r in &RULES {
        for part in [r.id, r.name, r.summary, r.hint] {
            acc.push_str(part);
            acc.push('\x1f');
        }
    }
    for c in &cfg.r2_exempt_crates {
        acc.push_str(c);
        acc.push('\x1f');
    }
    for f in &cfg.r3_sanctioned_files {
        acc.push_str(f);
        acc.push('\x1f');
    }
    acc.push_str(&cfg.env_prefix);
    content_hash(acc.as_bytes())
}

/// The on-disk analysis cache: `rel_path → (content hash, analysis)`.
#[derive(Debug, Default)]
pub struct Cache {
    fingerprint: u64,
    entries: BTreeMap<String, (u64, FileAnalysis)>,
}

impl Cache {
    /// An empty cache bound to `fingerprint`.
    pub fn new(fingerprint: u64) -> Cache {
        Cache {
            fingerprint,
            entries: BTreeMap::new(),
        }
    }

    /// The fingerprint this cache was built under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of cached file entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached analysis for `rel_path`, iff its bytes still hash to
    /// `digest`.
    pub fn get(&self, rel_path: &str, digest: u64) -> Option<&FileAnalysis> {
        self.entries
            .get(rel_path)
            .filter(|(d, _)| *d == digest)
            .map(|(_, a)| a)
    }

    /// Inserts or replaces the entry for `rel_path`.
    pub fn store(&mut self, rel_path: String, digest: u64, analysis: FileAnalysis) {
        self.entries.insert(rel_path, (digest, analysis));
    }

    /// Loads a cache from `path`. Any problem — missing file, version
    /// or fingerprint mismatch, malformed record — yields an empty
    /// cache: a false miss costs one cold run, a false hit would cost
    /// correctness.
    pub fn load(path: &Path, fingerprint: u64) -> Cache {
        match std::fs::read_to_string(path) {
            Ok(text) => parse(&text, fingerprint).unwrap_or_else(|| Cache::new(fingerprint)),
            Err(_) => Cache::new(fingerprint),
        }
    }

    /// Writes the cache to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }

    /// Serializes the cache to its line format.
    pub fn render(&self) -> String {
        let mut out = format!("chaos-lint-cache/2 {:016x}\n", self.fingerprint);
        for (rel, (digest, a)) in &self.entries {
            out.push_str(&format!("H\t{digest:016x}\t{}\n", esc(rel)));
            out.push_str(&format!(
                "G\t{}\t{}\t{}\t{}\n",
                u8::from(a.has_forbid_unsafe),
                u8::from(a.has_deny_missing_docs),
                a.role.label(),
                esc(&a.crate_name)
            ));
            for f in &a.findings {
                out.push_str(&format!(
                    "F\t{}\t{}\t{}\t{}\n",
                    esc(&f.rule),
                    f.line,
                    esc(&f.message),
                    esc(&f.hint)
                ));
            }
            for d in &a.directives {
                out.push_str(&format!(
                    "D\t{}\t{}\t{}\t{}\t{}\n",
                    match d.scope {
                        Scope::Line => "line",
                        Scope::File => "file",
                    },
                    d.line,
                    d.cover_end,
                    d.rules.join(","),
                    d.reason.as_deref().map_or("-".to_string(), esc)
                ));
            }
            for (line, msg) in &a.problems {
                out.push_str(&format!("P\t{line}\t{}\n", esc(msg)));
            }
            for (line, msg) in &a.marker_problems {
                out.push_str(&format!("M\t{line}\t{}\n", esc(msg)));
            }
            for d in &a.fns {
                out.push_str(&format!(
                    "N\t{}\t{}\t{}\t{}\t{}\t{}{}{}{}{}\t{}\n",
                    esc(&d.name),
                    d.qualifier.as_deref().map_or("-".to_string(), esc),
                    if d.modules.is_empty() {
                        "-".to_string()
                    } else {
                        d.modules.join(",")
                    },
                    d.line,
                    d.end_line,
                    u8::from(d.is_test),
                    u8::from(d.has_body),
                    u8::from(d.hot),
                    u8::from(d.no_panic),
                    u8::from(d.cold),
                    if d.index_lines.is_empty() {
                        "-".to_string()
                    } else {
                        d.index_lines
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    }
                ));
                for c in &d.calls {
                    out.push_str(&format!(
                        "C\t{}\t{}\t{}\t{}{}{}\n",
                        c.kind.label(),
                        c.path.join("::"),
                        c.line,
                        u8::from(c.recv_self),
                        u8::from(c.in_par_scope),
                        u8::from(c.float_evidence)
                    ));
                }
            }
        }
        out
    }
}

/// Parses the cache text; `None` on any malformation.
fn parse(text: &str, fingerprint: u64) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let fp_hex = header.strip_prefix("chaos-lint-cache/2 ")?;
    if u64::from_str_radix(fp_hex, 16).ok()? != fingerprint {
        return None;
    }
    let mut cache = Cache::new(fingerprint);
    // (rel_path, digest, analysis) of the entry under construction.
    let mut cur: Option<(String, u64, FileAnalysis)> = None;
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["H", digest, rel] => {
                if let Some((rel, digest, a)) = cur.take() {
                    cache.store(rel, digest, a);
                }
                let rel = unesc(rel)?;
                cur = Some((
                    rel.clone(),
                    u64::from_str_radix(digest, 16).ok()?,
                    FileAnalysis {
                        rel_path: rel,
                        crate_name: String::new(),
                        role: FileRole::Lib,
                        findings: Vec::new(),
                        directives: Vec::new(),
                        problems: Vec::new(),
                        marker_problems: Vec::new(),
                        has_forbid_unsafe: false,
                        has_deny_missing_docs: false,
                        fns: Vec::new(),
                    },
                ));
            }
            ["G", forbid, denydocs, role, crate_name] => {
                let a = &mut cur.as_mut()?.2;
                a.has_forbid_unsafe = flag(forbid)?;
                a.has_deny_missing_docs = flag(denydocs)?;
                a.role = FileRole::from_label(role)?;
                a.crate_name = unesc(crate_name)?;
            }
            ["F", rule, line, message, hint] => {
                let (rel, _, a) = cur.as_mut()?;
                let file = rel.clone();
                a.findings.push(Finding {
                    rule: unesc(rule)?,
                    file,
                    line: line.parse().ok()?,
                    message: unesc(message)?,
                    hint: unesc(hint)?,
                });
            }
            ["D", scope, line, cover_end, rules, reason] => {
                cur.as_mut()?.2.directives.push(CachedDirective {
                    scope: match *scope {
                        "line" => Scope::Line,
                        "file" => Scope::File,
                        _ => return None,
                    },
                    rules: rules.split(',').map(str::to_string).collect(),
                    reason: if *reason == "-" {
                        None
                    } else {
                        Some(unesc(reason)?)
                    },
                    line: line.parse().ok()?,
                    cover_end: cover_end.parse().ok()?,
                });
            }
            ["P", line, message] => {
                let problem = (line.parse().ok()?, unesc(message)?);
                cur.as_mut()?.2.problems.push(problem);
            }
            ["M", line, message] => {
                let problem = (line.parse().ok()?, unesc(message)?);
                cur.as_mut()?.2.marker_problems.push(problem);
            }
            ["N", name, qual, mods, line, end, flags, index_lines] => {
                let f = flags
                    .chars()
                    .map(flag_char)
                    .collect::<Option<Vec<bool>>>()?;
                let &[is_test, has_body, hot, no_panic, cold] = f.as_slice() else {
                    return None;
                };
                cur.as_mut()?.2.fns.push(FnDef {
                    name: unesc(name)?,
                    qualifier: if *qual == "-" {
                        None
                    } else {
                        Some(unesc(qual)?)
                    },
                    modules: if *mods == "-" {
                        Vec::new()
                    } else {
                        mods.split(',').map(str::to_string).collect()
                    },
                    line: line.parse().ok()?,
                    end_line: end.parse().ok()?,
                    is_test,
                    has_body,
                    hot,
                    no_panic,
                    cold,
                    calls: Vec::new(),
                    index_lines: if *index_lines == "-" {
                        Vec::new()
                    } else {
                        index_lines
                            .split(',')
                            .map(|n| n.parse().ok())
                            .collect::<Option<Vec<usize>>>()?
                    },
                });
            }
            ["C", kind, path, line, flags] => {
                let f = flags
                    .chars()
                    .map(flag_char)
                    .collect::<Option<Vec<bool>>>()?;
                let &[recv_self, in_par_scope, float_evidence] = f.as_slice() else {
                    return None;
                };
                let call = CallSite {
                    kind: CallKind::from_label(kind)?,
                    path: path.split("::").map(str::to_string).collect(),
                    line: line.parse().ok()?,
                    recv_self,
                    in_par_scope,
                    float_evidence,
                };
                cur.as_mut()?.2.fns.last_mut()?.calls.push(call);
            }
            _ => return None,
        }
    }
    if let Some((rel, digest, a)) = cur.take() {
        cache.store(rel, digest, a);
    }
    Some(cache)
}

fn flag(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

fn flag_char(c: char) -> Option<bool> {
    match c {
        '0' => Some(false),
        '1' => Some(true),
        _ => None,
    }
}

/// Escapes tabs, newlines, and backslashes so any string fits in one
/// tab-separated field.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn analysis(path: &str, src: &str) -> FileAnalysis {
        crate::analyze_file(&SourceFile::from_source(path, src), &Config::default())
    }

    fn roundtrip(cache: &Cache) -> Cache {
        parse(&cache.render(), cache.fingerprint()).expect("roundtrip parse")
    }

    #[test]
    fn roundtrip_preserves_a_rich_analysis_exactly() {
        let src = "//! docs\n\
                   // chaos-lint: allow(R4) — invariant \"quoted\"\tand tabbed\n\
                   // chaos-lint: hot — tick\n\
                   pub fn push(&mut self) -> f64 { self.gather(); v[0] }\n\
                   fn gather(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        let a = analysis("crates/demo/src/x.rs", src);
        assert!(!a.fns.is_empty());
        let fp = fingerprint(&Config::default());
        let mut cache = Cache::new(fp);
        cache.store("crates/demo/src/x.rs".to_string(), 0xdead_beef, a.clone());
        let back = roundtrip(&cache);
        assert_eq!(
            back.get("crates/demo/src/x.rs", 0xdead_beef),
            Some(&a),
            "replayed analysis must compare equal"
        );
        assert_eq!(back.get("crates/demo/src/x.rs", 0xdead_beee), None);
    }

    #[test]
    fn fingerprint_mismatch_and_corruption_discard_the_cache() {
        let fp = fingerprint(&Config::default());
        let mut cache = Cache::new(fp);
        cache.store(
            "crates/demo/src/x.rs".to_string(),
            1,
            analysis("crates/demo/src/x.rs", "fn f() {}\n"),
        );
        let text = cache.render();
        assert!(parse(&text, fp.wrapping_add(1)).is_none(), "fingerprint");
        assert!(parse(&text.replace("N\t", "Z\t"), fp).is_none(), "bad tag");
        assert!(parse("", fp).is_none(), "empty file");
        let truncated: String = text.lines().take(2).map(|l| format!("{l}x\n")).collect();
        assert!(parse(&truncated, fp).is_none(), "mangled fields");
    }

    #[test]
    fn content_hash_is_stable_and_separates_inputs() {
        // Pinned value: the cache format would silently invalidate on a
        // hash change, but a pinned vector catches accidental edits.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash(b"fn f() {}"), content_hash(b"fn g() {}"));
    }

    #[test]
    fn render_is_deterministic() {
        let fp = fingerprint(&Config::default());
        let mut c1 = Cache::new(fp);
        let mut c2 = Cache::new(fp);
        for path in ["b.rs", "a.rs", "c.rs"] {
            let a = analysis(path, "fn f() { g(); }\nfn g() {}\n");
            c1.store(path.to_string(), 7, a.clone());
            c2.store(path.to_string(), 7, a);
        }
        assert_eq!(c1.render(), c2.render());
        assert!(c1.render().starts_with("chaos-lint-cache/2 "));
    }
}
