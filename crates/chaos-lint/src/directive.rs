//! Suppression directives (`// chaos-lint: allow(R2) — reason`) and
//! call-graph markers (`// chaos-lint: hot`).
//!
//! A directive names one or more rules and **must** carry a written
//! reason after an `—` / `-` / `:` separator; a reason-less directive
//! never suppresses anything (it is reported as a warning instead), so
//! the audit trail in `results/lint.json` always explains *why* each
//! finding was accepted.
//!
//! Two scopes exist:
//!
//! * `allow(<rules>)` — suppresses matching findings inside the
//!   comment's contiguous block or within the statement that starts on
//!   the first code line after it (a block header stops at its `{`, so
//!   an allow above a loop never covers the loop body).
//! * `allow-file(<rules>)` — suppresses matching findings anywhere in
//!   the file; conventionally placed in the file header.
//!
//! Markers attach to the next `fn` definition and drive the cross-file
//! reachability rules (R6/R7):
//!
//! * `hot` — the function is a steady-state hot root: everything it
//!   reaches must be allocation-free (R6) and panic-free (R7).
//! * `no-panic` — a panic-freedom root only (R7), for request handlers
//!   that may allocate but must never abort.
//! * `cold — reason` — a traversal barrier: the function is off the
//!   steady-state path (refits, membership churn), so reachability
//!   stops here. The reason is mandatory, like a suppression's.

use crate::lexer::Comment;

/// How far a directive reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Same line as the comment, or the line immediately below it.
    Line,
    /// The whole containing file.
    File,
}

/// One parsed suppression directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Line or file scope.
    pub scope: Scope,
    /// Uppercased rule IDs this directive names (e.g. `["R1", "R4"]`).
    pub rules: Vec<String>,
    /// The written justification; `None` when the author omitted it
    /// (which disables the directive and raises a warning).
    pub reason: Option<String>,
    /// 1-based line of the comment carrying the marker.
    pub line: usize,
    /// Last line of the contiguous comment block the marker sits in.
    /// Long reasons wrap onto further `//` lines; line scope covers the
    /// whole block plus the first code line after it.
    pub end_line: usize,
}

/// A malformed directive, reported as a lint warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProblem {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// Human-readable description of what is wrong.
    pub message: String,
}

/// What a call-graph marker declares about the next function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// Allocation- and panic-freedom root (R6 + R7).
    Hot,
    /// Panic-freedom root only (R7).
    NoPanic,
    /// Reachability barrier: traversal stops at this function.
    Cold,
}

impl MarkerKind {
    /// The spelling used in source comments.
    pub fn label(self) -> &'static str {
        match self {
            MarkerKind::Hot => "hot",
            MarkerKind::NoPanic => "no-panic",
            MarkerKind::Cold => "cold",
        }
    }
}

/// One parsed call-graph marker, not yet attached to a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// Which property the marker declares.
    pub kind: MarkerKind,
    /// Written justification (mandatory for `cold`).
    pub reason: Option<String>,
    /// 1-based line of the comment carrying the marker.
    pub line: usize,
}

const MARKER: &str = "chaos-lint:";

/// Everything extracted from one file's comment stream.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Well-formed suppression directives.
    pub directives: Vec<Directive>,
    /// Call-graph markers awaiting attachment to a `fn`.
    pub markers: Vec<Marker>,
    /// Malformed directives/markers, surfaced as warnings.
    pub problems: Vec<ParseProblem>,
}

/// Extracts all directives, markers, and malformed attempts from a
/// file's comment stream.
pub fn parse(comments: &[Comment]) -> Parsed {
    let mut out = Parsed::default();
    for (i, comment) in comments.iter().enumerate() {
        if is_doc(comment) {
            continue;
        }
        let Some(idx) = comment.text.find(MARKER) else {
            continue;
        };
        let rest = comment.text[idx + MARKER.len()..].trim_start();
        if let Some(result) = parse_marker(rest, comment.line) {
            match result {
                Ok(m) => out.markers.push(m),
                Err(message) => out.problems.push(ParseProblem {
                    line: comment.line,
                    message,
                }),
            }
            continue;
        }
        match parse_one(rest, comment.line) {
            Ok(mut d) => {
                d.end_line = block_end(comments, i);
                // A long reason wraps onto the following `//` lines of
                // the same block; fold them back into one string so the
                // JSON audit trail carries the full justification.
                if let Some(reason) = d.reason.as_mut() {
                    for c in continuation_comments(comments, i) {
                        reason.push(' ');
                        reason.push_str(c.text.trim());
                    }
                }
                out.directives.push(d);
            }
            Err(message) => out.problems.push(ParseProblem {
                line: comment.line,
                message,
            }),
        }
    }
    out
}

/// Recognizes `hot`, `no-panic`, and `cold` markers. Returns `None`
/// when `rest` is not a marker at all (an `allow…` follows instead).
fn parse_marker(rest: &str, line: usize) -> Option<Result<Marker, String>> {
    let kind = [MarkerKind::NoPanic, MarkerKind::Hot, MarkerKind::Cold]
        .into_iter()
        .find(|k| {
            rest.strip_prefix(k.label())
                .is_some_and(|r| r.is_empty() || !r.starts_with(|c: char| c.is_alphanumeric()))
        })?;
    let reason = strip_separator(rest[kind.label().len()..].trim());
    if kind == MarkerKind::Cold && reason.is_none() {
        return Some(Err(
            "`cold` marker has no reason — a barrier must say why the function \
             is off the steady-state path; it was not applied"
                .to_string(),
        ));
    }
    Some(Ok(Marker { kind, reason, line }))
}

/// Doc comments never carry live directives — they are where the
/// suppression *syntax* is documented, so treating them as directives
/// would make every syntax example a phantom suppression. After the
/// lexer strips `//` / `/*`, doc text starts with `/` (`///`), `!`
/// (`//!`, `/*!`), or `*` (`/**`).
fn is_doc(comment: &Comment) -> bool {
    matches!(comment.text.chars().next(), Some('/' | '!' | '*'))
}

/// Last line of the contiguous run of plain comments starting at
/// `comments[i]` — a directive's reason may wrap across several `//`
/// lines, and they all belong to the directive.
fn block_end(comments: &[Comment], i: usize) -> usize {
    let first = match comments.get(i) {
        Some(c) => c,
        None => return 0,
    };
    let mut end = first.line + first.text.matches('\n').count();
    for c in comments.iter().skip(i + 1) {
        if is_doc(c) || c.line > end + 1 {
            break;
        }
        end = end.max(c.line + c.text.matches('\n').count());
    }
    end
}

/// The plain comments continuing the block that starts at `comments[i]`
/// (same contiguity test as [`block_end`]).
fn continuation_comments(comments: &[Comment], i: usize) -> impl Iterator<Item = &Comment> {
    let mut end = comments
        .get(i)
        .map(|c| c.line + c.text.matches('\n').count())
        .unwrap_or(0);
    comments.iter().skip(i + 1).take_while(move |c| {
        if is_doc(c) || c.line > end + 1 {
            return false;
        }
        end = end.max(c.line + c.text.matches('\n').count());
        true
    })
}

fn parse_one(rest: &str, line: usize) -> Result<Directive, String> {
    let (scope, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (Scope::File, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (Scope::Line, r)
    } else {
        return Err(format!(
            "malformed chaos-lint directive: expected `allow(...)` or `allow-file(...)`, found `{}`",
            rest.trim()
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("malformed chaos-lint directive: missing `(` after allow".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed chaos-lint directive: missing `)` after rule list".to_string());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_ascii_uppercase())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("malformed chaos-lint directive: empty rule list".to_string());
    }
    let reason = strip_separator(rest[close + 1..].trim());
    Ok(Directive {
        scope,
        rules,
        reason,
        line,
        end_line: line,
    })
}

/// Accepts `— reason`, `– reason`, `- reason`, `-- reason` or
/// `: reason`; returns `None` when no non-empty reason follows.
fn strip_separator(s: &str) -> Option<String> {
    let s = s
        .strip_prefix('\u{2014}') // em dash
        .or_else(|| s.strip_prefix('\u{2013}')) // en dash
        .or_else(|| s.strip_prefix("--"))
        .or_else(|| s.strip_prefix('-'))
        .or_else(|| s.strip_prefix(':'))
        .unwrap_or(s);
    let reason = s.trim();
    if reason.is_empty() {
        None
    } else {
        Some(reason.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: usize, text: &str) -> Comment {
        Comment {
            line,
            text: text.to_string(),
        }
    }

    #[test]
    fn parses_line_allow_with_em_dash_reason() {
        let p = parse(&[comment(
            7,
            " chaos-lint: allow(R2) — span timing is a side channel",
        )]);
        assert!(p.problems.is_empty());
        let ds = &p.directives;
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].scope, Scope::Line);
        assert_eq!(ds[0].rules, ["R2"]);
        assert_eq!(
            ds[0].reason.as_deref(),
            Some("span timing is a side channel")
        );
        assert_eq!(ds[0].line, 7);
    }

    #[test]
    fn parses_file_scope_and_multiple_rules() {
        let p = parse(&[comment(
            1,
            " chaos-lint: allow-file(r1, R4) - numeric kernel",
        )]);
        let ds = &p.directives;
        assert_eq!(ds[0].scope, Scope::File);
        assert_eq!(ds[0].rules, ["R1", "R4"]);
        assert_eq!(ds[0].reason.as_deref(), Some("numeric kernel"));
    }

    #[test]
    fn missing_reason_is_kept_but_reasonless() {
        let p = parse(&[comment(3, " chaos-lint: allow(R4)")]);
        assert!(p.problems.is_empty());
        assert_eq!(p.directives[0].reason, None);
    }

    #[test]
    fn malformed_directives_are_problems_not_panics() {
        let p = parse(&[
            comment(1, " chaos-lint: disallow(R1) — nope"),
            comment(2, " chaos-lint: allow R1 — missing parens"),
            comment(3, " chaos-lint: allow() — empty"),
        ]);
        assert!(p.directives.is_empty());
        assert_eq!(p.problems.len(), 3);
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        // A doc-comment syntax example reaches us with a leading `/`,
        // `!`, or `*` (the third marker char survives lexing).
        let p = parse(&[
            comment(1, "/ chaos-lint: allow(R4) — doc example"),
            comment(2, "! chaos-lint: allow(R2) — crate-doc example"),
            comment(3, "* chaos-lint: allow(R1) — block-doc example"),
            comment(4, "/ chaos-lint: hot — doc example of a marker"),
        ]);
        assert!(p.directives.is_empty());
        assert!(p.markers.is_empty());
        assert!(p.problems.is_empty());
    }

    #[test]
    fn wrapped_reason_extends_the_block() {
        let p = parse(&[
            comment(10, " chaos-lint: allow(R2) — the reason is long and"),
            comment(11, " wraps onto a second comment line"),
            comment(14, " unrelated comment far below"),
        ]);
        let ds = &p.directives;
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 10);
        assert_eq!(ds[0].end_line, 11);
        assert_eq!(
            ds[0].reason.as_deref(),
            Some("the reason is long and wraps onto a second comment line")
        );
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let p = parse(&[comment(1, " plain comment about chaos lint generally")]);
        assert!(p.directives.is_empty());
        assert!(p.markers.is_empty());
        assert!(p.problems.is_empty());
    }

    #[test]
    fn markers_parse_with_optional_reasons() {
        let p = parse(&[
            comment(3, " chaos-lint: hot — steady-state per-second path"),
            comment(9, " chaos-lint: hot"),
            comment(12, " chaos-lint: no-panic — request handler"),
        ]);
        assert!(p.problems.is_empty());
        assert_eq!(p.markers.len(), 3);
        assert_eq!(p.markers[0].kind, MarkerKind::Hot);
        assert_eq!(
            p.markers[0].reason.as_deref(),
            Some("steady-state per-second path")
        );
        assert_eq!(p.markers[1].reason, None);
        assert_eq!(p.markers[2].kind, MarkerKind::NoPanic);
        assert_eq!(p.markers[2].line, 12);
    }

    #[test]
    fn cold_marker_requires_a_reason() {
        let p = parse(&[
            comment(5, " chaos-lint: cold — refit entry, off the tick path"),
            comment(8, " chaos-lint: cold"),
        ]);
        assert_eq!(p.markers.len(), 1);
        assert_eq!(p.markers[0].kind, MarkerKind::Cold);
        assert_eq!(p.problems.len(), 1);
        assert!(p.problems[0].message.contains("cold"));
    }

    #[test]
    fn marker_prefixes_do_not_swallow_identifiers() {
        // `hotter` / `colder` are not markers; they fall through to the
        // malformed-directive path so typos stay visible.
        let p = parse(&[comment(1, " chaos-lint: hotter — typo")]);
        assert!(p.markers.is_empty());
        assert_eq!(p.problems.len(), 1);
    }
}
