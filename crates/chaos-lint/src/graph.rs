//! Pass 2 of the cross-file analysis: workspace call graph, name
//! resolution, and the transitive reachability rules R6/R7.
//!
//! # Resolution heuristic
//!
//! Calls are resolved by name and written path only — no type
//! inference. In priority order:
//!
//! * `self.m(…)` → a method `m` on the caller's own impl type;
//! * `Type::f(…)` → a method on a workspace `impl Type`/`trait Type`;
//! * `module::f(…)` → a free fn in a file named `module.rs` or an
//!   inline `mod module`;
//! * `chaos_x::…::f(…)` → a fn named `f` in crate `chaos-x`;
//! * bare `f(…)` → same file, then same crate, then workspace-unique;
//! * method `m(…)` on a non-`self` receiver → workspace methods named
//!   `m` (bodyless trait declarations are ignored when exactly one
//!   implementation exists).
//!
//! Anything that matches several candidates is **ambiguous** and
//! anything that matches none and is not recognizably `std`/constructor
//! syntax is **unknown**; both are reported as coverage gaps, never
//! guessed. The resolution rate is tracked against a checked-in
//! baseline so graph quality cannot silently rot.
//!
//! # Reachability
//!
//! R6/R7 walk resolved edges breadth-first from marked roots.
//! `#[cfg(test)]` definitions are never traversed, and
//! `// chaos-lint: cold` definitions are barriers: the steady-state
//! contract (pinned dynamically by `alloc_regression`) excludes refit
//! and membership-churn ladders, so traversal must stop where the
//! steady state ends.

use crate::report::Finding;
use crate::rules;
use crate::scan::FileRole;
use crate::symbols::{CallKind, CallSite, FnDef};
use crate::FileAnalysis;
use std::collections::BTreeMap;

/// How one call site resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Unique workspace definition (node index).
    Resolved(usize),
    /// Recognized `std`/external call — not a workspace fn.
    External,
    /// Uppercase-initial path/bare call: enum-variant or tuple-struct
    /// constructor syntax, not a fn call.
    Constructor,
    /// Several workspace candidates; the count is kept for reporting.
    Ambiguous(usize),
    /// No candidate and no external classification.
    Unknown,
    /// Macros are not resolved (only hazard-matched).
    Macro,
}

/// One unresolved call inside hot-reachable code — the actionable
/// subset of coverage gaps.
#[derive(Debug, Clone)]
pub struct Gap {
    /// File of the calling function.
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Rendered call (`recv.push(…)` style).
    pub call: String,
    /// `"ambiguous"` or `"unknown"`.
    pub kind: &'static str,
}

/// Aggregate graph/coverage statistics for the report.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Live (non-test) fn definitions in the graph.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// `hot` roots found.
    pub hot_roots: usize,
    /// `no-panic` roots found.
    pub no_panic_roots: usize,
    /// `cold` barriers found.
    pub cold_barriers: usize,
    /// Non-macro call sites considered for resolution.
    pub calls_total: usize,
    /// Calls resolved to a unique workspace definition.
    pub resolved: usize,
    /// Calls classified as std/external or constructor syntax.
    pub external: usize,
    /// Calls with several workspace candidates.
    pub ambiguous: usize,
    /// Calls with no candidate and no classification.
    pub unknown: usize,
    /// Definitions reachable from `hot` roots (barriers excluded).
    pub hot_reachable: usize,
    /// Unresolved calls inside hot-reachable definitions.
    pub gaps: Vec<Gap>,
}

impl GraphStats {
    /// Resolution rate in per-mille: `(resolved + external) / total`.
    /// Integer-scaled so the checked-in baseline never has float
    /// formatting drift.
    pub fn resolution_per_mille(&self) -> u64 {
        if self.calls_total == 0 {
            return 1000;
        }
        ((self.resolved + self.external) as u64 * 1000) / self.calls_total as u64
    }
}

/// The workspace call graph over a set of analyzed files.
pub struct Graph<'a> {
    files: &'a [FileAnalysis],
    /// `(file index, fn index)` per node, in deterministic order.
    nodes: Vec<(usize, usize)>,
    /// Per node: per call site, how it resolved.
    resolutions: Vec<Vec<Resolution>>,
    /// Per node: resolved out-edges (deduplicated, ordered).
    edges: Vec<Vec<usize>>,
}

/// Marker state relevant to traversal, resolved per node.
#[derive(Clone, Copy)]
struct NodeFlags {
    hot: bool,
    no_panic: bool,
    cold: bool,
}

impl<'a> Graph<'a> {
    /// Builds the graph: indexes every live definition, resolves every
    /// call. Test-role files, bench files, and `#[cfg(test)]` fns are
    /// excluded — live code cannot call them.
    pub fn build(files: &'a [FileAnalysis]) -> Graph<'a> {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if !matches!(f.role, FileRole::Lib | FileRole::Bin | FileRole::Example) {
                continue;
            }
            for (di, d) in f.fns.iter().enumerate() {
                if !d.is_test {
                    nodes.push((fi, di));
                }
            }
        }
        let mut g = Graph {
            files,
            nodes,
            resolutions: Vec::new(),
            edges: Vec::new(),
        };
        let index = Index::build(&g);
        for n in 0..g.nodes.len() {
            let def = g.def(n);
            let mut res = Vec::with_capacity(def.calls.len());
            let mut out = Vec::new();
            for call in &def.calls {
                let r = index.resolve(&g, n, call);
                if let Resolution::Resolved(target) = r {
                    if target != n && !out.contains(&target) {
                        out.push(target);
                    }
                }
                res.push(r);
            }
            g.resolutions.push(res);
            g.edges.push(out);
        }
        g
    }

    /// The definition behind node `n`.
    pub fn def(&self, n: usize) -> &FnDef {
        let (fi, di) = self.nodes[n];
        &self.files[fi].fns[di]
    }

    /// The file containing node `n`.
    pub fn file(&self, n: usize) -> &FileAnalysis {
        &self.files[self.nodes[n].0]
    }

    fn flags(&self, n: usize) -> NodeFlags {
        let d = self.def(n);
        NodeFlags {
            hot: d.hot,
            no_panic: d.no_panic,
            cold: d.cold,
        }
    }

    /// BFS from `roots`, stopping at cold barriers. Returns, for every
    /// reached node, the node it was first reached from (roots map to
    /// themselves).
    fn reach(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if self.flags(r).cold {
                continue;
            }
            parent.insert(r, r);
            queue.push(r);
        }
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            for &m in &self.edges[n] {
                if self.flags(m).cold || parent.contains_key(&m) {
                    continue;
                }
                parent.insert(m, n);
                queue.push(m);
            }
        }
        parent
    }

    /// Renders the call chain `root → … → n` using display names.
    fn chain(&self, parent: &BTreeMap<usize, usize>, n: usize) -> String {
        let mut names = vec![self.def(n).display()];
        let mut cur = n;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            names.push(self.def(p).display());
            cur = p;
        }
        names.reverse();
        names.join(" → ")
    }

    /// Runs R6 (hot-path allocation freedom) and R7 (transitive panic
    /// reachability) and returns their raw findings.
    pub fn check(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        let hot_roots: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| self.flags(n).hot)
            .collect();
        let panic_roots: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| {
                let f = self.flags(n);
                f.hot || f.no_panic
            })
            .collect();
        let hot_reach = self.reach(&hot_roots);
        for (&n, _) in &hot_reach {
            let def = self.def(n);
            for (call, res) in def.calls.iter().zip(&self.resolutions[n]) {
                if let Some(what) = alloc_hazard(call, res) {
                    out.push(Finding {
                        rule: "R6".to_string(),
                        file: self.file(n).rel_path.clone(),
                        line: call.line,
                        message: format!(
                            "{what} on the hot path: `{}` is reached via {}",
                            def.display(),
                            self.chain(&hot_reach, n)
                        ),
                        hint: rules::R6_META.hint.to_string(),
                    });
                }
            }
        }
        let panic_reach = self.reach(&panic_roots);
        for (&n, _) in &panic_reach {
            let def = self.def(n);
            for (call, res) in def.calls.iter().zip(&self.resolutions[n]) {
                if let Some(what) = panic_hazard(call, res) {
                    out.push(Finding {
                        rule: "R7".to_string(),
                        file: self.file(n).rel_path.clone(),
                        line: call.line,
                        message: format!(
                            "{what} on a protected path: `{}` is reached via {}",
                            def.display(),
                            self.chain(&panic_reach, n)
                        ),
                        hint: rules::R7_META.hint.to_string(),
                    });
                }
            }
            for &line in &def.index_lines {
                out.push(Finding {
                    rule: "R7".to_string(),
                    file: self.file(n).rel_path.clone(),
                    line,
                    message: format!(
                        "literal indexing can panic on a protected path: `{}` is reached via {}",
                        def.display(),
                        self.chain(&panic_reach, n)
                    ),
                    hint: rules::R7_META.hint.to_string(),
                });
            }
        }
        out
    }

    /// Aggregate statistics, including the hot-reachable gap list.
    pub fn stats(&self) -> GraphStats {
        let mut s = GraphStats {
            fns: self.nodes.len(),
            ..GraphStats::default()
        };
        let hot_roots: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| self.flags(n).hot)
            .collect();
        let hot_reach = self.reach(&hot_roots);
        s.hot_reachable = hot_reach.len();
        for n in 0..self.nodes.len() {
            let f = self.flags(n);
            s.hot_roots += usize::from(f.hot);
            s.no_panic_roots += usize::from(f.no_panic);
            s.cold_barriers += usize::from(f.cold);
            s.edges += self.edges[n].len();
            let def = self.def(n);
            for (call, res) in def.calls.iter().zip(&self.resolutions[n]) {
                match res {
                    Resolution::Macro => continue,
                    Resolution::Resolved(_) => s.resolved += 1,
                    Resolution::External | Resolution::Constructor => s.external += 1,
                    Resolution::Ambiguous(_) => s.ambiguous += 1,
                    Resolution::Unknown => s.unknown += 1,
                }
                s.calls_total += 1;
                let gap_kind = match res {
                    Resolution::Ambiguous(_) => Some("ambiguous"),
                    Resolution::Unknown => Some("unknown"),
                    _ => None,
                };
                if let (Some(kind), true) = (gap_kind, hot_reach.contains_key(&n)) {
                    s.gaps.push(Gap {
                        file: self.file(n).rel_path.clone(),
                        line: call.line,
                        call: render_call(call),
                        kind,
                    });
                }
            }
        }
        s
    }

    /// Renders the graph as Graphviz DOT for debugging (`--graph`).
    /// Hot roots are red, no-panic roots orange, barriers gray,
    /// hot-reachable nodes filled.
    pub fn to_dot(&self) -> String {
        let hot_roots: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| self.flags(n).hot)
            .collect();
        let reach = self.reach(&hot_roots);
        let mut out =
            String::from("digraph chaos_lint {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for n in 0..self.nodes.len() {
            let f = self.flags(n);
            let label = format!("{}\\n{}", self.def(n).display(), self.file(n).crate_name);
            let mut attrs = vec![format!("label=\"{label}\"")];
            if f.hot {
                attrs.push("color=red".to_string());
            } else if f.no_panic {
                attrs.push("color=orange".to_string());
            } else if f.cold {
                attrs.push("color=gray".to_string());
            }
            if reach.contains_key(&n) {
                attrs.push("style=filled, fillcolor=mistyrose".to_string());
            }
            out.push_str(&format!("  n{} [{}];\n", n, attrs.join(", ")));
        }
        for n in 0..self.nodes.len() {
            for &m in &self.edges[n] {
                out.push_str(&format!("  n{n} -> n{m};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

fn render_call(call: &CallSite) -> String {
    match call.kind {
        CallKind::Method => format!(".{}(…)", call.name()),
        CallKind::Path => format!("{}(…)", call.path.join("::")),
        CallKind::Macro => format!("{}!(…)", call.name()),
        CallKind::Bare => format!("{}(…)", call.name()),
    }
}

/// Name indexes over the graph's nodes.
struct Index {
    /// `(qualifier, name)` → nodes (methods and trait fns).
    by_qual: BTreeMap<(String, String), Vec<usize>>,
    /// method/trait-fn name → nodes.
    methods: BTreeMap<String, Vec<usize>>,
    /// free-fn name → nodes.
    free: BTreeMap<String, Vec<usize>>,
}

impl Index {
    fn build(g: &Graph<'_>) -> Index {
        let mut ix = Index {
            by_qual: BTreeMap::new(),
            methods: BTreeMap::new(),
            free: BTreeMap::new(),
        };
        for n in 0..g.nodes.len() {
            let d = g.def(n);
            match &d.qualifier {
                Some(q) => {
                    ix.by_qual
                        .entry((q.clone(), d.name.clone()))
                        .or_default()
                        .push(n);
                    ix.methods.entry(d.name.clone()).or_default().push(n);
                }
                None => ix.free.entry(d.name.clone()).or_default().push(n),
            }
        }
        ix
    }

    fn resolve(&self, g: &Graph<'_>, caller: usize, call: &CallSite) -> Resolution {
        match call.kind {
            CallKind::Macro => Resolution::Macro,
            CallKind::Method => self.resolve_method(g, caller, call),
            CallKind::Path => self.resolve_path(g, caller, call),
            CallKind::Bare => self.resolve_bare(g, caller, call),
        }
    }

    fn resolve_method(&self, g: &Graph<'_>, caller: usize, call: &CallSite) -> Resolution {
        let name = call.name();
        if call.recv_self {
            if let Some(q) = &g.def(caller).qualifier {
                if let Some(c) = self.by_qual.get(&(q.clone(), name.to_string())) {
                    return unique(c);
                }
            }
        }
        // A name shared with a ubiquitous std container/iterator method
        // (`.collect()`, `.push(…)`, `.get(…)`) is overwhelmingly the
        // std one; resolving it to a coincidentally-named workspace
        // method would wire unrelated code into the graph (an iterator
        // `.collect()` must not resolve to `ClusterExperiment::collect`).
        // Classified External instead — the hazard tables still fire on
        // the allocating ones, erring toward a finding, and workspace
        // methods with these names stay reachable via `self.` calls.
        if STD_METHOD_NAMES.contains(&name) {
            return Resolution::External;
        }
        match self.methods.get(name) {
            None => Resolution::External,
            Some(c) => {
                // Ignore bodyless trait declarations when exactly one
                // implementation exists — single-impl dispatch is exact.
                let with_body: Vec<usize> =
                    c.iter().copied().filter(|&n| g.def(n).has_body).collect();
                match with_body.as_slice() {
                    [one] => Resolution::Resolved(*one),
                    [] => unique(c),
                    many => Resolution::Ambiguous(many.len()),
                }
            }
        }
    }

    fn resolve_path(&self, g: &Graph<'_>, caller: usize, call: &CallSite) -> Resolution {
        let name = call.name().to_string();
        let mut segs = call.path.clone();
        // `Self::f` — substitute the caller's impl type.
        if segs.first().map(String::as_str) == Some("Self") {
            match (&g.def(caller).qualifier, segs.first_mut()) {
                (Some(q), Some(first)) => *first = q.clone(),
                _ => return Resolution::Unknown,
            }
        }
        let qual = segs[segs.len() - 2].clone();
        // 1. Workspace impl/trait type.
        if let Some(c) = self.by_qual.get(&(qual.clone(), name.clone())) {
            return unique(c);
        }
        // 2. File-stem or inline-module qualifier for free fns.
        if let Some(c) = self.free.get(&name) {
            let in_module: Vec<usize> = c
                .iter()
                .copied()
                .filter(|&n| {
                    g.file(n).file_stem() == qual || g.def(n).modules.iter().any(|m| *m == qual)
                })
                .collect();
            if !in_module.is_empty() {
                return unique(&in_module);
            }
        }
        // 3. Crate-qualified path (`chaos_stats::…::f`).
        let head = segs.first().map(String::as_str).unwrap_or_default();
        let crate_name = head.replace('_', "-");
        if g.files.iter().any(|f| f.crate_name == crate_name) {
            let in_crate: Vec<usize> = self
                .free
                .get(&name)
                .into_iter()
                .flatten()
                .chain(self.methods.get(&name).into_iter().flatten())
                .copied()
                .filter(|&n| g.file(n).crate_name == crate_name)
                .collect();
            if !in_crate.is_empty() {
                return unique(&in_crate);
            }
        }
        // 4. Constructor syntax (`StreamError::Io(…)`, `Some(…)`).
        if name.starts_with(char::is_uppercase) {
            return Resolution::Constructor;
        }
        // 5. Recognized std/core paths.
        if STD_QUALIFIERS.contains(&qual.as_str()) || STD_QUALIFIERS.contains(&head) {
            return Resolution::External;
        }
        Resolution::Unknown
    }

    fn resolve_bare(&self, g: &Graph<'_>, caller: usize, call: &CallSite) -> Resolution {
        let name = call.name();
        if name.starts_with(char::is_uppercase) {
            return Resolution::Constructor;
        }
        let Some(c) = self.free.get(name) else {
            return if BARE_STD.contains(&name) {
                Resolution::External
            } else {
                Resolution::Unknown
            };
        };
        let caller_file = g.nodes[caller].0;
        let same_file: Vec<usize> = c
            .iter()
            .copied()
            .filter(|&n| g.nodes[n].0 == caller_file)
            .collect();
        if !same_file.is_empty() {
            return unique(&same_file);
        }
        let caller_crate = &g.file(caller).crate_name;
        let same_crate: Vec<usize> = c
            .iter()
            .copied()
            .filter(|&n| &g.file(n).crate_name == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return unique(&same_crate);
        }
        unique(c)
    }
}

fn unique(candidates: &[usize]) -> Resolution {
    match candidates {
        [one] => Resolution::Resolved(*one),
        [] => Resolution::Unknown,
        many => Resolution::Ambiguous(many.len()),
    }
}

/// Path qualifiers recognized as `std`/`core`/`alloc` (not exhaustive;
/// unknown qualifiers are reported as gaps, not guessed).
const STD_QUALIFIERS: [&str; 74] = [
    "std",
    "core",
    "alloc",
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Rc",
    "Arc",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Option",
    "Result",
    "Ordering",
    "Duration",
    "Instant",
    "SystemTime",
    "thread",
    "mem",
    "ptr",
    "fmt",
    "io",
    "fs",
    "env",
    "process",
    "cmp",
    "iter",
    "slice",
    "str",
    "char",
    "f64",
    "f32",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "bool",
    "Path",
    "PathBuf",
    "OsStr",
    "OsString",
    "num",
    "sync",
    "atomic",
    "mpsc",
    "collections",
    "time",
    "net",
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "array",
    "Iterator",
    "Default",
    "NonZeroUsize",
    "Wrapping",
    "Reverse",
    "convert",
    "ops",
    "borrow",
    "hint",
    "panic",
    "error",
];

/// Bare identifiers from the std prelude that are callable.
const BARE_STD: [&str; 2] = ["drop", "stringify"];

/// Method names owned by std containers/iterators/primitives for
/// resolution purposes: a non-`self` call to one of these never
/// resolves to a workspace method (see `resolve_method`).
const STD_METHOD_NAMES: [&str; 68] = [
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "extend",
    "extend_from_slice",
    "contains",
    "contains_key",
    "clone",
    "take",
    "replace",
    "map",
    "and_then",
    "filter",
    "fold",
    "sum",
    "product",
    "min",
    "max",
    "first",
    "last",
    "sort",
    "sort_by",
    "drain",
    "append",
    "truncate",
    "resize",
    "retain",
    "split_off",
    "entry",
    "chain",
    "zip",
    "rev",
    "enumerate",
    "flatten",
    "flat_map",
    "filter_map",
    "skip",
    "take_while",
    "skip_while",
    "windows",
    "chunks",
    "copied",
    "cloned",
    "position",
    "find",
    "any",
    "all",
    "count",
    "nth",
    "step_by",
    "peekable",
    "display",
    "join",
    "split",
    "parse",
    "trim",
    "write",
];

/// Method names that allocate (or enable allocation) when the call does
/// not resolve to a workspace definition.
const ALLOC_METHODS: [&str; 22] = [
    "push",
    "push_str",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "extend",
    "extend_from_slice",
    "insert",
    "append",
    "reserve",
    "reserve_exact",
    "resize",
    "split_off",
    "join",
    "concat",
    "repeat",
    "into_vec",
    "to_uppercase",
    "to_lowercase",
    "cloned",
];

/// Std container types whose constructors count as allocation sites.
const ALLOC_TYPES: [&str; 13] = [
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Rc",
    "Arc",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "CString",
    "PathBuf",
];

/// Constructor-ish names on allocating types.
const ALLOC_CTORS: [&str; 5] = ["new", "with_capacity", "from", "from_iter", "default"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Macros that abort.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Whether `call` is an allocation hazard given how it resolved.
/// Resolved workspace calls are never hazards here — their own bodies
/// are analyzed instead.
fn alloc_hazard(call: &CallSite, res: &Resolution) -> Option<String> {
    if matches!(res, Resolution::Resolved(_)) {
        return None;
    }
    let name = call.name();
    match call.kind {
        CallKind::Macro => ALLOC_MACROS
            .contains(&name)
            .then(|| format!("`{name}!` allocates")),
        CallKind::Method => ALLOC_METHODS
            .contains(&name)
            .then(|| format!("`.{name}(…)` allocates (unresolved receiver)")),
        CallKind::Path => {
            let qual = call.path[call.path.len() - 2].as_str();
            (ALLOC_TYPES.contains(&qual) && ALLOC_CTORS.contains(&name))
                .then(|| format!("`{}::{name}` allocates", qual))
        }
        CallKind::Bare => None,
    }
}

/// Whether `call` is a panic hazard given how it resolved.
fn panic_hazard(call: &CallSite, res: &Resolution) -> Option<String> {
    if matches!(res, Resolution::Resolved(_)) {
        return None;
    }
    let name = call.name();
    match call.kind {
        CallKind::Macro => PANIC_MACROS
            .contains(&name)
            .then(|| format!("`{name}!` aborts")),
        CallKind::Method => {
            (name == "unwrap" || name == "expect").then(|| format!("`.{name}(…)` can panic"))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Config;
    use crate::scan::SourceFile;

    fn analyze(path: &str, src: &str) -> FileAnalysis {
        crate::analyze_file(&SourceFile::from_source(path, src), &Config::default())
    }

    fn graph_findings(files: &[FileAnalysis]) -> Vec<Finding> {
        Graph::build(files).check()
    }

    #[test]
    fn r6_fires_through_a_call_chain_with_the_full_path() {
        let f = analyze(
            "crates/demo/src/engine.rs",
            "// chaos-lint: hot — per-tick\n\
             pub fn push_second() { gather(); }\n\
             fn gather() { assemble(); }\n\
             fn assemble() { let v: Vec<f64> = Vec::new(); drop(v); }\n",
        );
        let fs = graph_findings(&[f]);
        let r6: Vec<&Finding> = fs.iter().filter(|f| f.rule == "R6").collect();
        assert_eq!(r6.len(), 1, "{fs:?}");
        assert!(r6[0].message.contains("Vec::new"), "{}", r6[0].message);
        assert!(
            r6[0].message.contains("push_second → gather → assemble"),
            "full chain named: {}",
            r6[0].message
        );
        assert_eq!(r6[0].line, 4);
    }

    #[test]
    fn r6_is_quiet_without_hot_roots() {
        let f = analyze(
            "crates/demo/src/engine.rs",
            "pub fn push_second() { let v: Vec<f64> = Vec::new(); drop(v); }\n",
        );
        assert!(graph_findings(&[f]).is_empty());
    }

    #[test]
    fn cold_barrier_stops_traversal() {
        let f = analyze(
            "crates/demo/src/engine.rs",
            "// chaos-lint: hot — per-tick\n\
             pub fn tick() { maybe_refit(); }\n\
             // chaos-lint: cold — refit ladder is off the steady-state path\n\
             fn maybe_refit() { let mut v = Vec::new(); v.push(1.0); }\n",
        );
        let fs = graph_findings(&[f]);
        assert!(fs.is_empty(), "barrier must stop R6: {fs:?}");
    }

    #[test]
    fn cross_file_resolution_by_module_and_crate_path() {
        let a = analyze(
            "crates/chaos-stream/src/engine.rs",
            "// chaos-lint: hot — per-tick\n\
             pub fn tick() { membership::validate(); chaos_stats::kernel::dot(); }\n",
        );
        let b = analyze(
            "crates/chaos-stream/src/membership.rs",
            "pub fn validate() { let v = vec![1]; drop(v); }\n",
        );
        let c = analyze(
            "crates/chaos-stats/src/kernel.rs",
            "pub fn dot() { helper(); }\nfn helper() { x.to_vec(); }\n",
        );
        let fs = graph_findings(&[a, b, c]);
        let files: Vec<&str> = fs.iter().map(|f| f.file.as_str()).collect();
        assert!(
            files.contains(&"crates/chaos-stream/src/membership.rs"),
            "module-path call resolved: {fs:?}"
        );
        assert!(
            files.contains(&"crates/chaos-stats/src/kernel.rs"),
            "crate-path call resolved: {fs:?}"
        );
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl() {
        let f = analyze(
            "crates/demo/src/engine.rs",
            "struct E;\n\
             impl E {\n\
             \t// chaos-lint: hot — per-tick\n\
             \tpub fn push(&mut self) { self.gather(); }\n\
             \tfn gather(&mut self) { format!(\"x\"); }\n\
             }\n",
        );
        let fs = graph_findings(&[f]);
        let r6: Vec<&Finding> = fs.iter().filter(|f| f.rule == "R6").collect();
        assert_eq!(r6.len(), 1, "{fs:?}");
        assert!(
            r6[0].message.contains("E::push → E::gather"),
            "{}",
            r6[0].message
        );
    }

    #[test]
    fn cfg_test_callees_are_outside_the_graph() {
        let f = analyze(
            "crates/demo/src/engine.rs",
            "// chaos-lint: hot — per-tick\n\
             pub fn tick() { helper(); }\n\
             #[cfg(test)]\n\
             fn helper() { let v = Vec::new(); drop(v); }\n",
        );
        let fs = graph_findings(&[f]);
        assert!(
            fs.is_empty(),
            "test-only defs must not be traversed: {fs:?}"
        );
        let files = [analyze(
            "crates/demo/src/engine.rs",
            "#[cfg(test)]\nfn helper() {}\nfn live() {}\n",
        )];
        let g = Graph::build(&files);
        assert_eq!(g.nodes.len(), 1, "test def excluded from the graph");
    }

    #[test]
    fn shadowed_names_across_crates_are_ambiguous_gaps() {
        let a = analyze("crates/a/src/lib.rs", "pub fn helper() {}\n");
        let b = analyze("crates/b/src/lib.rs", "pub fn helper() {}\n");
        let c = analyze(
            "crates/c/src/lib.rs",
            "// chaos-lint: hot — root\npub fn go() { helper(); }\n",
        );
        let files = [a, b, c];
        let g = Graph::build(&files);
        let stats = g.stats();
        assert_eq!(stats.ambiguous, 1, "{stats:?}");
        assert_eq!(stats.gaps.len(), 1);
        assert_eq!(stats.gaps[0].kind, "ambiguous");
        // Same-crate shadowing resolves locally instead.
        let a2 = analyze("crates/a/src/lib.rs", "pub fn helper() {}\n");
        let b2 = analyze("crates/b/src/lib.rs", "pub fn helper() {}\n");
        let c2 = analyze("crates/a/src/other.rs", "pub fn go() { helper(); }\n");
        let files2 = [a2, b2, c2];
        let g2 = Graph::build(&files2);
        assert_eq!(g2.stats().ambiguous, 0, "same-crate candidate wins");
    }

    #[test]
    fn single_impl_trait_dispatch_resolves_two_impls_do_not() {
        let one = analyze(
            "crates/demo/src/lib.rs",
            "trait Est { fn fit(&self); }\n\
             struct A;\n\
             impl Est for A { fn fit(&self) { vec![1]; } }\n\
             // chaos-lint: hot — root\n\
             pub fn run(e: &A) { e.fit(); }\n",
        );
        let fs = graph_findings(&[one]);
        assert!(
            fs.iter().any(|f| f.rule == "R6"),
            "single impl resolves, hazard surfaces: {fs:?}"
        );
        let two = analyze(
            "crates/demo/src/lib.rs",
            "trait Est { fn fit(&self); }\n\
             struct A;\nstruct B;\n\
             impl Est for A { fn fit(&self) { vec![1]; } }\n\
             impl Est for B { fn fit(&self) {} }\n\
             // chaos-lint: hot — root\n\
             pub fn run(e: &A) { e.fit(); }\n",
        );
        let files = [two];
        let g = Graph::build(&files);
        assert!(
            g.stats().gaps.iter().any(|gap| gap.kind == "ambiguous"),
            "two impls are an ambiguous gap: {:?}",
            g.stats().gaps
        );
    }

    #[test]
    fn r7_covers_no_panic_roots_and_index_sites() {
        let f = analyze(
            "crates/demo/src/server.rs",
            "// chaos-lint: no-panic — request handler\n\
             pub fn handle() { decode(); }\n\
             fn decode() { let x = parse().unwrap(); let _ = x; v[0]; }\n",
        );
        let fs = graph_findings(&[f]);
        let r7: Vec<&Finding> = fs.iter().filter(|f| f.rule == "R7").collect();
        assert_eq!(r7.len(), 2, "unwrap + literal index: {fs:?}");
        assert!(r7.iter().all(|f| f.message.contains("handle → decode")));
        assert!(
            !fs.iter().any(|f| f.rule == "R6"),
            "no-panic roots do not imply allocation freedom: {fs:?}"
        );
    }

    #[test]
    fn constructors_and_std_paths_are_not_gaps() {
        let f = analyze(
            "crates/demo/src/lib.rs",
            "// chaos-lint: hot — root\n\
             pub fn go() -> Option<u32> { let d = std::mem::take(&mut x); f64::max(1.0, 2.0); Some(d) }\n",
        );
        let files = [f];
        let g = Graph::build(&files);
        let s = g.stats();
        assert_eq!(s.unknown, 0, "{:?}", s.gaps);
        assert_eq!(s.ambiguous, 0, "{:?}", s.gaps);
    }

    #[test]
    fn stats_count_roots_barriers_and_resolution() {
        let f = analyze(
            "crates/demo/src/lib.rs",
            "// chaos-lint: hot — root\n\
             pub fn a() { b(); mystery(); }\n\
             fn b() {}\n\
             // chaos-lint: cold — off path\n\
             fn c() {}\n",
        );
        let s = Graph::build(&[f]).stats();
        assert_eq!(s.fns, 3);
        assert_eq!(s.hot_roots, 1);
        assert_eq!(s.cold_barriers, 1);
        assert_eq!(s.edges, 1);
        assert_eq!(s.resolved, 1);
        assert_eq!(s.unknown, 1);
        assert_eq!(s.hot_reachable, 2);
        assert!(
            s.resolution_per_mille() == 500,
            "{}",
            s.resolution_per_mille()
        );
    }

    #[test]
    fn dot_output_is_well_formed() {
        let f = analyze(
            "crates/demo/src/lib.rs",
            "// chaos-lint: hot — root\npub fn a() { b(); }\nfn b() {}\n",
        );
        let dot = Graph::build(&[f]).to_dot();
        assert!(dot.starts_with("digraph chaos_lint {"));
        assert!(dot.contains("n0 -> n1;"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }
}
