//! A minimal Rust lexer: just enough structure for determinism auditing.
//!
//! The auditor's rules are token-pattern matchers, so the lexer's only
//! jobs are (a) producing identifiers, literals and punctuation with
//! line numbers, and (b) making sure text inside comments and string
//! literals can never trip a rule (a doc-comment mentioning
//! `.unwrap()` is not a panic site). Comments are kept separately so
//! the suppression-directive parser can read them.
//!
//! The lexer is deliberately forgiving: on malformed input it keeps
//! scanning rather than erroring, because the auditor must never be the
//! component that takes CI down on a file rustc itself will reject with
//! a better message.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `unwrap`, `r#async`).
    Ident,
    /// A lifetime (`'a`, `'static`), distinguished from char literals.
    Lifetime,
    /// A string literal (`"…"`, `r#"…"#`, `b"…"`); `text` holds the
    /// *contents* without quotes, with escapes left unprocessed.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (`42`, `0.5`, `1e-9`, `0xff_u64`).
    Num,
    /// A single punctuation character (`.` `:` `[` `(` `!` …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: usize,
}

/// One comment (line, block, or doc) with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: usize,
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
}

/// The lexer's output: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order (directives are parsed from these).
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails; unterminated
/// constructs extend to end of input.
pub fn lex(src: &str) -> LexOutput {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: LexOutput,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            out: LexOutput::default(),
            src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> LexOutput {
        // `src` is only retained to make the borrow in `new` natural;
        // silence the field otherwise.
        let _ = self.src;
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                'r' | 'b' | 'c' => {
                    self.raw_or_byte_prefix();
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c => {
                    self.bump();
                    self.push_tok(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize) {
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: usize) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, C-string literals
    /// (`c"…"`, `cr#"…"#`, Rust 1.77+), and raw identifiers (`r#match`);
    /// falls back to a plain identifier. Always consumes at least one
    /// character.
    fn raw_or_byte_prefix(&mut self) {
        let line = self.line;
        let c0 = match self.peek(0) {
            Some(c) => c,
            None => return,
        };
        // Determine the longest literal prefix at this position.
        let (skip, is_raw) = match (c0, self.peek(1), self.peek(2)) {
            ('r', Some('"'), _) | ('r', Some('#'), _) => (1, true),
            ('b', Some('"'), _) | ('c', Some('"'), _) => (1, false),
            ('b', Some('r'), Some('"'))
            | ('b', Some('r'), Some('#'))
            | ('c', Some('r'), Some('"'))
            | ('c', Some('r'), Some('#')) => (2, true),
            ('b', Some('\''), _) => {
                // byte char literal b'x'
                self.bump(); // b
                self.char_or_lifetime(line);
                return;
            }
            _ => {
                // Plain identifier starting with r/b/c.
                self.ident(line);
                return;
            }
        };
        if is_raw {
            // Count hashes after the `r`.
            let mut hashes = 0usize;
            while self.peek(skip + hashes) == Some('#') {
                hashes += 1;
            }
            match self.peek(skip + hashes) {
                Some('"') => {
                    for _ in 0..(skip + hashes + 1) {
                        self.bump();
                    }
                    self.raw_string_body(hashes, line);
                    return;
                }
                // `r#ident` — a raw identifier, not a raw string.
                Some(c) if hashes == 1 && (c == '_' || c.is_alphabetic()) => {
                    self.bump(); // r
                    self.bump(); // #
                    self.ident(line);
                    return;
                }
                _ => {
                    self.ident(line);
                    return;
                }
            }
        }
        // b"…"
        for _ in 0..skip {
            self.bump();
        }
        self.string_literal(line);
    }

    fn raw_string_body(&mut self, hashes: usize, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    self.push_tok(TokKind::Str, text, line);
                    return;
                }
                text.push('"');
                for _ in 0..matched {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        self.push_tok(TokKind::Str, text, line);
    }

    fn string_literal(&mut self, line: usize) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => {
                    self.push_tok(TokKind::Str, text, line);
                    return;
                }
                '\\' => {
                    text.push('\\');
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                c => text.push(c),
            }
        }
        self.push_tok(TokKind::Str, text, line);
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: usize) {
        self.bump(); // opening quote
        let first = self.peek(0);
        let second = self.peek(1);
        let is_lifetime = match (first, second) {
            (Some(c), Some(n)) if c == '_' || c.is_alphabetic() => {
                // `'a'` is a char; `'ab`, `'a,`, `'a>` are lifetimes.
                n != '\''
            }
            (Some(c), None) => c == '_' || c.is_alphabetic(),
            _ => false,
        };
        if is_lifetime {
            let mut name = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_tok(TokKind::Lifetime, name, line);
            return;
        }
        // Char literal: consume until the closing quote, escape-aware.
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    text.push('\\');
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                c => text.push(c),
            }
        }
        self.push_tok(TokKind::Char, text, line);
    }

    fn number(&mut self, line: usize) {
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // Covers hex/oct/bin digits, exponents and type suffixes.
                text.push(c);
                self.bump();
                // A signed exponent (`1e-9`, `2.5E+10`) continues the
                // number — but only for a true decimal exponent, so hex
                // literals like `0xE-1` stay split at the `-`.
                if (c == 'e' || c == 'E')
                    && !text.starts_with("0x")
                    && !text.starts_with("0X")
                    && matches!(self.peek(0), Some('+' | '-'))
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                {
                    text.push(self.bump().unwrap_or_default());
                }
            } else if c == '.' && !seen_dot && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
            {
                // `0.5` continues the number; `0..n` does not.
                seen_dot = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_separated_from_tokens() {
        let out = lex("let x = 1; // trailing\n/* block\nspans */ let y = 2;");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].text, " trailing");
        assert_eq!(out.comments[0].line, 1);
        assert_eq!(out.comments[1].line, 2);
        assert!(out.tokens.iter().any(|t| t.text == "y" && t.line == 3));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let out = lex("/* a /* b */ c */ fn main() {}");
        assert_eq!(out.comments.len(), 1);
        assert!(out.tokens.iter().any(|t| t.text == "fn"));
    }

    #[test]
    fn strings_swallow_code_like_text() {
        let out = lex(r#"let s = "x.unwrap() // not a comment";"#);
        assert_eq!(out.comments.len(), 0);
        assert!(!out.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("unwrap")));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let out = lex(r##"let a = r#"raw "inner" body"#; let r#match = 1;"##);
        let strs: Vec<&Tok> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r#"raw "inner" body"#);
        assert!(out.tokens.iter().any(|t| t.text == "match"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokKind::Char, "x".to_string())));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = kinds(r"let q = '\''; let n = '\n';");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..n { a[0] = 1.5; }");
        assert!(toks.contains(&(TokKind::Num, "0".to_string())));
        assert!(toks.contains(&(TokKind::Num, "1.5".to_string())));
        assert!(toks.contains(&(TokKind::Punct, ".".to_string())));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let b = b"bytes"; let c = b'x';"#);
        assert!(toks.contains(&(TokKind::Str, "bytes".to_string())));
        assert!(toks.contains(&(TokKind::Char, "x".to_string())));
    }

    #[test]
    fn line_numbers_track_newlines_inside_literals() {
        let out = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b = out.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
