//! `chaos-lint`: a static determinism auditor for the CHAOS workspace.
//!
//! CHAOS's headline accuracy claims (DRE < 12%, Eq. 6) are reproducible
//! only because every engine in this workspace — the parallel selection
//! pipeline, the robust estimator, the streaming replay — is pinned to
//! *bit-identical* output across `CHAOS_THREADS` and `CHAOS_OBS`
//! settings, and the steady-state hot path is pinned to *zero
//! allocations* (the `alloc_regression` suite). Golden traces and
//! counting allocators enforce those invariants dynamically, but they
//! catch a violation long after it is written. This crate closes the
//! gap with a static pass that rejects nondeterminism and hot-path
//! hazards at the source level, per PR instead of per regression.
//!
//! # Architecture: two passes
//!
//! **Pass 1** ([`analyze_file`]) is per-file and independent: lex,
//! parse directives/markers, extract a symbol table of `fn`
//! definitions and call sites ([`symbols`]), and run the lexical rules
//! R1–R5/R8. Its output, a [`FileAnalysis`], is a pure function of the
//! file's bytes — which is what makes the incremental [`cache`] sound.
//!
//! **Pass 2** ([`lint_analyses`]) is workspace-wide: build the call
//! [`graph`], resolve call sites by name and path (never by guessing —
//! unresolved calls are reported as coverage gaps), and run the
//! transitive rules R6/R7 from `// chaos-lint: hot` and
//! `// chaos-lint: no-panic` roots.
//!
//! # Rules
//!
//! See [`rules::RULES`] for the registry: R1 (hash iteration order),
//! R2 (wall-clock/entropy reads), R3 (`CHAOS_*` env reads outside the
//! sanctioned config entry points), R4 (panic paths in library code),
//! R5 (crate hygiene headers), R6 (hot-path allocation freedom),
//! R7 (transitive panic reachability), R8 (unordered float reductions
//! in parallel spans). `cargo run -p chaos-lint -- --explain R6`
//! prints the full rationale with bad/good examples.
//!
//! # Suppressions and markers
//!
//! Intentional sites are annotated in place:
//!
//! ```text
//! // chaos-lint: allow(R2) — span timing is a side channel; results
//! // are bit-identical with CHAOS_OBS=off (determinism suite).
//! ```
//!
//! A suppression **must** carry a reason; reason-less or unmatched
//! allows are themselves reported as warnings. Suppressed findings stay
//! visible in `results/lint.json` under `"suppressed"`.
//!
//! Reachability roots and barriers are declared next to the code:
//! `// chaos-lint: hot` / `// chaos-lint: no-panic` mark roots,
//! `// chaos-lint: cold — reason` marks a traversal barrier (the
//! reason is mandatory: a barrier is a claim that the steady-state
//! contract excludes that subtree).
//!
//! # Running
//!
//! ```text
//! cargo run -p chaos-lint            # report, write results/lint.json
//! cargo run -p chaos-lint -- --deny  # exit nonzero on any finding (CI)
//! ```
//!
//! The analysis is token-based (no type inference — the crate is
//! dependency-free so it can gate CI before anything else builds), so
//! each rule errs toward firing and documents its blind spots; the
//! dynamic determinism and allocation suites remain the backstop.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod directive;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod symbols;

pub use graph::{Gap, Graph, GraphStats};
pub use report::{Finding, Report, Suppressed, Warning};
pub use rules::{Config, RuleMeta, RULES};
pub use scan::{FileRole, SourceFile};

use directive::Scope;
use std::io;
use std::path::Path;
use symbols::FnDef;

/// A suppression directive reduced to what pass 2 and the report need.
///
/// The live-token form ([`directive::Directive`]) carries `end_line`
/// (the last line of the comment block); matching a finding also needs
/// the file's token stream to extend coverage through the following
/// statement. `cover_end` precomputes that extension so a
/// [`FileAnalysis`] is self-contained — the cache can replay it without
/// re-lexing the file.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedDirective {
    /// Line or file scope.
    pub scope: Scope,
    /// Rule IDs this directive names.
    pub rules: Vec<String>,
    /// Written justification, if any (reason-less allows never apply).
    pub reason: Option<String>,
    /// 1-based line of the directive comment.
    pub line: usize,
    /// Last 1-based line covered by a line-scoped allow.
    pub cover_end: usize,
}

/// The complete, cacheable result of pass 1 on one file.
///
/// Everything pass 2 ([`lint_analyses`]) and the [`report`] consume is
/// here; the token stream is not retained. Two analyses of identical
/// bytes compare equal, which is the property the warm-cache
/// byte-identity test pins.
#[derive(Debug, Clone, PartialEq)]
pub struct FileAnalysis {
    /// Workspace-relative path (`crates/x/src/lib.rs`).
    pub rel_path: String,
    /// Owning crate name (`chaos-stats`), from the path.
    pub crate_name: String,
    /// Lib / Bin / Test / Bench / Example, from the path.
    pub role: FileRole,
    /// Raw per-file findings (R1–R4, R8) before suppression matching.
    pub findings: Vec<Finding>,
    /// Suppression directives with precomputed coverage.
    pub directives: Vec<CachedDirective>,
    /// Malformed-directive problems as `(line, message)`.
    pub problems: Vec<(usize, String)>,
    /// Marker problems (dangling `hot`/`cold`) as `(line, message)`.
    pub marker_problems: Vec<(usize, String)>,
    /// Whether `#![forbid(unsafe_code)]` is present (R5 input).
    pub has_forbid_unsafe: bool,
    /// Whether `#![deny(missing_docs)]` is present (R5 input).
    pub has_deny_missing_docs: bool,
    /// The file's fn definitions with their call sites (pass 2 input).
    pub fns: Vec<FnDef>,
}

impl FileAnalysis {
    /// The path's file stem (`gram` for `crates/x/src/gram.rs`) — the
    /// module name a `mod::fn` path call resolves against.
    pub fn file_stem(&self) -> &str {
        let base = self.rel_path.rsplit('/').next().unwrap_or(&self.rel_path);
        base.strip_suffix(".rs").unwrap_or(base)
    }
}

/// Pass 1: analyzes one loaded source file into its cacheable digest.
pub fn analyze_file(file: &SourceFile, cfg: &Config) -> FileAnalysis {
    let mut findings = rules::check_file(file, cfg);
    let sym = symbols::extract(file);
    findings.extend(rules::check_r8(&file.rel_path, file.role, &sym.fns));
    let directives = file
        .directives
        .iter()
        .map(|d| CachedDirective {
            scope: d.scope,
            rules: d.rules.clone(),
            reason: d.reason.clone(),
            line: d.line,
            cover_end: file.statement_end_after(d.end_line),
        })
        .collect();
    FileAnalysis {
        rel_path: file.rel_path.clone(),
        crate_name: file.crate_name.clone(),
        role: file.role,
        findings,
        directives,
        problems: file
            .directive_problems
            .iter()
            .map(|p| (p.line, p.message.clone()))
            .collect(),
        marker_problems: sym.problems,
        has_forbid_unsafe: rules::has_inner_attr(&file.lex.tokens, "forbid", "unsafe_code"),
        has_deny_missing_docs: rules::has_inner_attr(&file.lex.tokens, "deny", "missing_docs"),
        fns: sym.fns,
    }
}

/// Pass 2 + assembly: runs the workspace rules over per-file analyses
/// (fresh or cache-replayed) and produces the final report.
pub fn lint_analyses(analyses: &[FileAnalysis]) -> Report {
    let mut raw: Vec<Finding> = analyses.iter().flat_map(|a| a.findings.clone()).collect();
    raw.extend(rules::check_hygiene(analyses));
    let graph = Graph::build(analyses);
    raw.extend(graph.check());
    let stats = graph.stats();
    let mut report = Report::assemble(analyses, raw);
    report.graph = Some(stats);
    report
}

/// Lints a set of already-loaded source files (fixture tests enter
/// here).
pub fn lint_files(files: &[SourceFile], cfg: &Config) -> Report {
    let analyses: Vec<FileAnalysis> = files.iter().map(|f| analyze_file(f, cfg)).collect();
    lint_analyses(&analyses)
}

/// Lints every `.rs` file under `root` (the workspace checkout).
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_root(root: &Path, cfg: &Config) -> io::Result<Report> {
    let paths = scan::collect_paths(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        files.push(SourceFile::load(root, p)?);
    }
    Ok(lint_files(&files, cfg))
}

/// Cache effectiveness for one run (reported by `--deny` CI runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheOutcome {
    /// Files whose analysis was replayed from the cache.
    pub hits: usize,
    /// Files analyzed from scratch (changed, new, or cold cache).
    pub misses: usize,
}

/// Pass 1 over every `.rs` file under `root`, replaying unchanged
/// files from `cache` and refreshing it in place (stale and deleted
/// entries are dropped). The caller runs [`lint_analyses`] — and, if
/// it wants a DOT dump, [`Graph::build`] — over the result.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn analyze_root_cached(
    root: &Path,
    cfg: &Config,
    cache: &mut cache::Cache,
) -> io::Result<(Vec<FileAnalysis>, CacheOutcome)> {
    let paths = scan::collect_paths(root)?;
    let mut analyses = Vec::with_capacity(paths.len());
    let mut outcome = CacheOutcome::default();
    let mut fresh = cache::Cache::new(cache.fingerprint());
    for p in &paths {
        let rel = scan::rel_path_of(root, p);
        let bytes = std::fs::read(p)?;
        let digest = cache::content_hash(&bytes);
        let analysis = match cache.get(&rel, digest) {
            Some(hit) => {
                outcome.hits += 1;
                hit.clone()
            }
            None => {
                outcome.misses += 1;
                let src = String::from_utf8_lossy(&bytes).into_owned();
                analyze_file(&SourceFile::from_source(&rel, &src), cfg)
            }
        };
        fresh.store(rel, digest, analysis.clone());
        analyses.push(analysis);
    }
    *cache = fresh;
    Ok((analyses, outcome))
}

/// Lints every `.rs` file under `root`, replaying unchanged files from
/// `cache` (loaded from disk by the caller) and refreshing it in place.
///
/// The report is byte-identical to a cold [`lint_root`] run: pass 1 is
/// a pure function of file bytes, and pass 2 always runs over the full
/// analysis set.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_root_cached(
    root: &Path,
    cfg: &Config,
    cache: &mut cache::Cache,
) -> io::Result<(Report, CacheOutcome)> {
    let (analyses, outcome) = analyze_root_cached(root, cfg, cache)?;
    Ok((lint_analyses(&analyses), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_over_in_memory_workspace() {
        let bad = SourceFile::from_source(
            "crates/demo/src/lib.rs",
            "//! demo\nfn f(v: &[f64]) -> f64 { v.first().copied().unwrap() }\n",
        );
        let report = lint_files(&[bad], &Config::default());
        // R5 (missing hygiene headers, line 1) + R4 (unwrap, line 2).
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["R5", "R4"], "{:?}", report.findings);
    }

    #[test]
    fn clean_file_produces_clean_report() {
        let good = SourceFile::from_source(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! demo\n\n/// Adds.\npub fn add(a: u64, b: u64) -> u64 { a + b }\n",
        );
        let report = lint_files(&[good], &Config::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.warnings.is_empty());
        assert_eq!(report.files_scanned, 1);
        let stats = report.graph.as_ref().expect("graph stats");
        assert_eq!(stats.fns, 1);
    }

    #[test]
    fn file_analyses_of_identical_bytes_compare_equal() {
        let src = "// chaos-lint: hot — root\npub fn f() { g(); }\nfn g() { let _ = vec![1]; }\n";
        let a = analyze_file(
            &SourceFile::from_source("crates/d/src/x.rs", src),
            &Config::default(),
        );
        let b = analyze_file(
            &SourceFile::from_source("crates/d/src/x.rs", src),
            &Config::default(),
        );
        assert_eq!(a, b);
        assert!(a.fns[0].hot);
    }
}
