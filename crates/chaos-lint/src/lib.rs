//! `chaos-lint`: a static determinism auditor for the CHAOS workspace.
//!
//! CHAOS's headline accuracy claims (DRE < 12%, Eq. 6) are reproducible
//! only because every engine in this workspace — the parallel selection
//! pipeline, the robust estimator, the streaming replay — is pinned to
//! *bit-identical* output across `CHAOS_THREADS` and `CHAOS_OBS`
//! settings. Golden traces and serial-vs-threaded tests enforce those
//! invariants dynamically, but they catch a violation long after it is
//! written. This crate closes the gap with a static pass that rejects
//! nondeterminism hazards at the source level, per PR instead of per
//! regression.
//!
//! # Rules
//!
//! See [`rules::RULES`] for the registry: R1 (hash iteration order),
//! R2 (wall-clock/entropy reads), R3 (`CHAOS_*` env reads outside the
//! sanctioned config entry points), R4 (panic paths in library code),
//! R5 (crate hygiene headers).
//!
//! # Suppressions
//!
//! Intentional sites are annotated in place:
//!
//! ```text
//! // chaos-lint: allow(R2) — span timing is a side channel; results
//! // are bit-identical with CHAOS_OBS=off (determinism suite).
//! ```
//!
//! A suppression **must** carry a reason; reason-less or unmatched
//! allows are themselves reported as warnings. Suppressed findings stay
//! visible in `results/lint.json` under `"suppressed"`.
//!
//! # Running
//!
//! ```text
//! cargo run -p chaos-lint            # report, write results/lint.json
//! cargo run -p chaos-lint -- --deny  # exit nonzero on any finding (CI)
//! ```
//!
//! The analysis is token-based (no type inference — the crate is
//! dependency-free so it can gate CI before anything else builds), so
//! each rule errs toward firing and documents its blind spots; the
//! dynamic determinism suite remains the backstop.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod directive;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

pub use report::{Finding, Report, Suppressed, Warning};
pub use rules::{Config, RuleMeta, RULES};
pub use scan::{FileRole, SourceFile};

use std::io;
use std::path::Path;

/// Lints a set of already-loaded source files (fixture tests enter
/// here).
pub fn lint_files(files: &[SourceFile], cfg: &Config) -> Report {
    let mut raw = Vec::new();
    for file in files {
        raw.extend(rules::check_file(file, cfg));
    }
    raw.extend(rules::check_hygiene(files));
    Report::assemble(files, raw)
}

/// Lints every `.rs` file under `root` (the workspace checkout).
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_root(root: &Path, cfg: &Config) -> io::Result<Report> {
    let paths = scan::collect_paths(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        files.push(SourceFile::load(root, p)?);
    }
    Ok(lint_files(&files, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_over_in_memory_workspace() {
        let bad = SourceFile::from_source(
            "crates/demo/src/lib.rs",
            "//! demo\nfn f(v: &[f64]) -> f64 { v.first().copied().unwrap() }\n",
        );
        let report = lint_files(&[bad], &Config::default());
        // R5 (missing hygiene headers, line 1) + R4 (unwrap, line 2).
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["R5", "R4"], "{:?}", report.findings);
    }

    #[test]
    fn clean_file_produces_clean_report() {
        let good = SourceFile::from_source(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! demo\n\n/// Adds.\npub fn add(a: u64, b: u64) -> u64 { a + b }\n",
        );
        let report = lint_files(&[good], &Config::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.warnings.is_empty());
        assert_eq!(report.files_scanned, 1);
    }
}
