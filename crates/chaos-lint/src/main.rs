//! CLI for the workspace determinism auditor.
//!
//! ```text
//! chaos-lint [--root <dir>] [--json <path>] [--sarif <path>]
//!            [--graph <path>] [--cache <path> | --no-cache]
//!            [--coverage-baseline <path>] [--deny]
//!            [--list-rules] [--explain <rule>]
//! ```
//!
//! * `--root` — workspace checkout to audit (default: walk up from the
//!   current directory to the first `Cargo.toml` with `[workspace]`).
//! * `--json` — where to write the machine-readable report (default
//!   `<root>/results/lint.json`).
//! * `--sarif` — also write a SARIF 2.1.0 log (code-scanning upload).
//! * `--graph` — also dump the resolved call graph as Graphviz DOT.
//! * `--cache` — incremental-cache location (default
//!   `<root>/target/chaos-lint.cache`); `--no-cache` forces a cold run.
//!   Warm runs re-lex only changed files and produce byte-identical
//!   reports.
//! * `--coverage-baseline` — resolution-coverage floor file (default
//!   `<root>/crates/chaos-lint/coverage.baseline`); enforced under
//!   `--deny` when the file exists, so graph quality cannot rot.
//! * `--deny` — exit nonzero when any unsuppressed finding remains
//!   (the CI gate).
//! * `--list-rules` — print the rule registry and exit.
//! * `--explain <rule>` — print one rule's rationale, a bad/good pair,
//!   and the suppression form, straight from the same registry the
//!   docs table is checked against.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: chaos-lint [--root <dir>] [--json <path>] [--sarif <path>] \
[--graph <path>] [--cache <path> | --no-cache] [--coverage-baseline <path>] [--deny] \
[--list-rules] [--explain <rule>]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut sarif: Option<PathBuf> = None;
    let mut graph_dot: Option<PathBuf> = None;
    let mut cache_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--no-cache" => no_cache = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--sarif" => sarif = args.next().map(PathBuf::from),
            "--graph" => graph_dot = args.next().map(PathBuf::from),
            "--cache" => cache_path = args.next().map(PathBuf::from),
            "--coverage-baseline" => baseline_path = args.next().map(PathBuf::from),
            "--list-rules" => {
                for r in chaos_lint::RULES {
                    println!("{} ({}): {}", r.id, r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("chaos-lint: --explain needs a rule ID (R1…R8) or name");
                    return ExitCode::FAILURE;
                };
                return explain(&id);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("chaos-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("chaos-lint: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };
    let cfg = chaos_lint::Config::default();
    let fingerprint = chaos_lint::cache::fingerprint(&cfg);
    let cache_path = cache_path.unwrap_or_else(|| root.join("target").join("chaos-lint.cache"));
    let mut cache = if no_cache {
        chaos_lint::cache::Cache::new(fingerprint)
    } else {
        chaos_lint::cache::Cache::load(&cache_path, fingerprint)
    };
    let (analyses, outcome) = match chaos_lint::analyze_root_cached(&root, &cfg, &mut cache) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("chaos-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = chaos_lint::lint_analyses(&analyses);
    print!("{}", report.render_human());
    eprintln!(
        "cache: {} hit(s), {} miss(es){}",
        outcome.hits,
        outcome.misses,
        if no_cache { " (--no-cache)" } else { "" }
    );
    if !no_cache {
        if let Err(e) = cache.save(&cache_path) {
            eprintln!(
                "chaos-lint: cannot write cache {}: {e}",
                cache_path.display()
            );
        }
    }
    let json_path = json.unwrap_or_else(|| root.join("results").join("lint.json"));
    if let Err(e) = write_output(&json_path, &report.render_json()) {
        eprintln!("chaos-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("machine-readable report: {}", json_path.display());
    if let Some(path) = sarif {
        if let Err(e) = write_output(&path, &chaos_lint::sarif::render(&report)) {
            eprintln!("chaos-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("SARIF log: {}", path.display());
    }
    if let Some(path) = graph_dot {
        let dot = chaos_lint::Graph::build(&analyses).to_dot();
        if let Err(e) = write_output(&path, &dot) {
            eprintln!("chaos-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("call graph (DOT): {}", path.display());
    }
    let mut failed = false;
    if deny {
        let baseline =
            baseline_path.unwrap_or_else(|| root.join("crates/chaos-lint/coverage.baseline"));
        if let Some(stats) = &report.graph {
            match check_baseline(&baseline, stats) {
                Ok(Some(msg)) => {
                    eprintln!("chaos-lint: --deny: {msg}");
                    failed = true;
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!(
                        "chaos-lint: --deny: unreadable coverage baseline {}: {e}",
                        baseline.display()
                    );
                    failed = true;
                }
            }
        }
        if !report.findings.is_empty() {
            eprintln!(
                "chaos-lint: --deny: {} unsuppressed finding(s)",
                report.findings.len()
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints one rule's full card from the registry.
fn explain(query: &str) -> ExitCode {
    let id = query.to_uppercase();
    let Some(r) = chaos_lint::RULES
        .iter()
        .find(|r| r.id == id || r.name == query)
    else {
        eprintln!("chaos-lint: no rule `{query}` (try --list-rules)");
        return ExitCode::FAILURE;
    };
    println!("{} — {}", r.id, r.name);
    println!("\n{}\n", r.summary);
    println!("why: {}\n", r.rationale);
    println!("bad:\n{}\n", indent(r.bad));
    println!("good:\n{}\n", indent(r.good));
    println!("suppress (reason mandatory):\n{}", indent(r.suppression));
    ExitCode::SUCCESS
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Enforces the checked-in coverage floor. The file holds
/// `resolution_per_mille <n>` and `hot_gaps <n>` lines (`#` comments
/// allowed). Returns a failure message when the current run is worse
/// than the floor; a missing file skips the gate (local runs), an
/// unreadable or malformed one is an error (CI commits it).
fn check_baseline(
    path: &Path,
    stats: &chaos_lint::GraphStats,
) -> Result<Option<String>, std::io::Error> {
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(path)?;
    let mut floor_per_mille: Option<u64> = None;
    let mut max_gaps: Option<usize> = None;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["resolution_per_mille", n] => match n.parse() {
                Ok(v) => floor_per_mille = Some(v),
                Err(_) => return Err(bad_baseline(line)),
            },
            ["hot_gaps", n] => match n.parse() {
                Ok(v) => max_gaps = Some(v),
                Err(_) => return Err(bad_baseline(line)),
            },
            _ => return Err(bad_baseline(line)),
        }
    }
    if let Some(floor) = floor_per_mille {
        let got = stats.resolution_per_mille();
        if got < floor {
            return Ok(Some(format!(
                "call resolution regressed to {got}\u{2030} (baseline floor {floor}\u{2030}) — \
                 fix the resolution heuristic or re-baseline with a justification"
            )));
        }
    }
    if let Some(max) = max_gaps {
        let got = stats.gaps.len();
        if got > max {
            return Ok(Some(format!(
                "{got} unresolved call(s) on hot paths (baseline allows {max}); first gaps: {}",
                stats
                    .gaps
                    .iter()
                    .take(3)
                    .map(|g| format!("{}:{} {}", g.file, g.line, g.call))
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
    }
    Ok(None)
}

fn bad_baseline(line: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed baseline line `{line}`"),
    )
}

fn write_output(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir: PathBuf = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let body = std::fs::read_to_string(&manifest).unwrap_or_default();
            if body.contains("[workspace]") {
                return Some(dir);
            }
        }
        dir = Path::new(&dir).parent()?.to_path_buf();
    }
}
