//! CLI for the workspace determinism auditor.
//!
//! ```text
//! chaos-lint [--root <dir>] [--json <path>] [--deny] [--list-rules]
//! ```
//!
//! * `--root` — workspace checkout to audit (default: walk up from the
//!   current directory to the first `Cargo.toml` with `[workspace]`).
//! * `--json` — where to write the machine-readable report (default
//!   `<root>/results/lint.json`).
//! * `--deny` — exit nonzero when any unsuppressed finding remains
//!   (the CI gate).
//! * `--list-rules` — print the rule registry and exit.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--list-rules" => {
                for r in chaos_lint::RULES {
                    println!("{} ({}): {}", r.id, r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: chaos-lint [--root <dir>] [--json <path>] [--deny] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("chaos-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("chaos-lint: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };
    let report = match chaos_lint::lint_root(&root, &chaos_lint::Config::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_human());
    let json_path = json.unwrap_or_else(|| root.join("results").join("lint.json"));
    if let Some(parent) = json_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("chaos-lint: cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&json_path, report.render_json()) {
        eprintln!("chaos-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("machine-readable report: {}", json_path.display());
    if deny && !report.findings.is_empty() {
        eprintln!(
            "chaos-lint: --deny: {} unsuppressed finding(s)",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir: PathBuf = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let body = std::fs::read_to_string(&manifest).unwrap_or_default();
            if body.contains("[workspace]") {
                return Some(dir);
            }
        }
        dir = Path::new(&dir).parent()?.to_path_buf();
    }
}
