//! Findings, suppression bookkeeping, and report rendering.
//!
//! The auditor produces one [`Report`] per run with three buckets:
//!
//! * `findings` — live violations; `--deny` turns these into a nonzero
//!   exit for CI.
//! * `suppressed` — findings matched by a reasoned
//!   `// chaos-lint: allow(...)` directive; kept in the JSON output so
//!   the audit trail of accepted nondeterminism stays reviewable.
//! * `warnings` — problems with the suppressions themselves: unused
//!   allow comments, reason-less allows, malformed directives, and
//!   dangling `hot`/`cold` markers.
//!
//! Since v2 the report also carries the call-graph statistics
//! ([`GraphStats`]): fn/edge counts, root/barrier counts, and the
//! name-resolution coverage rate that CI gates against a checked-in
//! baseline.
//!
//! JSON rendering is hand-rolled (the crate is dependency-free by
//! design); escaping matches `chaos_obs::sink::json_escape` semantics.

use crate::directive::Scope;
use crate::graph::GraphStats;
use crate::rules::RULES;
use crate::{CachedDirective, FileAnalysis};
use std::collections::BTreeSet;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Rule ID (`R1`…`R8`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What was found, with the offending construct inline.
    pub message: String,
    /// Rule-generic fix hint.
    pub hint: String,
}

/// A finding that a reasoned directive accepted.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The suppressed finding.
    pub finding: Finding,
    /// The directive's written justification.
    pub reason: String,
    /// `"line"` or `"file"` — which directive scope matched.
    pub scope: &'static str,
}

/// A problem with the suppression machinery itself.
#[derive(Debug, Clone)]
pub struct Warning {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// The complete result of one audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// Live (unsuppressed) findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Findings accepted by reasoned directives.
    pub suppressed: Vec<Suppressed>,
    /// Suppression-machinery warnings.
    pub warnings: Vec<Warning>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Call-graph statistics (absent only for partial assemblies).
    pub graph: Option<GraphStats>,
}

impl Report {
    /// Splits raw findings into live/suppressed using each file's
    /// directives, and appends directive warnings (unused, reason-less,
    /// malformed, unknown rule) and marker problems.
    pub fn assemble(files: &[FileAnalysis], mut raw: Vec<Finding>) -> Report {
        raw.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        let mut report = Report {
            files_scanned: files.len(),
            ..Report::default()
        };
        // Track (file, directive-line) pairs that suppressed something.
        let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
        for finding in raw {
            let file = files.iter().find(|f| f.rel_path == finding.file);
            match file.and_then(|f| matching_directive(f, &finding)) {
                Some((d, scope)) => {
                    used.insert((finding.file.clone(), d.line));
                    report.suppressed.push(Suppressed {
                        finding,
                        // `matching_directive` only returns reasoned
                        // directives, so the fallback is unreachable.
                        reason: d.reason.clone().unwrap_or_default(),
                        scope,
                    });
                }
                None => report.findings.push(finding),
            }
        }
        for file in files {
            for (line, message) in file.problems.iter().chain(&file.marker_problems) {
                report.warnings.push(Warning {
                    file: file.rel_path.clone(),
                    line: *line,
                    message: message.clone(),
                });
            }
            for d in &file.directives {
                let known: Vec<&str> = d
                    .rules
                    .iter()
                    .filter(|r| RULES.iter().any(|m| m.id == r.as_str()))
                    .map(String::as_str)
                    .collect();
                for unknown in d.rules.iter().filter(|r| !known.contains(&r.as_str())) {
                    report.warnings.push(Warning {
                        file: file.rel_path.clone(),
                        line: d.line,
                        message: format!("allow names unknown rule `{unknown}`"),
                    });
                }
                if d.reason.is_none() {
                    report.warnings.push(Warning {
                        file: file.rel_path.clone(),
                        line: d.line,
                        message: format!(
                            "allow({}) has no reason — a suppression must say why; it was not applied",
                            d.rules.join(", ")
                        ),
                    });
                } else if !known.is_empty() && !used.contains(&(file.rel_path.clone(), d.line)) {
                    report.warnings.push(Warning {
                        file: file.rel_path.clone(),
                        line: d.line,
                        message: format!(
                            "allow({}) matched no finding — remove it or fix the rule list",
                            d.rules.join(", ")
                        ),
                    });
                }
            }
        }
        report
            .warnings
            .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
        report
    }

    /// Renders the human-readable (rustc-style) report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let name = crate::rules::rule(&f.rule).map(|m| m.name).unwrap_or("?");
            out.push_str(&format!(
                "{} [{name}] {}:{}: {}\n    hint: {}\n",
                f.rule, f.file, f.line, f.message, f.hint
            ));
        }
        for w in &self.warnings {
            out.push_str(&format!("warning {}:{}: {}\n", w.file, w.line, w.message));
        }
        if let Some(g) = &self.graph {
            out.push_str(&format!(
                "graph: {} fn(s), {} edge(s), {} hot root(s), {} cold barrier(s), resolution {}‰ ({} gap(s) on hot paths)\n",
                g.fns,
                g.edges,
                g.hot_roots,
                g.cold_barriers,
                g.resolution_per_mille(),
                g.gaps.len()
            ));
        }
        out.push_str(&format!(
            "chaos-lint: {} file(s) scanned, {} finding(s), {} suppressed, {} warning(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len(),
            self.warnings.len()
        ));
        out
    }

    /// Renders the machine-readable report (`results/lint.json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"chaos-lint/2\",\n");
        out.push_str("  \"rules\": [\n");
        let rules: Vec<String> = RULES
            .iter()
            .map(|r| {
                format!(
                    "    {{\"id\": \"{}\", \"name\": \"{}\", \"summary\": \"{}\"}}",
                    r.id,
                    json_escape(r.name),
                    json_escape(r.summary)
                )
            })
            .collect();
        out.push_str(&rules.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str("  \"findings\": [\n");
        let findings: Vec<String> = self.findings.iter().map(render_finding).collect();
        out.push_str(&findings.join(",\n"));
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        let suppressed: Vec<String> = self
            .suppressed
            .iter()
            .map(|s| {
                let mut body = render_finding(&s.finding);
                body.truncate(body.len() - 1); // drop trailing `}`
                format!(
                    "{body}, \"reason\": \"{}\", \"scope\": \"{}\"}}",
                    json_escape(&s.reason),
                    s.scope
                )
            })
            .collect();
        out.push_str(&suppressed.join(",\n"));
        if !self.suppressed.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"warnings\": [\n");
        let warnings: Vec<String> = self
            .warnings
            .iter()
            .map(|w| {
                format!(
                    "    {{\"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                    json_escape(&w.file),
                    w.line,
                    json_escape(&w.message)
                )
            })
            .collect();
        out.push_str(&warnings.join(",\n"));
        if !self.warnings.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
        if let Some(g) = &self.graph {
            out.push_str("  \"graph\": {\n");
            out.push_str(&format!(
                "    \"fns\": {}, \"edges\": {}, \"hot_roots\": {}, \"no_panic_roots\": {}, \"cold_barriers\": {},\n",
                g.fns, g.edges, g.hot_roots, g.no_panic_roots, g.cold_barriers
            ));
            out.push_str(&format!(
                "    \"calls_total\": {}, \"resolved\": {}, \"external\": {}, \"ambiguous\": {}, \"unknown\": {},\n",
                g.calls_total, g.resolved, g.external, g.ambiguous, g.unknown
            ));
            out.push_str(&format!(
                "    \"hot_reachable\": {}, \"resolution_per_mille\": {},\n",
                g.hot_reachable,
                g.resolution_per_mille()
            ));
            out.push_str("    \"gaps\": [\n");
            let gaps: Vec<String> = g
                .gaps
                .iter()
                .map(|gap| {
                    format!(
                        "      {{\"file\": \"{}\", \"line\": {}, \"call\": \"{}\", \"kind\": \"{}\"}}",
                        json_escape(&gap.file),
                        gap.line,
                        json_escape(&gap.call),
                        gap.kind
                    )
                })
                .collect();
            out.push_str(&gaps.join(",\n"));
            if !g.gaps.is_empty() {
                out.push('\n');
            }
            out.push_str("    ]\n");
            out.push_str("  },\n");
        }
        out.push_str(&format!(
            "  \"summary\": {{\"files_scanned\": {}, \"findings\": {}, \"suppressed\": {}, \"warnings\": {}}}\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len(),
            self.warnings.len()
        ));
        out.push_str("}\n");
        out
    }
}

fn render_finding(f: &Finding) -> String {
    format!(
        "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\"}}",
        json_escape(&f.rule),
        json_escape(&f.file),
        f.line,
        json_escape(&f.message),
        json_escape(&f.hint)
    )
}

/// Finds the reasoned directive that covers `finding`, if any. Line
/// scope wins over file scope so the audit trail points at the closest
/// justification.
fn matching_directive<'a>(
    file: &'a FileAnalysis,
    finding: &Finding,
) -> Option<(&'a CachedDirective, &'static str)> {
    let covers =
        |d: &CachedDirective| d.reason.is_some() && d.rules.iter().any(|r| r == &finding.rule);
    if let Some(d) = file.directives.iter().find(|d| {
        d.scope == Scope::Line && covers(d) && d.line <= finding.line && finding.line <= d.cover_end
    }) {
        return Some((d, "line"));
    }
    file.directives
        .iter()
        .find(|d| d.scope == Scope::File && covers(d))
        .map(|d| (d, "file"))
}

/// Escapes a string for inclusion in a JSON double-quoted literal
/// (mirrors `chaos_obs`'s escaper).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Config;
    use crate::scan::SourceFile;

    fn file(path: &str, src: &str) -> FileAnalysis {
        let mut a = crate::analyze_file(&SourceFile::from_source(path, src), &Config::default());
        // These tests inject findings by hand; drop the real ones so
        // the fixtures only see what each test constructs.
        a.findings.clear();
        a
    }

    fn finding(rule: &str, path: &str, line: usize) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: path.to_string(),
            line,
            message: "m".to_string(),
            hint: "h".to_string(),
        }
    }

    #[test]
    fn line_allow_suppresses_same_and_next_line() {
        let f = file(
            "crates/d/src/x.rs",
            "fn a() {}\n// chaos-lint: allow(R4) — invariant holds\nfn b() {}\n",
        );
        let report = Report::assemble(
            &[f],
            vec![
                finding("R4", "crates/d/src/x.rs", 2),
                finding("R4", "crates/d/src/x.rs", 3),
                finding("R4", "crates/d/src/x.rs", 1),
            ],
        );
        assert_eq!(report.suppressed.len(), 2);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 1);
        assert!(report.warnings.is_empty());
        assert!(report
            .suppressed
            .iter()
            .all(|s| s.reason == "invariant holds" && s.scope == "line"));
    }

    #[test]
    fn file_allow_covers_whole_file_with_file_scope() {
        let f = file(
            "crates/d/src/x.rs",
            "// chaos-lint: allow-file(R1) — order-insensitive sums\nfn a() {}\n",
        );
        let report = Report::assemble(&[f], vec![finding("R1", "crates/d/src/x.rs", 40)]);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].scope, "file");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let f = file(
            "crates/d/src/x.rs",
            "// chaos-lint: allow(R2) — timing side channel\nfn a() {}\n",
        );
        let report = Report::assemble(&[f], vec![finding("R4", "crates/d/src/x.rs", 2)]);
        assert_eq!(report.findings.len(), 1);
        // The R2 allow matched nothing → warned as unused.
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].message.contains("matched no finding"));
    }

    #[test]
    fn reasonless_allow_warns_and_does_not_apply() {
        let f = file("crates/d/src/x.rs", "// chaos-lint: allow(R4)\nfn a() {}\n");
        let report = Report::assemble(&[f], vec![finding("R4", "crates/d/src/x.rs", 2)]);
        assert_eq!(
            report.findings.len(),
            1,
            "reason-less allow must not suppress"
        );
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].message.contains("no reason"));
    }

    #[test]
    fn unknown_rule_in_allow_warns() {
        let f = file(
            "crates/d/src/x.rs",
            "// chaos-lint: allow(R9) — beyond the registry\nfn a() {}\n",
        );
        let report = Report::assemble(&[f], Vec::new());
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.message.contains("unknown rule")));
    }

    #[test]
    fn dangling_marker_surfaces_as_warning() {
        let f = file(
            "crates/d/src/x.rs",
            "fn a() {}\n// chaos-lint: hot — nothing follows\n",
        );
        let report = Report::assemble(&[f], Vec::new());
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(report.warnings[0].message.contains("attaches to nothing"));
        assert_eq!(report.warnings[0].line, 2);
    }

    #[test]
    fn json_is_balanced_and_carries_reasons() {
        let f = file(
            "crates/d/src/x.rs",
            "// chaos-lint: allow(R4) — reason \"quoted\"\nfn a() {}\n",
        );
        let mut report = Report::assemble(
            &[f],
            vec![
                finding("R4", "crates/d/src/x.rs", 2),
                finding("R1", "crates/d/src/x.rs", 9),
            ],
        );
        report.graph = Some(GraphStats::default());
        let json = report.render_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"schema\": \"chaos-lint/2\""));
        assert!(json.contains("\"reason\": \"reason \\\"quoted\\\"\""));
        assert!(json.contains("\"findings\": 1"));
        assert!(json.contains("\"suppressed\": 1"));
        assert!(json.contains("\"resolution_per_mille\": 1000"));
    }

    #[test]
    fn findings_sort_deterministically() {
        let report = Report::assemble(
            &[],
            vec![
                finding("R2", "b.rs", 9),
                finding("R1", "a.rs", 100),
                finding("R1", "a.rs", 2),
            ],
        );
        let order: Vec<(String, usize)> = report
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2),
                ("a.rs".to_string(), 100),
                ("b.rs".to_string(), 9)
            ]
        );
    }
}
