//! The rule registry: eight static checks tuned to this workspace's
//! bit-identity and hot-path invariants.
//!
//! | id | name | catches |
//! |----|------|---------|
//! | R1 | hash-iteration-order | iterating `HashMap`/`HashSet` (order is nondeterministic) |
//! | R2 | wall-clock-entropy | `Instant::now`, `SystemTime::now`, unseeded RNGs outside bench code |
//! | R3 | env-config-bypass | `env::var("CHAOS_*")` outside the sanctioned config entry points |
//! | R4 | lib-panic-path | `unwrap`/`expect`/panic macros/literal indexing in library code |
//! | R5 | crate-hygiene | missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` headers |
//! | R6 | hot-path-allocation | allocating constructs reachable from `// chaos-lint: hot` roots |
//! | R7 | transitive-panic | panic sites reachable from hot / `no-panic` roots |
//! | R8 | unordered-float-reduction | float `sum`/`fold` inside `par_map`/thread-spawn spans |
//!
//! R1–R5 are per-file token-pattern matchers; R6/R7 traverse the
//! cross-file call graph built by [`crate::symbols`] and
//! [`crate::graph`]; R8 is lexical (the reduction and the parallel span
//! must share a function). None of them have type information, so each
//! rule documents its known blind spots and errs toward firing;
//! intentional sites are annotated with a reasoned suppression rather
//! than silently skipped.

use crate::lexer::{Tok, TokKind};
use crate::report::Finding;
use crate::scan::{FileRole, SourceFile};
use crate::symbols::{FnDef, REDUCTIONS};
use crate::FileAnalysis;
use std::collections::BTreeSet;

/// Static metadata for one rule, surfaced in reports, docs, and
/// `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Stable rule ID (`R1`…`R8`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description of what the rule enforces.
    pub summary: &'static str,
    /// Generic fix hint attached to findings.
    pub hint: &'static str,
    /// Why the rule exists, for `--explain`.
    pub rationale: &'static str,
    /// A minimal violating snippet, for `--explain`.
    pub bad: &'static str,
    /// The corresponding clean snippet, for `--explain`.
    pub good: &'static str,
    /// How to suppress intentionally, for `--explain`.
    pub suppression: &'static str,
}

/// R1's metadata (see [`RULES`]).
pub const R1_META: RuleMeta = RuleMeta {
    id: "R1",
    name: "hash-iteration-order",
    summary: "iteration over HashMap/HashSet is order-nondeterministic and must not feed \
              ordered merges, float reductions, serialized output, or returned collections",
    hint: "switch to BTreeMap/BTreeSet, or collect and sort before consuming; suppress with \
           a reason only if every consumer is provably order-insensitive",
    rationale: "HashMap/HashSet iteration order changes between processes (SipHash keys are \
                randomized), so any float reduction, serialization, or merge fed from it \
                breaks the workspace's bit-identity contract across runs.",
    bad: "let m: HashMap<u32, f64> = build();\nlet total: f64 = m.values().sum(); // order-dependent float sum",
    good: "let m: BTreeMap<u32, f64> = build();\nlet total: f64 = m.values().sum(); // fixed order",
    suppression: "// chaos-lint: allow(R1) — consumer is order-insensitive because <why>",
};

/// R2's metadata (see [`RULES`]).
pub const R2_META: RuleMeta = RuleMeta {
    id: "R2",
    name: "wall-clock-entropy",
    summary: "wall-clock and entropy sources (Instant::now, SystemTime::now, thread_rng, \
              from_entropy, OsRng) are nondeterministic; only chaos-bench timing code may \
              read them freely",
    hint: "thread a seeded rand_chacha RNG or an injected clock through the call site; \
           suppress with a reason if the value is a pure side channel (e.g. span timing)",
    rationale: "A model fit or replay that reads the clock or OS entropy produces different \
                bits on every run, which makes the paper's accuracy numbers unverifiable \
                and golden-trace tests flaky.",
    bad: "let seed = SystemTime::now().duration_since(UNIX_EPOCH)?.as_nanos();",
    good: "let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed); // seed flows from config",
    suppression: "// chaos-lint: allow(R2) — value is a side channel only because <why>",
};

/// R3's metadata (see [`RULES`]).
pub const R3_META: RuleMeta = RuleMeta {
    id: "R3",
    name: "env-config-bypass",
    summary: "CHAOS_* environment variables may only be read by the sanctioned config entry \
              points (chaos-stats exec policy, chaos-obs level), so one run has one config",
    hint: "accept the setting as a parameter threaded from ExecPolicy::from_env / \
           chaos_obs::init_from_env instead of re-reading the environment",
    rationale: "If arbitrary code re-reads CHAOS_* variables, two parts of one run can see \
                different configurations (tests mutate the environment); funneling reads \
                through two entry points keeps one run on one config.",
    bad: "let threads = std::env::var(\"CHAOS_THREADS\").unwrap_or_default();",
    good: "fn fit(pol: &ExecPolicy) { /* thread count arrives as a value */ }",
    suppression: "// chaos-lint: allow(R3) — sanctioned read because <why>",
};

/// R4's metadata (see [`RULES`]).
pub const R4_META: RuleMeta = RuleMeta {
    id: "R4",
    name: "lib-panic-path",
    summary: "unwrap/expect/panic!/literal slice indexing in library (non-test, non-bin) \
              code can abort the estimation pipeline at runtime",
    hint: "return a typed error (StatsError, CollectError) or use checked access (.get, \
           .first, .last); suppress with the invariant that makes the panic unreachable",
    rationale: "Library code runs inside long-lived fleet servers; a panic aborts the whole \
                estimation pipeline. Errors must surface as typed values the caller can \
                handle, not as process aborts.",
    bad: "pub fn mean(xs: &[f64]) -> f64 { xs.first().copied().unwrap() }",
    good: "pub fn mean(xs: &[f64]) -> Result<f64, StatsError> {\n    xs.first().copied().ok_or(StatsError::Empty)\n}",
    suppression: "// chaos-lint: allow(R4) — cannot panic because <invariant>",
};

/// R5's metadata (see [`RULES`]).
pub const R5_META: RuleMeta = RuleMeta {
    id: "R5",
    name: "crate-hygiene",
    summary: "every workspace library crate root must carry #![forbid(unsafe_code)] and \
              #![deny(missing_docs)]",
    hint: "add the two inner attributes at the top of the crate's lib.rs",
    rationale: "The workspace's determinism argument leans on safe Rust (no data races by \
                construction) and on documented invariants; both headers make the compiler \
                enforce that baseline per crate.",
    bad: "//! My crate.\npub fn f() {}",
    good: "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! My crate.\n\n/// Documented.\npub fn f() {}",
    suppression: "// chaos-lint: allow(R5) — <why this crate is exempt>",
};

/// R6's metadata (see [`RULES`]).
pub const R6_META: RuleMeta = RuleMeta {
    id: "R6",
    name: "hot-path-allocation",
    summary: "functions reachable from a `// chaos-lint: hot` root must not reach \
              allocating constructs (Vec::new, push, collect, to_vec, clone, format!, \
              Box::new, String ops); the steady-state tick path is allocation-free",
    hint: "reuse a scratch buffer owned by the engine (see BatchScratch), or mark the \
           callee `// chaos-lint: cold — reason` if it is genuinely off the tick path; \
           suppress with a reason only if the construct provably does not allocate",
    rationale: "The per-second streaming path is pinned allocation-free by the \
                alloc_regression harness; an allocation introduced three calls deep shows \
                up as a latency spike at fleet scale long before a test catches it. R6 \
                walks the call graph so the distance between the hot root and the \
                allocation does not hide it.",
    bad: "// chaos-lint: hot — per-tick\npub fn push_second(&mut self) { self.assemble() }\nfn assemble(&mut self) { let mut row = Vec::new(); /* … */ }",
    good: "// chaos-lint: hot — per-tick\npub fn push_second(&mut self) { self.assemble() }\nfn assemble(&mut self) { self.scratch.row.clear(); /* reuse */ }",
    suppression: "// chaos-lint: allow(R6) — does not allocate because <why> \
                  (or mark the fn `// chaos-lint: cold — reason`)",
};

/// R7's metadata (see [`RULES`]).
pub const R7_META: RuleMeta = RuleMeta {
    id: "R7",
    name: "transitive-panic",
    summary: "functions reachable from `hot` or `no-panic` roots must not contain \
              unwrap/expect/panic!/literal indexing — R4 extended across the call graph \
              to everything a protected root can reach",
    hint: "return a typed error through the chain, use checked access, or mark the callee \
           `// chaos-lint: cold — reason`; suppress with the invariant that makes the \
           panic unreachable",
    rationale: "R4 audits library files one at a time; a request handler is only as \
                panic-free as everything it calls. R7 walks the resolved call graph from \
                the annotated roots so a new unwrap in a leaf utility cannot silently put \
                an abort under a serve endpoint.",
    bad: "// chaos-lint: no-panic — request handler\nfn handle(req: &str) -> Reply { decode(req) }\nfn decode(s: &str) -> Reply { s.parse().unwrap() }",
    good: "// chaos-lint: no-panic — request handler\nfn handle(req: &str) -> Reply {\n    match decode(req) { Ok(r) => r, Err(e) => Reply::bad_request(e) }\n}",
    suppression: "// chaos-lint: allow(R7) — cannot panic because <invariant> \
                  (often alongside an existing allow(R4))",
};

/// R8's metadata (see [`RULES`]).
pub const R8_META: RuleMeta = RuleMeta {
    id: "R8",
    name: "unordered-float-reduction",
    summary: "float sum()/product()/fold()/reduce() inside par_map/par_map_mut/thread-spawn \
              argument spans merges in scheduler order; float addition is not associative, \
              so results drift across thread counts",
    hint: "reduce per shard and combine in fixed shard order (the pattern chaos-stats \
           kernels use), or move the reduction outside the parallel span",
    rationale: "CHAOS pins bit-identical output across CHAOS_THREADS settings. A float \
                reduction inside a parallel span commits to whatever order the scheduler \
                delivers, so the same input can produce different low bits on different \
                machines — exactly the drift the golden traces exist to catch.",
    bad: "pol.par_map(&shards, |s| s.iter().sum::<f64>() + global.iter().sum::<f64>());",
    good: "let per_shard: Vec<f64> = pol.par_map(&shards, shard_sum);\nlet total: f64 = per_shard.iter().sum(); // fixed shard order",
    suppression: "// chaos-lint: allow(R8) — order-insensitive because <why>",
};

/// The registry, in rule-ID order.
pub const RULES: [RuleMeta; 8] = [
    R1_META, R2_META, R3_META, R4_META, R5_META, R6_META, R7_META, R8_META,
];

/// Looks up a rule's metadata by ID.
pub fn rule(id: &str) -> Option<&'static RuleMeta> {
    RULES.iter().find(|r| r.id == id)
}

/// Tunable policy: which crates and files are exempt from which rules.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose whole purpose is timing (R2 does not apply).
    pub r2_exempt_crates: Vec<String>,
    /// Path suffixes of the sanctioned env-read entry points (R3).
    pub r3_sanctioned_files: Vec<String>,
    /// Env-var prefix R3 guards.
    pub env_prefix: String,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            r2_exempt_crates: vec!["chaos-bench".to_string()],
            r3_sanctioned_files: vec![
                "crates/chaos-stats/src/exec.rs".to_string(),
                "crates/chaos-obs/src/level.rs".to_string(),
            ],
            env_prefix: "CHAOS".to_string(),
        }
    }
}

fn finding(meta: &RuleMeta, file: &SourceFile, line: usize, message: String) -> Finding {
    Finding {
        rule: meta.id.to_string(),
        file: file.rel_path.clone(),
        line,
        message,
        hint: meta.hint.to_string(),
    }
}

/// Runs the per-file rules (R1–R4) over one source file.
pub fn check_file(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    check_r1(file, &mut out);
    check_r2(file, cfg, &mut out);
    check_r3(file, cfg, &mut out);
    check_r4(file, &mut out);
    out
}

/// Runs the workspace-level hygiene rule (R5) over all analyzed files.
pub fn check_hygiene(files: &[FileAnalysis]) -> Vec<Finding> {
    let meta = &R5_META;
    let mut out = Vec::new();
    for file in files {
        if !file.rel_path.ends_with("src/lib.rs") {
            continue;
        }
        let missing: Vec<&str> = [
            (file.has_forbid_unsafe, "#![forbid(unsafe_code)]"),
            (file.has_deny_missing_docs, "#![deny(missing_docs)]"),
        ]
        .iter()
        .filter(|(present, _)| !present)
        .map(|(_, text)| *text)
        .collect();
        if !missing.is_empty() {
            out.push(Finding {
                rule: meta.id.to_string(),
                file: file.rel_path.clone(),
                line: 1,
                message: format!(
                    "crate `{}` is missing the hygiene header(s): {}",
                    file.crate_name,
                    missing.join(", ")
                ),
                hint: meta.hint.to_string(),
            });
        }
    }
    out
}

/// R8: float reductions inside parallel spans. Lexical — the reduction
/// and the `par_map`/`thread::scope`/`spawn` call must share a function
/// body, and a float element type must be visible at the call (an
/// `::<f64>` turbofish or a float `fold` seed). Reductions hidden
/// behind helper calls or unannotated types are a documented blind
/// spot; library roles only, like R4.
pub fn check_r8(rel_path: &str, role: FileRole, fns: &[FnDef]) -> Vec<Finding> {
    let meta = &R8_META;
    let mut out = Vec::new();
    if role != FileRole::Lib {
        return out;
    }
    for def in fns.iter().filter(|d| !d.is_test) {
        for call in &def.calls {
            if REDUCTIONS.contains(&call.name()) && call.in_par_scope && call.float_evidence {
                out.push(Finding {
                    rule: meta.id.to_string(),
                    file: rel_path.to_string(),
                    line: call.line,
                    message: format!(
                        "`.{}(…)` reduces floats inside a parallel span in `{}`; the merge \
                         order is scheduler-dependent",
                        call.name(),
                        def.display()
                    ),
                    hint: meta.hint.to_string(),
                });
            }
        }
    }
    out
}

/// Detects the inner attribute `#![<lint>(<arg>)]` in a token stream.
pub(crate) fn has_inner_attr(toks: &[Tok], lint: &str, arg: &str) -> bool {
    toks.windows(7).any(|w| {
        matches!(w, [hash, bang, open, l, paren, a, close]
            if hash.text == "#"
                && bang.text == "!"
                && open.text == "["
                && l.text == lint
                && paren.text == "("
                && a.text == arg
                && close.text == ")")
    })
}

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// R1: iteration over `HashMap`/`HashSet`.
///
/// Without type inference the rule tracks names *declared* as hash
/// collections in the same file — `let x: HashMap<…>`, struct fields
/// `x: Mutex<HashMap<…>>`, `let x = HashMap::new()` — and fires when
/// one of those names is iterated (`for … in x`, `x.iter()`, `.keys()`,
/// `.values()`, `.drain()`, …). Cross-file aliasing is a known blind
/// spot; the dynamic golden-trace suite remains the backstop.
fn check_r1(file: &SourceFile, out: &mut Vec<Finding>) {
    let meta = &R1_META;
    let toks = &file.lex.tokens;
    let hash_names = collect_hash_names(toks);
    if hash_names.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        // `receiver.method(` where method observes iteration order.
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].text == "."
            && toks[i - 1].kind == TokKind::Punct
            && matches!(toks.get(i + 1), Some(n) if n.text == "(")
            && toks[i - 2].kind == TokKind::Ident
            && hash_names.contains(toks[i - 2].text.as_str())
        {
            out.push(finding(
                meta,
                file,
                t.line,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in nondeterministic order",
                    toks[i - 2].text,
                    t.text
                ),
            ));
        }
        // `for pat in [&[mut]] name {` — direct IntoIterator use.
        if t.kind == TokKind::Ident && t.text == "in" {
            let mut j = i + 1;
            while matches!(toks.get(j), Some(n) if n.text == "&" || n.text == "mut") {
                j += 1;
            }
            let (Some(name), Some(after)) = (toks.get(j), toks.get(j + 1)) else {
                continue;
            };
            if name.kind == TokKind::Ident
                && hash_names.contains(name.text.as_str())
                && after.text == "{"
            {
                out.push(finding(
                    meta,
                    file,
                    name.line,
                    format!(
                        "`for … in {}` iterates a HashMap/HashSet in nondeterministic order",
                        name.text
                    ),
                ));
            }
        }
    }
}

/// Collects names declared (or assigned) as `HashMap`/`HashSet` in this
/// file: binding/field type ascriptions and `= HashMap::new()`-style
/// initializers.
fn collect_hash_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk left over type-position tokens (wrappers like
        // `Mutex<Option<HashMap<…>>>`, path segments, references).
        let mut j = i;
        while j > 0 {
            let prev = &toks[j - 1];
            let step = match prev.text.as_str() {
                "<" | "&" | "'" => 1,
                ":" if j >= 2 && toks[j - 2].text == ":" => 2, // `::` path
                _ if prev.kind == TokKind::Ident || prev.kind == TokKind::Lifetime => 1,
                _ => 0,
            };
            if step == 0 {
                break;
            }
            j -= step;
        }
        if j == 0 {
            continue;
        }
        let boundary = &toks[j - 1];
        // `name : <type containing HashMap>` — ascription or field.
        if boundary.text == ":" && j >= 2 && !(j >= 3 && toks[j - 2].text == ":") {
            let name = &toks[j - 2];
            if name.kind == TokKind::Ident {
                names.insert(name.text.clone());
            }
        }
        // `name = HashMap::new()` / `HashMap::with_capacity(…)` /
        // `HashMap::from(…)` — untyped initializer.
        if boundary.text == "=" && j >= 2 {
            let name = &toks[j - 2];
            if name.kind == TokKind::Ident && name.text != "=" {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

/// Clock and entropy sources R2 looks for, as `(path-prefix, method)`
/// pairs (`None` matches the bare identifier anywhere).
const CLOCKS: [(&str, &str); 2] = [("Instant", "now"), ("SystemTime", "now")];
const ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// R2: wall-clock and entropy reads outside sanctioned timing code.
///
/// Clocks are allowed in benches and in `#[cfg(test)]` regions (a test
/// may time itself without perturbing results); unseeded entropy is
/// flagged everywhere it appears, because a randomly seeded test is a
/// flaky test.
fn check_r2(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let meta = &R2_META;
    if cfg.r2_exempt_crates.contains(&file.crate_name) {
        return;
    }
    let toks = &file.lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        for (ty, method) in CLOCKS {
            if t.text == ty
                && matches!(toks.get(i + 1), Some(a) if a.text == ":")
                && matches!(toks.get(i + 2), Some(b) if b.text == ":")
                && matches!(toks.get(i + 3), Some(m) if m.text == method)
            {
                let in_timing_scope = file.role == FileRole::Bench
                    || file.role == FileRole::Test
                    || file.is_test_line(t.line);
                if !in_timing_scope {
                    out.push(finding(
                        meta,
                        file,
                        t.line,
                        format!("`{ty}::{method}` reads the wall clock outside bench code"),
                    ));
                }
            }
        }
        if ENTROPY.contains(&t.text.as_str()) && file.role != FileRole::Bench {
            out.push(finding(
                meta,
                file,
                t.line,
                format!(
                    "`{}` draws operating-system entropy; results become irreproducible",
                    t.text
                ),
            ));
        }
    }
}

/// R3: `env::var("CHAOS_*")` outside the sanctioned entry points.
///
/// Test code is exempt (tests orchestrate configs); everything else
/// must receive configuration as values, so a run's policy is decided
/// exactly once.
fn check_r3(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let meta = &R3_META;
    if file.role == FileRole::Test {
        return;
    }
    if cfg
        .r3_sanctioned_files
        .iter()
        .any(|s| file.rel_path.ends_with(s.as_str()))
    {
        return;
    }
    let toks = &file.lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "var" && t.text != "var_os") {
            continue;
        }
        // Require an `env::` path prefix so plain `var(…)` helpers in
        // unrelated code don't fire.
        let is_env_path = i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "env";
        if !is_env_path || file.is_test_line(t.line) {
            continue;
        }
        if !matches!(toks.get(i + 1), Some(n) if n.text == "(") {
            continue;
        }
        // The key is the first string literal in the argument tokens.
        let mut j = i + 2;
        let mut key: Option<&Tok> = None;
        while let Some(a) = toks.get(j) {
            if a.kind == TokKind::Str {
                key = Some(a);
                break;
            }
            if a.text == ")" || j > i + 6 {
                break;
            }
            j += 1;
        }
        match key {
            Some(k) if k.text.starts_with(&cfg.env_prefix) => out.push(finding(
                meta,
                file,
                t.line,
                format!(
                    "`env::{}(\"{}\")` re-reads {}_* configuration outside the sanctioned entry points",
                    t.text, k.text, cfg.env_prefix
                ),
            )),
            Some(_) => {}
            None => out.push(finding(
                meta,
                file,
                t.line,
                format!(
                    "`env::{}` with a non-literal key cannot be audited for {}_* reads",
                    t.text, cfg.env_prefix
                ),
            )),
        }
    }
}

/// Identifiers that panic when invoked as macros.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// R4: panic paths in library code.
///
/// Applies to [`FileRole::Lib`] files only, outside `#[cfg(test)]`
/// regions. Flags `.unwrap()` / `.expect(…)` calls, panic-family
/// macros, and *literal-integer* indexing (`xs[0]`) — the
/// "first/last element" pattern that aborts on empty input. Computed
/// indices (`xs[i]`) are loop-bounded in this codebase and stay exempt.
fn check_r4(file: &SourceFile, out: &mut Vec<Finding>) {
    let meta = &R4_META;
    if file.role != FileRole::Lib {
        return;
    }
    let toks = &file.lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && toks[i - 1].text == "."
            && matches!(toks.get(i + 1), Some(n) if n.text == "(")
        {
            out.push(finding(
                meta,
                file,
                t.line,
                format!("`.{}()` can panic in a library hot path", t.text),
            ));
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(n) if n.text == "!")
        {
            out.push(finding(
                meta,
                file,
                t.line,
                format!("`{}!` aborts a library hot path", t.text),
            ));
        }
        // `recv[0]` — literal-index element access.
        if t.kind == TokKind::Punct
            && t.text == "["
            && i >= 1
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].text == ")"
                || toks[i - 1].text == "]")
            && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Num)
            && matches!(toks.get(i + 2), Some(n) if n.text == "]")
        {
            let recv = if toks[i - 1].kind == TokKind::Ident {
                toks[i - 1].text.as_str()
            } else {
                "expression"
            };
            out.push(finding(
                meta,
                file,
                t.line,
                format!(
                    "`{}[{}]` literal indexing panics when the collection is shorter",
                    recv,
                    toks[i + 1].text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src);
        check_file(&f, &Config::default())
    }

    fn rules_fired(findings: &[Finding]) -> BTreeSet<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn r1_fires_on_tracked_map_iteration() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m { drop((k, v)); }\n    let _: Vec<_> = m.keys().collect();\n}\n";
        let fs = lint("crates/demo/src/x.rs", src);
        assert_eq!(fs.iter().filter(|f| f.rule == "R1").count(), 2, "{fs:?}");
    }

    #[test]
    fn r1_tracks_struct_fields_through_wrappers() {
        let src = "struct S { cache: std::sync::Mutex<std::collections::HashMap<u64, f64>> }\nimpl S { fn f(&self) { for v in self.cache.lock().unwrap().values() { drop(v); } } }\n";
        // `.values()` receiver is the `unwrap()` call — the heuristic sees
        // `cache` only through the direct-name path, so this exercises the
        // blind spot note instead: direct field iteration *is* caught.
        let src2 = "struct S { counts: std::collections::HashMap<u64, f64> }\nimpl S { fn f(&self) { for v in self.counts.values() { drop(v); } } }\n";
        let _ = lint("crates/demo/src/x.rs", src);
        let fs = lint("crates/demo/src/y.rs", src2);
        assert!(rules_fired(&fs).contains("R1"), "{fs:?}");
    }

    #[test]
    fn r1_stays_quiet_on_btreemap_and_lookups() {
        let src = "use std::collections::{BTreeMap, HashMap};\nfn f() {\n    let mut b: BTreeMap<u32, u32> = BTreeMap::new();\n    for (k, v) in &b { drop((k, v)); }\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    m.insert(1, 2);\n    let _ = m.get(&1);\n    let _ = m.len();\n}\n";
        let fs = lint("crates/demo/src/x.rs", src);
        assert!(!rules_fired(&fs).contains("R1"), "{fs:?}");
    }

    #[test]
    fn r2_fires_on_clock_and_entropy_in_lib() {
        let src = "use std::time::Instant;\nfn f() -> std::time::Instant { Instant::now() }\nfn g() { let mut r = rand::thread_rng(); let _ = &mut r; }\n";
        let fs = lint("crates/demo/src/x.rs", src);
        assert_eq!(fs.iter().filter(|f| f.rule == "R2").count(), 2, "{fs:?}");
    }

    #[test]
    fn r2_exempts_bench_crate_and_bench_role() {
        let src = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert!(lint("crates/chaos-bench/src/bin/t.rs", src).is_empty());
        assert!(lint("crates/demo/benches/b.rs", src).is_empty());
    }

    #[test]
    fn r2_allows_clocks_but_not_entropy_in_tests() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::time::Instant::now();\n        let _ = rand::thread_rng();\n    }\n}\n";
        let fs = lint("crates/demo/src/x.rs", src);
        let r2: Vec<_> = fs.iter().filter(|f| f.rule == "R2").collect();
        assert_eq!(r2.len(), 1, "{fs:?}");
        assert!(r2[0].message.contains("thread_rng"));
    }

    #[test]
    fn r3_fires_outside_sanctioned_files_only() {
        let src = "fn f() -> String { std::env::var(\"CHAOS_THREADS\").unwrap_or_default() }\n";
        let fs = lint("crates/demo/src/x.rs", src);
        assert!(rules_fired(&fs).contains("R3"), "{fs:?}");
        let fs = lint("crates/chaos-stats/src/exec.rs", src);
        assert!(!rules_fired(&fs).contains("R3"), "{fs:?}");
    }

    #[test]
    fn r3_ignores_non_chaos_keys_and_tests() {
        let src = "fn f() { let _ = std::env::var(\"PATH\"); }\n";
        assert!(!rules_fired(&lint("crates/demo/src/x.rs", src)).contains("R3"));
        let src = "fn f() { let _ = std::env::var(\"CHAOS_OBS\"); }\n";
        assert!(!rules_fired(&lint("crates/demo/tests/t.rs", src)).contains("R3"));
    }

    #[test]
    fn r3_flags_unresolvable_keys() {
        let src = "fn f(k: &str) { let _ = std::env::var(k); }\n";
        let fs = lint("crates/demo/src/x.rs", src);
        assert!(fs
            .iter()
            .any(|f| f.rule == "R3" && f.message.contains("non-literal")));
    }

    #[test]
    fn r4_fires_in_lib_not_in_bins_tests_or_cfg_test() {
        let src = "fn f(v: &[f64]) -> f64 { v[0] + v.first().copied().unwrap() }\n";
        let fs = lint("crates/demo/src/x.rs", src);
        assert_eq!(fs.iter().filter(|f| f.rule == "R4").count(), 2, "{fs:?}");
        assert!(lint("crates/demo/src/bin/m.rs", src).is_empty());
        assert!(lint("crates/demo/tests/t.rs", src).is_empty());
        let gated = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint("crates/demo/src/x.rs", &gated).is_empty());
    }

    #[test]
    fn r4_panic_macros_and_computed_indices() {
        let src = "fn f(v: &[f64], i: usize) -> f64 { if v.is_empty() { panic!(\"empty\") } else { v[i] } }\n";
        let fs = lint("crates/demo/src/x.rs", src);
        let r4: Vec<_> = fs.iter().filter(|f| f.rule == "R4").collect();
        assert_eq!(r4.len(), 1, "computed v[i] must not fire: {fs:?}");
        assert!(r4[0].message.contains("panic"));
    }

    #[test]
    fn r4_ignores_unwrap_or_variants() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint("crates/demo/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_detects_missing_headers() {
        let analyze = |path: &str, src: &str| {
            crate::analyze_file(&SourceFile::from_source(path, src), &Config::default())
        };
        let good = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! docs\n";
        let bad = "//! docs only\npub fn f() {}\n";
        let gf = analyze("crates/demo/src/lib.rs", good);
        let bf = analyze("crates/demo2/src/lib.rs", bad);
        let non_lib = analyze("crates/demo3/src/other.rs", bad);
        let fs = check_hygiene(&[gf, bf, non_lib]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "R5");
        assert!(fs[0].message.contains("demo2"));
    }

    #[test]
    fn r8_fires_only_on_par_scoped_float_reductions_in_libs() {
        let src = "fn f(xs: &[f64], pool: &Pool) -> f64 {\n    let seq: f64 = xs.iter().sum::<f64>();\n    pool.par_map(xs, |x| {\n        let _ = x.windows(2).map(|w| w[0]).sum::<f64>();\n    });\n    let counts: usize = xs.iter().map(|_| 1usize).sum();\n    seq\n}\n";
        let a = crate::analyze_file(
            &SourceFile::from_source("crates/demo/src/x.rs", src),
            &Config::default(),
        );
        let fs = check_r8("crates/demo/src/x.rs", FileRole::Lib, &a.fns);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "R8");
        assert_eq!(fs[0].line, 4);
        // Bin roles are exempt, mirroring R4.
        assert!(check_r8("crates/demo/src/bin/m.rs", FileRole::Bin, &a.fns).is_empty());
    }
}
