//! SARIF 2.1.0 emitter (`--sarif <path>`).
//!
//! SARIF (Static Analysis Results Interchange Format) is the schema
//! code hosts ingest for code-scanning annotations; emitting it lets CI
//! surface chaos-lint findings on the PR diff instead of in a log.
//!
//! Mapping:
//!
//! * live findings → `results` with `level: "error"` (they fail
//!   `--deny`), one location each;
//! * suppressed findings → `results` carrying a `suppressions` entry
//!   (`kind: "inSource"`, the directive's reason as `justification`) —
//!   SARIF viewers hide them by default but keep the audit trail;
//! * directive/marker warnings → `results` under a synthetic
//!   `lint-warning` rule with `level: "warning"`;
//! * the rule registry → `tool.driver.rules`, so `ruleIndex` links
//!   every result to its rationale.
//!
//! The output is hand-rolled like the rest of the crate; the
//! `sarif_golden` test pins the structural shape (schema URI, version,
//! required members) so drift fails CI rather than the uploader.

use crate::report::{json_escape, Report};
use crate::rules::RULES;

/// The synthetic rule ID carrying suppression-machinery warnings.
pub const WARNING_RULE_ID: &str = "lint-warning";

/// Renders `report` as a single-run SARIF 2.1.0 log.
pub fn render(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"chaos-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/chaos/chaos\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str("          \"rules\": [\n");
    let mut rules: Vec<String> = RULES
        .iter()
        .map(|r| {
            format!(
                "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"help\": {{\"text\": \"{}\"}}}}",
                r.id,
                json_escape(r.name),
                json_escape(r.summary),
                json_escape(r.hint)
            )
        })
        .collect();
    rules.push(format!(
        "            {{\"id\": \"{WARNING_RULE_ID}\", \"name\": \"suppression-hygiene\", \"shortDescription\": {{\"text\": \"problems with chaos-lint suppressions or markers\"}}, \"help\": {{\"text\": \"fix or remove the directive the message points at\"}}}}"
    ));
    out.push_str(&rules.join(",\n"));
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let mut results: Vec<String> = Vec::new();
    for f in &report.findings {
        results.push(result(
            &f.rule,
            "error",
            &format!("{} — hint: {}", f.message, f.hint),
            &f.file,
            f.line,
            None,
        ));
    }
    for s in &report.suppressed {
        results.push(result(
            &s.finding.rule,
            "note",
            &s.finding.message,
            &s.finding.file,
            s.finding.line,
            Some(&s.reason),
        ));
    }
    for w in &report.warnings {
        results.push(result(
            WARNING_RULE_ID,
            "warning",
            &w.message,
            &w.file,
            w.line,
            None,
        ));
    }
    out.push_str(&results.join(",\n"));
    if !results.is_empty() {
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn rule_index(id: &str) -> usize {
    RULES.iter().position(|r| r.id == id).unwrap_or(RULES.len()) // the synthetic warning rule is last
}

fn result(
    rule: &str,
    level: &str,
    message: &str,
    file: &str,
    line: usize,
    suppression_reason: Option<&str>,
) -> String {
    let mut s = format!(
        "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{level}\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {line}}}}}}}]",
        json_escape(rule),
        rule_index(rule),
        json_escape(message),
        json_escape(file),
    );
    if let Some(reason) = suppression_reason {
        s.push_str(&format!(
            ", \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": \"{}\"}}]",
            json_escape(reason)
        ));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Config;
    use crate::scan::SourceFile;

    fn report_for(path: &str, src: &str) -> Report {
        crate::lint_files(&[SourceFile::from_source(path, src)], &Config::default())
    }

    #[test]
    fn sarif_has_required_members_and_balanced_braces() {
        let sarif = render(&report_for(
            "crates/demo/src/lib.rs",
            "//! demo\nfn f(v: &[f64]) -> f64 { v.first().copied().unwrap() }\n",
        ));
        assert!(sarif.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"R4\""));
        assert!(sarif.contains("\"startLine\": 2"));
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
        assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
    }

    #[test]
    fn suppressed_findings_carry_in_source_suppressions() {
        let sarif = render(&report_for(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! demo\n\n/// Doc.\n// chaos-lint: allow(R4) — slice is non-empty by construction\npub fn f(v: &[f64]) -> f64 { v.first().copied().unwrap() }\n",
        ));
        assert!(sarif.contains("\"kind\": \"inSource\""));
        assert!(sarif.contains("\"justification\": \"slice is non-empty by construction\""));
        assert!(sarif.contains("\"level\": \"note\""));
    }

    #[test]
    fn warnings_map_to_the_synthetic_rule() {
        let sarif = render(&report_for(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! demo\n// chaos-lint: allow(R1) — matches nothing here\n",
        ));
        assert!(sarif.contains(&format!("\"ruleId\": \"{WARNING_RULE_ID}\"")));
        assert!(sarif.contains("\"level\": \"warning\""));
    }
}
