//! Workspace scanning: file discovery, role classification, and
//! `#[cfg(test)]` region tracking.
//!
//! Rules apply differently by *role* — R4 (panic paths) only audits
//! library code, R2 (clocks) exempts benches — so every file is
//! classified from its workspace-relative path before any rule runs.

use crate::directive::{self, Directive, Marker, ParseProblem};
use crate::lexer::{self, LexOutput, TokKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of compilation target a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library code (`crates/*/src/**`, excluding `src/bin/`).
    Lib,
    /// Binary code (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Criterion benches (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
}

impl FileRole {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FileRole::Lib => "lib",
            FileRole::Bin => "bin",
            FileRole::Test => "test",
            FileRole::Bench => "bench",
            FileRole::Example => "example",
        }
    }

    /// Inverse of [`FileRole::label`] (cache deserialization).
    pub fn from_label(s: &str) -> Option<FileRole> {
        [
            FileRole::Lib,
            FileRole::Bin,
            FileRole::Test,
            FileRole::Bench,
            FileRole::Example,
        ]
        .into_iter()
        .find(|r| r.label() == s)
    }
}

/// One lexed, classified source file ready for rule checking.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Owning crate (`chaos-core`, …; the root package is `chaos`).
    pub crate_name: String,
    /// Target classification (see [`FileRole`]).
    pub role: FileRole,
    /// Lexed tokens and comments.
    pub lex: LexOutput,
    /// Suppression directives parsed from the comments.
    pub directives: Vec<Directive>,
    /// Call-graph markers (`hot` / `no-panic` / `cold`), unattached.
    pub markers: Vec<Marker>,
    /// Malformed directives, surfaced as warnings.
    pub directive_problems: Vec<ParseProblem>,
    /// 1-based lines covered by `#[cfg(test)]` items or `#[test]` fns.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Builds a source file from in-memory text. The path decides role
    /// and crate; it does not need to exist on disk (fixture tests lean
    /// on this).
    pub fn from_source(rel_path: &str, src: &str) -> SourceFile {
        let lex = lexer::lex(src);
        let parsed = directive::parse(&lex.comments);
        let line_count = src.lines().count() + 1;
        let test_lines = mark_test_lines(&lex, line_count);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_of(rel_path),
            role: role_of(rel_path),
            lex,
            directives: parsed.directives,
            markers: parsed.markers,
            directive_problems: parsed.problems,
            test_lines,
        }
    }

    /// Reads and classifies one file from disk.
    ///
    /// # Errors
    ///
    /// Propagates the read error when the file is unreadable.
    pub fn load(root: &Path, abs: &Path) -> io::Result<SourceFile> {
        let src = fs::read_to_string(abs)?;
        Ok(SourceFile::from_source(&rel_path_of(root, abs), &src))
    }

    /// Whether `line` (1-based) sits inside a `#[cfg(test)]` item or a
    /// `#[test]` function.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// Last line of the statement that starts on `line + 1` — how far a
    /// line-scoped suppression written above a multi-line statement
    /// reaches. The scan walks tokens from the first one past `line`,
    /// tracking bracket depth, and stops at a `;` or `,` at depth zero
    /// (end of statement / struct field / macro argument) or at a `{`
    /// opening at depth zero (a block header ends there, so an allow
    /// above a `for`/`if` never swallows the whole body). Returns
    /// `line + 1` when the next code line is not adjacent.
    pub fn statement_end_after(&self, line: usize) -> usize {
        let toks = &self.lex.tokens;
        let Some(start) = toks.iter().position(|t| t.line > line) else {
            return line + 1;
        };
        if toks[start].line != line + 1 {
            return line + 1;
        }
        let mut depth = 0usize;
        let mut last = line + 1;
        for t in toks.iter().skip(start) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                "{" => {
                    if depth == 0 {
                        break;
                    }
                    depth += 1;
                }
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" | "," if depth == 0 => {
                    last = t.line;
                    break;
                }
                _ => {}
            }
            last = t.line;
        }
        last
    }
}

/// Classifies a workspace-relative path into a [`FileRole`].
fn role_of(rel: &str) -> FileRole {
    let rel = rel.trim_start_matches("./");
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileRole::Test
    } else if rel.starts_with("benches/") || rel.contains("/benches/") {
        FileRole::Bench
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileRole::Example
    } else if rel.contains("/src/bin/") || rel.ends_with("src/main.rs") {
        FileRole::Bin
    } else {
        FileRole::Lib
    }
}

/// Extracts the owning crate name (`crates/<name>/…`), defaulting to the
/// root package name for workspace-root paths.
fn crate_of(rel: &str) -> String {
    let rel = rel.trim_start_matches("./");
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "chaos".to_string()
}

/// Marks the line extent of every `#[cfg(test)]`-gated item and every
/// `#[test]` / `#[bench]` function.
///
/// The walk is token-based: on an attribute whose argument list names
/// `test` (and not under `not(...)`), it skips any further attributes
/// and doc comments, then marks lines up to the end of the following
/// item — the matching `}` of its first brace block, or the first `;`
/// at depth zero for braceless items.
fn mark_test_lines(lex: &LexOutput, line_count: usize) -> Vec<bool> {
    let toks = &lex.tokens;
    let mut marked = vec![false; line_count + 1];
    let mut i = 0usize;
    while i < toks.len() {
        let is_hash = toks[i].kind == TokKind::Punct && toks[i].text == "#";
        let open = i + 1;
        if !(is_hash && open < toks.len() && toks[open].text == "[") {
            i += 1;
            continue;
        }
        // Collect the attribute body tokens up to the matching `]`.
        let mut depth = 0usize;
        let mut j = open;
        let mut body: Vec<&str> = Vec::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                t if depth > 0 && j > open => body.push(t),
                _ => {}
            }
            j += 1;
        }
        let gates_test =
            (body.first() == Some(&"cfg") && body.contains(&"test") && !body.contains(&"not"))
                || body == ["test"]
                || body == ["bench"];
        if !gates_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes between the gate and the item.
        let mut k = j + 1;
        while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
            let mut d = 0usize;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the item extent: first `{ … }` block or a `;` before one.
        let start_line = toks[i].line;
        let mut end_line = start_line;
        let mut brace = 0usize;
        let mut entered = false;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => {
                    brace += 1;
                    entered = true;
                }
                "}" => {
                    brace = brace.saturating_sub(1);
                    if entered && brace == 0 {
                        end_line = toks[k].line;
                        break;
                    }
                }
                ";" if !entered && brace == 0 => {
                    end_line = toks[k].line;
                    break;
                }
                _ => {}
            }
            end_line = toks[k].line;
            k += 1;
        }
        for line in start_line..=end_line.min(line_count) {
            marked[line] = true;
        }
        i = k + 1;
    }
    marked
}

/// Workspace-relative, `/`-separated form of `abs` under `root` — the
/// path spelling used in findings, directive bookkeeping, and the
/// incremental cache.
pub fn rel_path_of(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects the `.rs` files the auditor scans, in sorted
/// (deterministic) order. Skips VCS/build/output directories and the
/// auditor's own lint fixtures, which are known-bad on purpose.
///
/// # Errors
///
/// Propagates directory-walk I/O errors.
pub fn collect_paths(root: &Path) -> io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: [&str; 5] = ["target", ".git", "results", ".github", "fixtures"];
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().to_string();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_follow_workspace_layout() {
        assert_eq!(role_of("crates/chaos-core/src/robust.rs"), FileRole::Lib);
        assert_eq!(
            role_of("crates/chaos-bench/src/bin/table2.rs"),
            FileRole::Bin
        );
        assert_eq!(
            role_of("crates/chaos-core/tests/determinism.rs"),
            FileRole::Test
        );
        assert_eq!(role_of("tests/end_to_end.rs"), FileRole::Test);
        assert_eq!(
            role_of("crates/chaos-bench/benches/parallel_fit.rs"),
            FileRole::Bench
        );
        assert_eq!(role_of("examples/quickstart.rs"), FileRole::Example);
        assert_eq!(role_of("src/lib.rs"), FileRole::Lib);
        assert_eq!(role_of("src/main.rs"), FileRole::Bin);
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(crate_of("crates/chaos-stats/src/exec.rs"), "chaos-stats");
        assert_eq!(crate_of("src/lib.rs"), "chaos");
        assert_eq!(crate_of("tests/end_to_end.rs"), "chaos");
    }

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\nfn also_live() {}\n";
        let f = SourceFile::from_source("crates/demo/src/x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(6));
        assert!(f.is_test_line(7));
        assert!(!f.is_test_line(8));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(not(test))]\nfn prod() { let x = 1; }\n";
        let f = SourceFile::from_source("crates/demo/src/x.rs", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn test_attr_with_intervening_attrs_is_marked() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn gated() {\n    body();\n}\n";
        let f = SourceFile::from_source("crates/demo/src/x.rs", src);
        assert!(f.is_test_line(4));
    }

    #[test]
    fn statement_end_spans_multiline_let() {
        let src = "// note\nlet catalog =\n    build(&cluster.machines()[0]);\nnext();\n";
        let f = SourceFile::from_source("crates/demo/src/x.rs", src);
        assert_eq!(f.statement_end_after(1), 3);
    }

    #[test]
    fn statement_end_stops_at_block_open() {
        let src = "// note\nfor x in ys\n{\n    body[0];\n}\n";
        let f = SourceFile::from_source("crates/demo/src/x.rs", src);
        // The `{` on line 3 ends the header: the body is not covered.
        assert_eq!(f.statement_end_after(1), 2);
    }

    #[test]
    fn statement_end_stops_at_field_comma() {
        let src = "let s = S {\n    // note\n    start: now(),\n    other: 1,\n};\n";
        let f = SourceFile::from_source("crates/demo/src/x.rs", src);
        assert_eq!(f.statement_end_after(2), 3);
    }

    #[test]
    fn statement_end_without_adjacent_code_is_next_line() {
        let src = "// note\n\nfar_away();\n";
        let f = SourceFile::from_source("crates/demo/src/x.rs", src);
        assert_eq!(f.statement_end_after(1), 2);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let f = SourceFile::from_source("crates/demo/src/x.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }
}
