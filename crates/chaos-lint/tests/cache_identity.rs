//! Incremental-cache contract, end to end through the CLI: a warm run
//! must produce a byte-identical JSON report while re-lexing nothing,
//! and editing one file must miss exactly that file.
//!
//! Byte identity is the load-bearing property — CI runs the linter
//! twice (cold, then warm) and diffs the reports, so any
//! cache-serialization drift in [`FileAnalysis`] shows up here first.

use std::path::Path;
use std::process::Command;

/// Builds a three-file fixture workspace and returns its root.
fn fixture_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("chaos-lint-cache-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("fixture tree");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        src.join("engine.rs"),
        "// chaos-lint: hot — fixture tick\npub fn tick(xs: &[f64]) -> f64 {\n    helper(xs)\n}\n\nfn helper(xs: &[f64]) -> f64 {\n    let mut t = 0.0;\n    for &x in xs {\n        t += x;\n    }\n    t\n}\n",
    )
    .expect("engine");
    std::fs::write(
        src.join("util.rs"),
        "pub fn double(x: f64) -> f64 {\n    x * 2.0\n}\n",
    )
    .expect("util");
    std::fs::write(
        src.join("dirty.rs"),
        "pub fn risky(v: &[f64]) -> f64 {\n    v.first().copied().unwrap()\n}\n",
    )
    .expect("dirty");
    root
}

/// Runs the CLI against `root`, returning (exit ok, stdout, stderr,
/// report bytes).
fn run(bin: &str, root: &Path) -> (bool, String, String, Vec<u8>) {
    let out = Command::new(bin)
        .args(["--root", root.to_str().expect("utf8 root")])
        .output()
        .expect("run chaos-lint");
    let report = std::fs::read(root.join("results/lint.json")).expect("lint.json");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        report,
    )
}

#[test]
fn warm_run_is_byte_identical_and_relexes_nothing() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_chaos-lint") else {
        return;
    };
    let root = fixture_root("warm");

    let (_, cold_stdout, cold_stderr, cold_report) = run(bin, &root);
    assert!(
        cold_stderr.contains("cache: 0 hit(s), 3 miss(es)"),
        "cold run must miss every file: {cold_stderr}"
    );
    // The fixture's unwrap is a real R4 finding — the cache must carry
    // findings, not just clean files.
    assert!(cold_stdout.contains("R4"), "{cold_stdout}");

    let (_, warm_stdout, warm_stderr, warm_report) = run(bin, &root);
    assert!(
        warm_stderr.contains("cache: 3 hit(s), 0 miss(es)"),
        "warm run must hit every file: {warm_stderr}"
    );
    assert_eq!(warm_stdout, cold_stdout, "human output must not drift");
    assert_eq!(
        warm_report, cold_report,
        "JSON report must be byte-identical"
    );

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn editing_one_file_misses_exactly_that_file() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_chaos-lint") else {
        return;
    };
    let root = fixture_root("edit");

    let (_, _, _, _) = run(bin, &root);
    // A pure append still changes the content hash, so the file must
    // re-lex; the other two stay cached.
    let util = root.join("crates/demo/src/util.rs");
    let mut body = std::fs::read_to_string(&util).expect("read util");
    body.push_str("\npub fn triple(x: f64) -> f64 {\n    x * 3.0\n}\n");
    std::fs::write(&util, body).expect("rewrite util");

    let (_, _, stderr, _) = run(bin, &root);
    assert!(
        stderr.contains("cache: 2 hit(s), 1 miss(es)"),
        "exactly the edited file must miss: {stderr}"
    );

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn no_cache_flag_forces_a_cold_run() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_chaos-lint") else {
        return;
    };
    let root = fixture_root("nocache");

    let (_, _, _, _) = run(bin, &root);
    let out = Command::new(bin)
        .args(["--root", root.to_str().expect("utf8 root"), "--no-cache"])
        .output()
        .expect("run chaos-lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cache: 0 hit(s), 3 miss(es) (--no-cache)"),
        "--no-cache must bypass the warm cache: {stderr}"
    );

    std::fs::remove_dir_all(&root).ok();
}
