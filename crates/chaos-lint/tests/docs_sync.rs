//! Pins the ARCHITECTURE.md rule table to the registry the binary
//! ships, so `--list-rules`, `--explain`, SARIF rule metadata, and the
//! docs can never disagree about which rules exist.

use chaos_lint::RULES;

fn architecture_md() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../ARCHITECTURE.md");
    std::fs::read_to_string(&path).expect("ARCHITECTURE.md at the workspace root")
}

/// Extracts `(id, name)` pairs from rows shaped
/// `| R6 | `hot-path-allocation` | … |` in the static-analysis table.
fn table_rows(doc: &str) -> Vec<(String, String)> {
    doc.lines()
        .filter_map(|line| {
            let mut cells = line.split('|').map(str::trim);
            cells.next()?; // leading empty cell
            let id = cells.next()?;
            let name = cells.next()?;
            if !id.starts_with('R') || id.len() < 2 || !id[1..].chars().all(|c| c.is_ascii_digit())
            {
                return None;
            }
            Some((id.to_string(), name.trim_matches('`').to_string()))
        })
        .collect()
}

#[test]
fn rule_table_matches_the_registry_exactly() {
    let rows = table_rows(&architecture_md());
    let registry: Vec<(String, String)> = RULES
        .iter()
        .map(|r| (r.id.to_string(), r.name.to_string()))
        .collect();
    assert_eq!(
        rows, registry,
        "ARCHITECTURE.md rule table and chaos_lint::RULES disagree — update whichever is stale"
    );
}

#[test]
fn every_documented_root_marker_exists_in_the_doc() {
    let doc = architecture_md();
    for marker in [
        "chaos-lint: hot",
        "chaos-lint: no-panic",
        "chaos-lint: cold",
    ] {
        assert!(
            doc.contains(marker),
            "ARCHITECTURE.md must document the `{marker}` marker"
        );
    }
}

#[test]
fn explain_cards_are_complete_for_every_rule() {
    for r in RULES {
        assert!(!r.rationale.is_empty(), "{} missing rationale", r.id);
        assert!(!r.bad.is_empty(), "{} missing bad example", r.id);
        assert!(!r.good.is_empty(), "{} missing good example", r.id);
        assert!(
            !r.suppression.is_empty(),
            "{} missing suppression form",
            r.id
        );
    }
}
