//! Fixture tests: every rule must fire on its known-bad fixture and stay
//! quiet on the good ones, and the suppression machinery must both
//! honor reasoned allows and warn on misused ones.
//!
//! The fixture sources live under `tests/fixtures/{bad,good}/` and are
//! lexed in-memory under synthetic workspace paths (so file-role and
//! crate classification behave as they would in the real tree). The
//! workspace scanner skips `fixtures/` directories, so the known-bad
//! files never pollute the real audit.

use chaos_lint::{lint_files, Config, Report, SourceFile};

fn lint_one(rel_path: &str, src: &str) -> Report {
    lint_files(
        &[SourceFile::from_source(rel_path, src)],
        &Config::default(),
    )
}

fn rule_lines(report: &Report, rule: &str) -> Vec<usize> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn r1_fires_on_every_tracked_consumption_pattern() {
    let report = lint_one(
        "crates/demo/src/hash.rs",
        include_str!("fixtures/bad/r1_hash_iteration.rs"),
    );
    let r1 = rule_lines(&report, "R1");
    assert_eq!(
        r1.len(),
        4,
        "for-loop, values().sum(), drain(), struct-field keys(): {:?}",
        report.findings
    );
    assert!(report.findings.iter().all(|f| f.rule == "R1"));
}

#[test]
fn r2_fires_on_clocks_and_entropy() {
    let report = lint_one(
        "crates/demo/src/clock.rs",
        include_str!("fixtures/bad/r2_wall_clock.rs"),
    );
    let r2 = rule_lines(&report, "R2");
    assert_eq!(
        r2.len(),
        3,
        "Instant, SystemTime, thread_rng: {:?}",
        report.findings
    );
}

#[test]
fn r2_stays_quiet_for_the_bench_crate() {
    let report = lint_one(
        "crates/chaos-bench/src/clock.rs",
        include_str!("fixtures/bad/r2_wall_clock.rs"),
    );
    assert!(
        rule_lines(&report, "R2").is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn r3_fires_on_bypass_and_unresolvable_keys() {
    let report = lint_one(
        "crates/demo/src/env.rs",
        include_str!("fixtures/bad/r3_env_bypass.rs"),
    );
    let r3 = rule_lines(&report, "R3");
    assert_eq!(
        r3.len(),
        2,
        "literal CHAOS_THREADS + dynamic key: {:?}",
        report.findings
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("cannot be audited")));
}

#[test]
fn r3_stays_quiet_in_the_sanctioned_entry_point() {
    let report = lint_one(
        "crates/chaos-stats/src/exec.rs",
        include_str!("fixtures/bad/r3_env_bypass.rs"),
    );
    assert!(
        rule_lines(&report, "R3").is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn r4_fires_on_the_full_panic_menu() {
    let report = lint_one(
        "crates/demo/src/panics.rs",
        include_str!("fixtures/bad/r4_panic_paths.rs"),
    );
    let r4 = rule_lines(&report, "R4");
    assert_eq!(
        r4.len(),
        5,
        "unwrap, expect, v[0], panic!, todo!: {:?}",
        report.findings
    );
}

#[test]
fn r4_stays_quiet_when_the_same_code_is_a_test_target() {
    let report = lint_one(
        "crates/demo/tests/panics.rs",
        include_str!("fixtures/bad/r4_panic_paths.rs"),
    );
    assert!(
        rule_lines(&report, "R4").is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn r5_fires_on_a_bare_crate_root() {
    let report = lint_one(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/bad/r5_missing_headers.rs"),
    );
    let r5 = rule_lines(&report, "R5");
    assert_eq!(r5.len(), 1, "{:?}", report.findings);
    let msg = &report.findings[0].message;
    assert!(msg.contains("forbid(unsafe_code)") && msg.contains("deny(missing_docs)"));
}

#[test]
fn clean_fixture_is_quiet_on_every_rule() {
    let report = lint_one(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/good/clean_lib.rs"),
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    assert!(report.suppressed.is_empty());
}

#[test]
fn reasoned_allows_suppress_and_stay_auditable() {
    let report = lint_one(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/good/suppressed_sites.rs"),
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    assert_eq!(report.suppressed.len(), 2, "{:?}", report.suppressed);
    // Every suppression keeps its rule, line, and written reason in the
    // JSON audit trail.
    let json = report.render_json();
    assert!(json.contains("\"reason\": \"timing is a pure side channel here; the reason wraps across two comment lines on purpose.\""));
    assert!(json.contains("\"reason\": \"guarded by the is_empty early return.\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn misused_suppressions_warn_and_do_not_apply() {
    let report = lint_one(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/bad/broken_suppressions.rs"),
    );
    // The reason-less allow must NOT hide the unwrap below it.
    assert_eq!(rule_lines(&report, "R4").len(), 1, "{:?}", report.findings);
    assert!(report.suppressed.is_empty());
    let messages: Vec<&str> = report.warnings.iter().map(|w| w.message.as_str()).collect();
    assert_eq!(messages.len(), 4, "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("no reason")));
    assert!(messages.iter().any(|m| m.contains("matched no finding")));
    assert!(messages.iter().any(|m| m.contains("unknown rule")));
    assert!(messages.iter().any(|m| m.contains("malformed")));
}

#[test]
fn bad_fixtures_lint_together_without_cross_talk() {
    let files = vec![
        SourceFile::from_source(
            "crates/demo/src/hash.rs",
            include_str!("fixtures/bad/r1_hash_iteration.rs"),
        ),
        SourceFile::from_source(
            "crates/demo/src/clock.rs",
            include_str!("fixtures/bad/r2_wall_clock.rs"),
        ),
        SourceFile::from_source(
            "crates/demo/src/env.rs",
            include_str!("fixtures/bad/r3_env_bypass.rs"),
        ),
        SourceFile::from_source(
            "crates/demo/src/panics.rs",
            include_str!("fixtures/bad/r4_panic_paths.rs"),
        ),
        SourceFile::from_source(
            "crates/demo/src/lib.rs",
            include_str!("fixtures/bad/r5_missing_headers.rs"),
        ),
    ];
    let report = lint_files(&files, &Config::default());
    let mut by_rule: Vec<(String, usize)> = Vec::new();
    for f in &report.findings {
        match by_rule.iter_mut().find(|(r, _)| r == &f.rule) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((f.rule.clone(), 1)),
        }
    }
    by_rule.sort();
    assert_eq!(
        by_rule,
        vec![
            ("R1".to_string(), 4),
            ("R2".to_string(), 3),
            ("R3".to_string(), 2),
            ("R4".to_string(), 5),
            ("R5".to_string(), 1),
        ],
        "{:?}",
        report.findings
    );
    // Findings come out sorted by (file, line, rule) — deterministic.
    let mut sorted = report.findings.clone();
    sorted.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    assert_eq!(
        report.findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        sorted.iter().map(|f| f.line).collect::<Vec<_>>()
    );
}

#[test]
fn r6_names_the_full_call_chain_from_the_hot_root() {
    let report = lint_one(
        "crates/demo/src/engine.rs",
        include_str!("fixtures/bad/r6_hot_alloc.rs"),
    );
    let r6: Vec<&chaos_lint::Finding> = report.findings.iter().filter(|f| f.rule == "R6").collect();
    assert!(!r6.is_empty(), "{:?}", report.findings);
    // The Vec::new two hops down must be blamed on the hot root with
    // every intermediate call named, oldest first.
    let msg = r6
        .iter()
        .find(|f| f.message.contains("Vec::new"))
        .map(|f| f.message.as_str())
        .unwrap_or("");
    assert!(
        msg.contains("Engine::push_second → Engine::advance → scratch_sum"),
        "chain missing from message: {msg:?}"
    );
    let stats = report.graph.as_ref().expect("graph stats");
    assert_eq!(stats.hot_roots, 1, "one hot root in the fixture");
}

#[test]
fn recycled_scratch_keeps_the_hot_root_quiet() {
    let report = lint_one(
        "crates/demo/src/engine.rs",
        include_str!("fixtures/good/hot_clean.rs"),
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    let stats = report.graph.as_ref().expect("graph stats");
    assert_eq!(stats.hot_roots, 1);
    assert!(stats.hot_reachable >= 2, "advance must stay reachable");
}

/// The acceptance-criterion canary, end to end: drop a `Vec::new()`
/// into a clean `push_second`-style tick and `--deny` must flip from
/// passing to failing with an R6 finding that names the chain.
#[test]
fn inserting_an_alloc_into_a_hot_tick_fails_deny() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_chaos-lint") else {
        return;
    };
    let root = std::env::temp_dir().join(format!("chaos-lint-canary-{}", std::process::id()));
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("fixture tree");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    let engine = src_dir.join("engine.rs");

    std::fs::write(&engine, include_str!("fixtures/good/hot_clean.rs")).expect("clean engine");
    let clean = std::process::Command::new(bin)
        .args(["--root", root.to_str().expect("utf8 root"), "--deny"])
        .output()
        .expect("run chaos-lint");
    assert!(
        clean.status.success(),
        "clean hot tick must pass --deny: {}",
        String::from_utf8_lossy(&clean.stdout)
    );

    std::fs::write(&engine, include_str!("fixtures/bad/r6_hot_alloc.rs")).expect("dirty engine");
    let dirty = std::process::Command::new(bin)
        .args(["--root", root.to_str().expect("utf8 root"), "--deny"])
        .output()
        .expect("run chaos-lint");
    assert!(!dirty.status.success(), "--deny must fail on the alloc");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(stdout.contains("R6"), "{stdout}");
    assert!(
        stdout.contains("Engine::push_second → Engine::advance → scratch_sum"),
        "full chain must reach the console: {stdout}"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// End-to-end CLI check: `--deny` exits nonzero on a dirty tree, zero on
/// a clean one, and writes the JSON report either way. Skipped outside
/// `cargo test` (the bin path env var is cargo-provided).
#[test]
fn deny_flag_gates_exit_code() {
    let Some(bin) = option_env!("CARGO_BIN_EXE_chaos-lint") else {
        return;
    };
    let root = std::env::temp_dir().join(format!("chaos-lint-fixture-{}", std::process::id()));
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("fixture tree");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    let lib = src_dir.join("lib.rs");

    std::fs::write(&lib, include_str!("fixtures/bad/r4_panic_paths.rs")).expect("bad lib");
    let dirty = std::process::Command::new(bin)
        .args(["--root", root.to_str().expect("utf8 root"), "--deny"])
        .output()
        .expect("run chaos-lint");
    assert!(!dirty.status.success(), "--deny must fail on findings");
    let json_path = root.join("results/lint.json");
    let json = std::fs::read_to_string(&json_path).expect("lint.json written");
    assert!(json.contains("\"schema\": \"chaos-lint/2\""));

    std::fs::write(&lib, include_str!("fixtures/good/clean_lib.rs")).expect("good lib");
    let clean = std::process::Command::new(bin)
        .args(["--root", root.to_str().expect("utf8 root"), "--deny"])
        .output()
        .expect("run chaos-lint");
    assert!(
        clean.status.success(),
        "--deny must pass on a clean tree: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
    std::fs::remove_dir_all(&root).ok();
}
