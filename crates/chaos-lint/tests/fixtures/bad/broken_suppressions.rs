//! Suppression-misuse fixture: each directive below is wrong in a
//! different way and must produce a warning, not a suppression.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A reason-less allow: the finding must stay live and the directive
/// must warn.
pub fn reasonless(v: &[f64]) -> f64 {
    // chaos-lint: allow(R4)
    v.first().copied().unwrap()
}

/// An allow that matches nothing: unused-directive warning.
pub fn unused() -> u64 {
    // chaos-lint: allow(R2) — nothing below reads a clock
    7
}

/// An allow naming a rule outside the registry: unknown-rule warning.
pub fn unknown_rule() -> u64 {
    // chaos-lint: allow(R9) — beyond the registry
    9
}

/// A malformed directive: parse-problem warning.
pub fn malformed() -> u64 {
    // chaos-lint: allow R4 — missing parentheses
    11
}
