//! R1 fixture: every tracked hash-container consumption pattern fires.
use std::collections::{HashMap, HashSet};

pub fn iterate_map_with_for(counts: &HashMap<String, usize>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&format!("{k}={v},"));
    }
    out
}

pub fn sum_values_in_float_reduction() -> f64 {
    let weights: HashMap<u64, f64> = HashMap::new();
    weights.values().sum()
}

pub fn drain_a_set() -> Vec<u64> {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(7);
    seen.drain().collect()
}

pub struct Tally {
    pub by_tier: HashMap<u8, usize>,
}

impl Tally {
    pub fn keys_in_struct_field(&self) -> Vec<u8> {
        self.by_tier.keys().copied().collect()
    }
}
