//! R2 fixture: wall-clock and entropy reads in library code.
use std::time::{Instant, SystemTime};

pub fn timed_fit() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn stamped() -> SystemTime {
    SystemTime::now()
}

pub fn unseeded_noise() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}
