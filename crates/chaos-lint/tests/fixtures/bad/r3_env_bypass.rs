//! R3 fixture: CHAOS_* environment reads outside the sanctioned entry
//! points, including a key the auditor cannot resolve statically.

pub fn reread_thread_policy() -> usize {
    std::env::var("CHAOS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn dynamic_key(name: &str) -> Option<String> {
    let key = format!("CHAOS_{name}");
    std::env::var(key).ok()
}
