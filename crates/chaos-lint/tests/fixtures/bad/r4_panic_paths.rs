//! R4 fixture: the full panic-path menu in library code.

pub fn unwraps(v: &[f64]) -> f64 {
    v.first().copied().unwrap()
}

pub fn expects(v: &[f64]) -> f64 {
    v.last().copied().expect("non-empty")
}

pub fn indexes(v: &[f64]) -> f64 {
    v[0]
}

pub fn panics(x: i32) -> i32 {
    if x < 0 {
        panic!("negative input");
    }
    x
}

pub fn unfinished() -> ! {
    todo!()
}
