//! R5 fixture: a crate root with no hygiene headers at all.

/// Documented, but the crate never forbids unsafe code nor denies
/// missing docs.
pub fn fine_function() -> u64 {
    42
}
