//! Fixture: a `push_second`-style tick with an allocation buried two
//! calls deep. R6 must walk the chain `push_second → advance →
//! scratch_sum` and name every hop in the finding message.

pub struct Engine {
    acc: f64,
}

impl Engine {
    // chaos-lint: hot — per-second tick fixture
    pub fn push_second(&mut self, xs: &[f64]) -> f64 {
        self.advance(xs)
    }

    fn advance(&mut self, xs: &[f64]) -> f64 {
        self.acc += scratch_sum(xs);
        self.acc
    }
}

fn scratch_sum(xs: &[f64]) -> f64 {
    let mut scratch = Vec::new();
    for &x in xs {
        scratch.push(x * x);
    }
    let mut total = 0.0;
    for v in &scratch {
        total += v;
    }
    total
}
