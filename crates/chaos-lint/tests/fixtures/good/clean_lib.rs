//! Good fixture: determinism-safe library code that must stay quiet on
//! every rule.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{BTreeMap, HashMap};

/// Ordered iteration over a BTreeMap is fine.
pub fn ordered_counts(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&format!("{k}={v},"));
    }
    out
}

/// Keyed lookups into a HashMap (no iteration) are fine.
pub fn lookup(cache: &HashMap<u64, f64>, key: u64) -> Option<f64> {
    cache.get(&key).copied()
}

/// Checked access instead of panicking unwraps.
pub fn safe_head(v: &[f64]) -> Option<f64> {
    v.first().copied()
}

/// Computed (loop-bounded) indexing is allowed; only literal indices
/// are flagged.
pub fn computed_index(v: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..v.len() {
        acc += v[i];
    }
    acc
}

/// Non-CHAOS environment reads are out of scope for R3.
pub fn other_tooling_env() -> Option<String> {
    std::env::var("RUST_LOG").ok()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn clocks_and_unwraps_are_fine_in_tests() {
        let t0 = Instant::now();
        let v = [1.0_f64];
        assert!(v.first().copied().unwrap() > 0.0);
        assert!(t0.elapsed().as_secs_f64() >= 0.0);
        assert!(std::env::var("CHAOS_THREADS").is_err() || true);
    }
}
