//! Fixture: the same tick shape as `bad/r6_hot_alloc.rs`, but the
//! scratch buffer lives on the engine and is recycled — the hot path
//! reaches no allocating construct and R6 stays quiet.

pub struct Engine {
    acc: f64,
    scratch: [f64; 16],
}

impl Engine {
    // chaos-lint: hot — per-second tick fixture
    pub fn push_second(&mut self, xs: &[f64]) -> f64 {
        self.advance(xs)
    }

    fn advance(&mut self, xs: &[f64]) -> f64 {
        let n = xs.len().min(self.scratch.len());
        for i in 0..n {
            if let (Some(slot), Some(&x)) = (self.scratch.get_mut(i), xs.get(i)) {
                *slot = x * x;
            }
        }
        let mut total = 0.0;
        for v in self.scratch.iter().take(n) {
            total += v;
        }
        self.acc += total;
        self.acc
    }
}
