//! Suppression fixture: every hazard below carries a reasoned allow, so
//! the file must produce zero live findings — and every suppression must
//! surface in the JSON audit trail with its reason.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::Instant;

/// Span-style timing with a reasoned line-scope allow.
pub fn side_channel_timing() -> f64 {
    // chaos-lint: allow(R2) — timing is a pure side channel here; the
    // reason wraps across two comment lines on purpose.
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

/// A guarded literal index with a reasoned allow on a multi-line
/// statement.
pub fn guarded_index(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    // chaos-lint: allow(R4) — guarded by the is_empty early return.
    let head =
        v[0];
    head
}
