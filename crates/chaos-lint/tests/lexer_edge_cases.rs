//! Lexer edge-case regression suite: raw strings (all prefix/hash
//! forms), nested block comments, C-string literals, signed float
//! exponents, and literal/comment interactions. These pins exist so the
//! cross-file symbol pass can trust the token stream: a mis-tokenized
//! raw string or comment would silently hide (or fabricate) call sites
//! and findings.

use chaos_lint::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn probe_raw_string_multi_hash() {
    // r##"…"## containing a "# sequence.
    let out = lex(r###"let s = r##"a"#b"##; f();"###);
    let strs: Vec<_> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 1, "{:?}", out.tokens);
    assert_eq!(strs[0].text, r##"a"#b"##);
    assert!(idents(r###"let s = r##"a"#b"##; f();"###).contains(&"f".to_string()));
}

#[test]
fn probe_raw_string_unwrap_inside() {
    let src = r####"let s = r#"x.unwrap() // chaos-lint: allow(R4) — nope"#; g();"####;
    let out = lex(src);
    assert!(out.comments.is_empty(), "{:?}", out.comments);
    assert!(!idents(src).contains(&"unwrap".to_string()));
}

#[test]
fn probe_byte_raw_string() {
    let src = r###"let b = br#"raw "bytes""#; h();"###;
    let out = lex(src);
    let strs: Vec<_> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 1, "{:?}", out.tokens);
    assert!(idents(src).contains(&"h".to_string()));
}

#[test]
fn probe_nested_block_comment_deep() {
    let src = "/* 1 /* 2 /* 3 */ 2 */ 1 */ fn live() {}";
    let out = lex(src);
    assert_eq!(out.comments.len(), 1);
    assert!(idents(src).contains(&"live".to_string()));
}

#[test]
fn probe_block_comment_with_slash_star_slash() {
    // `/*/` inside: rustc treats `/* /*/ */ */` as fully nested.
    let src = "/* a /*/ b */ c */ fn live() {}";
    assert!(idents(src).contains(&"live".to_string()));
    let src2 = "/*/ x */ fn live() {}";
    assert!(idents(src2).contains(&"live".to_string()));
}

#[test]
fn probe_line_numbers_across_raw_strings() {
    let src = "let a = r#\"line1\nline2\nline3\"#;\nlet b = 1;";
    let out = lex(src);
    let b = out.tokens.iter().find(|t| t.text == "b").unwrap();
    assert_eq!(b.line, 4, "{:?}", out.tokens);
}

#[test]
fn probe_line_numbers_across_nested_comments() {
    let src = "/* a\n/* b\n*/\n*/\nfn live() {}";
    let out = lex(src);
    let f = out.tokens.iter().find(|t| t.text == "live").unwrap();
    assert_eq!(f.line, 5);
}

#[test]
fn probe_raw_ident_and_hash() {
    let src = "let r#type = 1; let x = r#fn; stringify!(#[attr])";
    let out = lex(src);
    assert!(out.tokens.iter().any(|t| t.text == "type"));
    assert!(out.tokens.iter().any(|t| t.text == "fn"));
}

#[test]
fn probe_char_lifetime_ambiguity_in_generics() {
    let src = "fn f<'a, 'b>(x: &'a [u8], y: &'b str) { let c: char = 'x'; let _ = (x, y, c); }";
    let out = lex(src);
    let lifetimes: Vec<_> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    assert_eq!(lifetimes.len(), 4, "{:?}", out.tokens);
}

#[test]
fn probe_string_with_escaped_backslash_then_quote() {
    let src = r#"let s = "a\\"; let t = "b";"#;
    let out = lex(src);
    let strs: Vec<_> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 2, "{:?}", out.tokens);
}

#[test]
fn probe_doc_comment_with_nested_block_markers() {
    let src = "/** doc /* inner */ end */ fn live() {}";
    let out = lex(src);
    assert_eq!(out.comments.len(), 1);
    assert!(out.tokens.iter().any(|t| t.text == "live"));
}

#[test]
fn probe_comment_directly_after_raw_string() {
    let src = "let s = r\"x\"; // chaos-lint: allow(R1) — why\nnext();";
    let out = lex(src);
    assert_eq!(out.comments.len(), 1);
    assert!(out.comments[0].text.contains("chaos-lint"));
}

#[test]
fn probe_shebangish_and_attrs() {
    let src = "#![forbid(unsafe_code)]\n#[derive(Debug, Clone)]\nstruct S;";
    let out = lex(src);
    assert!(out.tokens.iter().any(|t| t.text == "forbid"));
    assert!(out.tokens.iter().any(|t| t.text == "derive"));
}

#[test]
fn probe_raw_string_zero_hash_with_hash_inside() {
    let src = "let re = r\"^#\\d{4}\"; k();";
    let out = lex(src);
    let strs: Vec<_> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, "^#\\d{4}");
    assert!(out.tokens.iter().any(|t| t.text == "k"));
}

#[test]
fn probe_string_containing_block_comment_opener() {
    let src = "let s = \"/*\"; fn live() {} // tail";
    let out = lex(src);
    assert!(
        out.tokens.iter().any(|t| t.text == "live"),
        "{:?}",
        out.tokens
    );
    assert_eq!(out.comments.len(), 1);
}

#[test]
fn probe_unterminated_block_comment_eof() {
    let src = "fn a() {}\n/* dangling";
    let out = lex(src);
    assert!(out.tokens.iter().any(|t| t.text == "a"));
    assert_eq!(out.comments.len(), 1);
}

#[test]
fn probe_float_exponent_negative() {
    let src = "let x = 1e-9; let y = 2.5E+10; let z = 3e7;";
    let out = lex(src);
    let nums: Vec<String> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(nums, vec!["1e-9", "2.5E+10", "3e7"], "{:?}", out.tokens);
}

#[test]
fn probe_c_string_literals() {
    // Rust 1.77 C-string literals; must not leak a stray ident.
    let src = "let p = c\"bytes\"; let q = cr#\"raw\"#; live();";
    let out = lex(src);
    let strs: Vec<_> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 2, "{:?}", out.tokens);
    assert!(!out
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "c"));
    assert!(!out
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "cr"));
    assert!(out.tokens.iter().any(|t| t.text == "live"));
}

#[test]
fn probe_raw_string_inside_macro_multiline() {
    let src = "writeln!(f, r#\"{{\n  \"k\": \"v\"\n}}\"#).ok();\nnext();";
    let out = lex(src);
    let next = out.tokens.iter().find(|t| t.text == "next").unwrap();
    assert_eq!(next.line, 4, "{:?}", out.tokens);
}

#[test]
fn probe_hash_rocket_attr_inside_fn() {
    let src = "fn f() { #[cfg(test)] let x = 1; let _ = x; }";
    let out = lex(src);
    assert!(out.tokens.iter().any(|t| t.text == "cfg"));
}

#[test]
fn probe_adjacent_idents_rb() {
    let src = "fn rb() {} fn br() {} fn r2b(rx: u8, bx: u8) -> u8 { rx + bx }";
    let ids = idents(src);
    for want in ["rb", "br", "r2b", "rx", "bx"] {
        assert!(ids.contains(&want.to_string()), "{ids:?}");
    }
}
