//! MARS backward pruning pass: remove bases one at a time, keep the subset
//! with the best Generalized Cross-Validation score.

use crate::basis::BasisFunction;
use crate::model::MarsConfig;
use chaos_stats::{Matrix, StatsError};

/// Output of the pruning pass: surviving bases and their OLS coefficients.
pub(crate) struct PrunedModel {
    pub basis: Vec<BasisFunction>,
    pub coefficients: Vec<f64>,
    pub gcv: f64,
}

/// Generalized Cross-Validation score.
///
/// `GCV(M) = (RSS / n) / (1 − C(M)/n)²` with effective parameter count
/// `C(M) = m + penalty · (m − 1) / 2` (Friedman's d, default 3).
pub(crate) fn gcv(rss: f64, n: usize, m: usize, penalty: f64) -> f64 {
    let c = m as f64 + penalty * (m as f64 - 1.0) / 2.0;
    let denom = 1.0 - c / n as f64;
    if denom <= 0.0 {
        return f64::INFINITY;
    }
    (rss / n as f64) / (denom * denom)
}

/// Runs the backward pass over the forward pass's basis set.
///
/// # Errors
///
/// Returns an error only if even the intercept-only model cannot be fitted
/// (empty input), which the caller has already excluded.
pub(crate) fn backward_pass(
    x: &Matrix,
    y: &[f64],
    basis: Vec<BasisFunction>,
    config: &MarsConfig,
) -> Result<PrunedModel, StatsError> {
    let n = x.rows();
    let rows: Vec<&[f64]> = (0..n).map(|i| x.row(i)).collect();

    // Pre-evaluate every basis column once.
    let columns: Vec<Vec<f64>> = basis.iter().map(|b| b.eval_column(&rows)).collect();

    // Active set starts as everything; we always keep index 0 (intercept).
    let mut active: Vec<usize> = (0..basis.len()).collect();

    // Floor RSS at a sliver of the total sum of squares so exact fits of
    // different sizes compare equal and the tie-break prefers fewer terms.
    let scale: f64 = y.iter().map(|v| v * v).sum();
    let rss_floor = 1e-12 * scale.max(f64::MIN_POSITIVE);

    // The forward pass orthogonalizes against a looser tolerance than the
    // QR rank test, so a huge-magnitude basis set can still come out
    // numerically rank-deficient here; drop trailing bases until the full
    // fit succeeds.
    let initial = loop {
        match fit_rss(&columns, &active, y, n) {
            Ok(f) => break f,
            Err(StatsError::Singular) if active.len() > 1 => {
                active.pop();
            }
            Err(e) => return Err(e),
        }
    };
    let (mut best_active, mut best_rss) = (active.clone(), initial);
    let mut best_gcv = gcv(best_rss.1.max(rss_floor), n, active.len(), config.penalty);
    let mut best_coefs = best_rss.0.clone();

    while active.len() > 1 {
        chaos_obs::add("mars.prune_rounds", 1);
        // Try removing each non-intercept basis; keep the removal with the
        // smallest RSS.
        let mut round_best: Option<(usize, Vec<f64>, f64)> = None;
        for pos in 1..active.len() {
            let mut trial: Vec<usize> = active.clone();
            trial.remove(pos);
            if let Ok((coefs, rss)) = fit_rss(&columns, &trial, y, n) {
                if round_best.as_ref().is_none_or(|(_, _, r)| rss < *r) {
                    round_best = Some((pos, coefs, rss));
                }
            }
        }
        let Some((pos, coefs, rss)) = round_best else {
            break;
        };
        active.remove(pos);
        let g = gcv(rss.max(rss_floor), n, active.len(), config.penalty);
        // `<=` prefers the smaller model on ties (e.g. exact fits where
        // both subsets reach RSS ≈ 0).
        if g <= best_gcv {
            best_gcv = g;
            best_active = active.clone();
            best_coefs = coefs;
            best_rss = (best_coefs.clone(), rss);
        }
    }
    let _ = best_rss;

    let pruned_basis: Vec<BasisFunction> = best_active.iter().map(|&i| basis[i].clone()).collect();
    Ok(PrunedModel {
        basis: pruned_basis,
        coefficients: best_coefs,
        gcv: best_gcv,
    })
}

/// Least-squares fit of `y` on the selected basis columns; returns the
/// coefficients and the residual sum of squares.
fn fit_rss(
    columns: &[Vec<f64>],
    active: &[usize],
    y: &[f64],
    n: usize,
) -> Result<(Vec<f64>, f64), StatsError> {
    let cols: Vec<Vec<f64>> = active.iter().map(|&i| columns[i].clone()).collect();
    let design = Matrix::from_cols(&cols)?;
    let coefs = match design.solve_least_squares(y) {
        Ok(c) => c,
        Err(StatsError::Singular) => {
            // Collinear basis subset: score it as unusable.
            return Err(StatsError::Singular);
        }
        Err(e) => return Err(e),
    };
    let fitted = design.matvec(&coefs)?;
    let rss = y
        .iter()
        .zip(&fitted)
        .map(|(a, f)| (a - f).powi(2))
        .sum::<f64>()
        .max(0.0);
    let _ = n;
    Ok((coefs, rss))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{Direction, HingeTerm};
    use crate::model::MarsConfig;

    #[test]
    fn gcv_penalizes_model_size() {
        // Same RSS, more terms → worse (larger) GCV.
        let small = gcv(10.0, 100, 3, 3.0);
        let large = gcv(10.0, 100, 10, 3.0);
        assert!(large > small);
    }

    #[test]
    fn gcv_infinite_when_saturated() {
        assert_eq!(gcv(1.0, 10, 10, 3.0), f64::INFINITY);
    }

    #[test]
    fn backward_prunes_useless_basis() {
        // y depends on hinge at 2.0 only; add a junk hinge the forward pass
        // might have kept.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..100)
            .map(|i| {
                let v = i as f64 / 10.0;
                1.0 + 3.0 * (v - 2.0f64).max(0.0)
            })
            .collect();
        let useful = BasisFunction::from_hinge(HingeTerm {
            variable: 0,
            knot: 2.0,
            direction: Direction::Positive,
        });
        let junk = BasisFunction::from_hinge(HingeTerm {
            variable: 0,
            knot: 7.3,
            direction: Direction::Negative,
        });
        let basis = vec![BasisFunction::intercept(), useful.clone(), junk];
        let pruned = backward_pass(&x, &y, basis, &MarsConfig::piecewise_linear()).unwrap();
        assert!(pruned.basis.contains(&useful));
        assert_eq!(pruned.basis.len(), 2, "junk hinge should be pruned");
        assert!(pruned.gcv.is_finite());
    }

    #[test]
    fn backward_keeps_intercept_only_for_constant_y() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y = vec![2.5; 50];
        let h = BasisFunction::from_hinge(HingeTerm {
            variable: 0,
            knot: 10.0,
            direction: Direction::Positive,
        });
        let basis = vec![BasisFunction::intercept(), h];
        let pruned = backward_pass(&x, &y, basis, &MarsConfig::piecewise_linear()).unwrap();
        assert_eq!(pruned.basis.len(), 1);
        assert!((pruned.coefficients[0] - 2.5).abs() < 1e-9);
    }
}
