//! Hinge terms and product basis functions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Orientation of a hinge function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `B⁺(x, t) = max(x − t, 0)` — active above the knot.
    Positive,
    /// `B⁻(x, t) = max(t − x, 0)` — active below the knot.
    Negative,
}

impl Direction {
    /// The opposite orientation.
    pub fn mirrored(self) -> Direction {
        match self {
            Direction::Positive => Direction::Negative,
            Direction::Negative => Direction::Positive,
        }
    }
}

/// A single hinge factor `max(±(x_v − t), 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HingeTerm {
    /// Index of the feature this hinge reads.
    pub variable: usize,
    /// Knot location `t`.
    pub knot: f64,
    /// Hinge orientation.
    pub direction: Direction,
}

impl HingeTerm {
    /// Evaluates the hinge at a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `self.variable >= row.len()`.
    #[inline]
    pub fn eval(&self, row: &[f64]) -> f64 {
        let x = row[self.variable];
        match self.direction {
            Direction::Positive => (x - self.knot).max(0.0),
            Direction::Negative => (self.knot - x).max(0.0),
        }
    }
}

impl fmt::Display for HingeTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction {
            Direction::Positive => write!(f, "max(x{} - {:.4}, 0)", self.variable, self.knot),
            Direction::Negative => write!(f, "max({:.4} - x{}, 0)", self.knot, self.variable),
        }
    }
}

/// A product of hinge terms; the empty product is the intercept basis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasisFunction {
    factors: Vec<HingeTerm>,
}

impl BasisFunction {
    /// The intercept basis (constant 1).
    pub fn intercept() -> Self {
        BasisFunction {
            factors: Vec::new(),
        }
    }

    /// A degree-1 basis from a single hinge.
    pub fn from_hinge(term: HingeTerm) -> Self {
        BasisFunction {
            factors: vec![term],
        }
    }

    /// Returns a new basis that is `self × term`.
    pub fn with_factor(&self, term: HingeTerm) -> Self {
        let mut factors = self.factors.clone();
        factors.push(term);
        BasisFunction { factors }
    }

    /// Interaction degree (number of hinge factors; 0 for the intercept).
    pub fn degree(&self) -> usize {
        self.factors.len()
    }

    /// The hinge factors.
    pub fn factors(&self) -> &[HingeTerm] {
        &self.factors
    }

    /// Whether the basis already uses feature `variable` (MARS never
    /// multiplies two hinges on the same variable).
    pub fn uses_variable(&self, variable: usize) -> bool {
        self.factors.iter().any(|t| t.variable == variable)
    }

    /// Evaluates the basis at a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if any factor references a feature index beyond `row.len()`.
    #[inline]
    pub fn eval(&self, row: &[f64]) -> f64 {
        let mut v = 1.0;
        for t in &self.factors {
            v *= t.eval(row);
            if v == 0.0 {
                return 0.0;
            }
        }
        v
    }

    /// Evaluates the basis over every row of a feature table, producing a
    /// design-matrix column.
    pub fn eval_column(&self, rows: &[&[f64]]) -> Vec<f64> {
        rows.iter().map(|r| self.eval(r)).collect()
    }
}

impl fmt::Display for BasisFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return write!(f, "1");
        }
        for (i, t) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, " * ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinge_positive_and_negative() {
        let pos = HingeTerm {
            variable: 0,
            knot: 2.0,
            direction: Direction::Positive,
        };
        assert_eq!(pos.eval(&[3.5]), 1.5);
        assert_eq!(pos.eval(&[2.0]), 0.0);
        assert_eq!(pos.eval(&[1.0]), 0.0);

        let neg = HingeTerm {
            direction: Direction::Negative,
            ..pos
        };
        assert_eq!(neg.eval(&[1.0]), 1.0);
        assert_eq!(neg.eval(&[2.0]), 0.0);
        assert_eq!(neg.eval(&[3.5]), 0.0);
    }

    #[test]
    fn mirrored_pair_sums_to_absolute_deviation() {
        let pos = HingeTerm {
            variable: 0,
            knot: 1.5,
            direction: Direction::Positive,
        };
        let neg = HingeTerm {
            direction: pos.direction.mirrored(),
            ..pos
        };
        for x in [-2.0, 0.0, 1.5, 3.0, 10.0] {
            assert_eq!(pos.eval(&[x]) + neg.eval(&[x]), (x - 1.5).abs());
        }
    }

    #[test]
    fn intercept_is_one_everywhere() {
        let b = BasisFunction::intercept();
        assert_eq!(b.degree(), 0);
        assert_eq!(b.eval(&[99.0, -3.0]), 1.0);
    }

    #[test]
    fn product_basis_multiplies_factors() {
        let b = BasisFunction::from_hinge(HingeTerm {
            variable: 0,
            knot: 1.0,
            direction: Direction::Positive,
        })
        .with_factor(HingeTerm {
            variable: 1,
            knot: 2.0,
            direction: Direction::Negative,
        });
        assert_eq!(b.degree(), 2);
        // (3-1) * (2-0.5) = 3.0
        assert_eq!(b.eval(&[3.0, 0.5]), 3.0);
        // Second factor inactive → 0.
        assert_eq!(b.eval(&[3.0, 5.0]), 0.0);
    }

    #[test]
    fn uses_variable_checks_factors() {
        let b = BasisFunction::from_hinge(HingeTerm {
            variable: 3,
            knot: 0.0,
            direction: Direction::Positive,
        });
        assert!(b.uses_variable(3));
        assert!(!b.uses_variable(0));
    }

    #[test]
    fn eval_column_matches_pointwise() {
        let b = BasisFunction::from_hinge(HingeTerm {
            variable: 0,
            knot: 2.0,
            direction: Direction::Positive,
        });
        let r1 = [1.0];
        let r2 = [4.0];
        let rows: Vec<&[f64]> = vec![&r1, &r2];
        assert_eq!(b.eval_column(&rows), vec![0.0, 2.0]);
    }

    #[test]
    fn display_forms() {
        let b = BasisFunction::intercept();
        assert_eq!(b.to_string(), "1");
        let h = BasisFunction::from_hinge(HingeTerm {
            variable: 2,
            knot: 0.5,
            direction: Direction::Negative,
        });
        assert!(h.to_string().contains("x2"));
    }
}
