//! MARS forward pass: greedy addition of reflected hinge pairs.
//!
//! The forward pass maintains an orthonormalized copy of the current basis
//! matrix (modified Gram–Schmidt). For each candidate (parent basis,
//! variable, knot) it orthogonalizes the two reflected hinge columns
//! against the current basis and scores the residual-sum-of-squares
//! reduction directly from the projections, so a candidate costs `O(n·m)`
//! instead of a refit.
//!
//! Two optimizations keep rounds cheap without changing a single bit of
//! the result:
//!
//! * a [`HingeCache`] memoizes the raw hinge vectors `(x − knot)₊` /
//!   `(knot − x)₊` per (variable, knot, direction), so candidate columns
//!   are a cached-vector product instead of being rebuilt from the design
//!   matrix every round;
//! * candidates are enumerated serially into a fixed-order list and then
//!   scored under `config.exec` — scoring is pure, results come back in
//!   enumeration order, and the winner is picked by the same strict
//!   first-maximum rule the serial loop uses.

use crate::basis::{BasisFunction, Direction, HingeTerm};
use crate::model::MarsConfig;
use chaos_stats::Matrix;
use std::collections::HashMap;

/// Minimum number of active (parent > 0) samples required before a parent
/// basis may spawn children. Prevents knots supported by a handful of
/// points.
const MIN_ACTIVE: usize = 8;

/// Relative tolerance below which an orthogonalized candidate column is
/// treated as linearly dependent on the current basis.
const DEP_TOL: f64 = 1e-9;

/// Upper bound on memoized hinge vectors; beyond this the cache stops
/// inserting and scoring falls back to the (bit-identical) inline
/// computation, bounding memory at `MAX_HINGE_CACHE · n` doubles.
const MAX_HINGE_CACHE: usize = 2048;

/// Memoized raw hinge vectors keyed by (variable, knot bits, direction).
///
/// The raw hinge `h(x) = (x − knot)₊` (or its reflection) is independent
/// of the parent basis, so it can be shared by every candidate touching
/// the same (variable, knot) pair — across parents and across rounds.
struct HingeCache {
    cols: HashMap<(usize, u64, Direction), Vec<f64>>,
}

impl HingeCache {
    fn new() -> Self {
        HingeCache {
            cols: HashMap::new(),
        }
    }

    /// Materializes the hinge vector for a (variable, knot, direction)
    /// triple unless the cache is full. `xcol` is the variable's
    /// column-major slice, so the scan is one sequential pass.
    fn ensure(&mut self, xcol: &[f64], variable: usize, knot: f64, direction: Direction) {
        if self.cols.len() >= MAX_HINGE_CACHE {
            return;
        }
        self.cols
            .entry((variable, knot.to_bits(), direction))
            .or_insert_with(|| {
                xcol.iter()
                    .map(|&x| match direction {
                        Direction::Positive => (x - knot).max(0.0),
                        Direction::Negative => (knot - x).max(0.0),
                    })
                    .collect()
            });
    }

    fn get(&self, variable: usize, knot: f64, direction: Direction) -> Option<&[f64]> {
        self.cols
            .get(&(variable, knot.to_bits(), direction))
            .map(Vec::as_slice)
    }
}

pub(crate) struct ForwardResult {
    pub basis: Vec<BasisFunction>,
}

/// Runs the forward pass and returns the (unpruned) basis set, always
/// starting with the intercept.
pub(crate) fn forward_pass(x: &Matrix, y: &[f64], config: &MarsConfig) -> ForwardResult {
    let n = x.rows();
    let rows: Vec<&[f64]> = (0..n).map(|i| x.row(i)).collect();
    // Column-major copy of the design matrix. Knot enumeration, hinge
    // materialization, and candidate scoring all read *one variable
    // across every sample*; in the row-major matrix that access strides
    // by the row width per element, so each is transposed here once and
    // scanned sequentially ever after. Values are copied verbatim —
    // every kernel below computes bit-identical results.
    let xcols: Vec<Vec<f64>> = (0..x.cols())
        .map(|v| rows.iter().map(|r| r[v]).collect())
        .collect();

    let mut basis = vec![BasisFunction::intercept()];
    // Orthonormal columns spanning the basis so far.
    let inv_sqrt_n = 1.0 / (n as f64).sqrt();
    let mut q_cols: Vec<Vec<f64>> = vec![vec![inv_sqrt_n; n]];
    // Residual of y against the current basis span.
    let mean_y: f64 = y.iter().sum::<f64>() / n as f64;
    let mut resid: Vec<f64> = y.iter().map(|v| v - mean_y).collect();
    let mut rss: f64 = resid.iter().map(|r| r * r).sum();
    let base_rss = rss.max(f64::MIN_POSITIVE);

    // Cached basis-column evaluations for knot candidate generation.
    let mut basis_vals: Vec<Vec<f64>> = vec![vec![1.0; n]];
    // Raw hinge vectors are parent-independent, so the cache lives across
    // rounds.
    let mut hinges = HingeCache::new();

    while basis.len() + 2 <= config.max_terms {
        // Enumerate candidates in a fixed serial order...
        let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
        for (pi, parent) in basis.iter().enumerate() {
            if parent.degree() >= config.max_degree {
                continue;
            }
            let pvals = &basis_vals[pi];
            let active: Vec<usize> = (0..n).filter(|&i| pvals[i] > 0.0).collect();
            if active.len() < MIN_ACTIVE {
                continue;
            }
            for v in 0..x.cols() {
                if parent.uses_variable(v) {
                    continue;
                }
                for &knot in &knot_candidates(&xcols[v], &active, config.max_knots_per_var) {
                    candidates.push((pi, v, knot));
                }
            }
        }
        for &(_, v, knot) in &candidates {
            hinges.ensure(&xcols[v], v, knot, Direction::Positive);
            hinges.ensure(&xcols[v], v, knot, Direction::Negative);
        }

        chaos_obs::add("mars.forward_rounds", 1);
        chaos_obs::add("mars.candidates_scored", candidates.len() as u64);
        // ...score them (possibly in parallel; scoring is pure and results
        // return in enumeration order)...
        let scored = config.exec.par_map(&candidates, |&(pi, v, knot)| {
            score_candidate(
                pi,
                v,
                knot,
                &basis_vals[pi],
                &xcols[v],
                &q_cols,
                &resid,
                &hinges,
            )
        });

        // ...and keep the first strict maximum, exactly as the serial loop
        // would.
        let mut best: Option<Candidate> = None;
        for c in scored.into_iter().flatten() {
            if best.as_ref().is_none_or(|b| c.gain > b.gain) {
                best = Some(c);
            }
        }

        let Some(best) = best else { break };
        if best.gain < config.min_rss_fraction * base_rss {
            break;
        }

        // Materialize the winning pair: orthogonalize each column for real
        // and update the residual.
        let parent = basis[best.parent].clone();
        for dir in [Direction::Positive, Direction::Negative] {
            let term = HingeTerm {
                variable: best.variable,
                knot: best.knot,
                direction: dir,
            };
            let child = parent.with_factor(term);
            let col = child.eval_column(&rows);
            if let Some(q) = orthogonalize(&col, &q_cols) {
                let proj: f64 = q.iter().zip(&resid).map(|(a, b)| a * b).sum();
                for i in 0..n {
                    resid[i] -= proj * q[i];
                }
                rss -= proj * proj;
                q_cols.push(q);
                basis_vals.push(col);
                basis.push(child);
            }
        }
        let _ = rss; // rss is tracked for debugging; GCV is computed in pruning.
    }

    ForwardResult { basis }
}

struct Candidate {
    parent: usize,
    variable: usize,
    knot: f64,
    gain: f64,
}

/// Scores a (parent, variable, knot) candidate by the RSS reduction of
/// adding both reflected hinge children. `xcol` is the candidate
/// variable's column-major slice.
#[allow(clippy::too_many_arguments)]
fn score_candidate(
    parent_idx: usize,
    variable: usize,
    knot: f64,
    parent_vals: &[f64],
    xcol: &[f64],
    q_cols: &[Vec<f64>],
    resid: &[f64],
    hinges: &HingeCache,
) -> Option<Candidate> {
    let n = parent_vals.len();
    let mut gain = 0.0;
    // Evaluate both children; orthogonalize the second against the first.
    let mut first_q: Option<Vec<f64>> = None;
    for dir in [Direction::Positive, Direction::Negative] {
        let mut col = vec![0.0; n];
        // The cached vector holds exactly the h the inline branch computes,
        // so both paths produce bit-identical columns.
        if let Some(h) = hinges.get(variable, knot, dir) {
            for i in 0..n {
                if parent_vals[i] > 0.0 {
                    col[i] = parent_vals[i] * h[i];
                }
            }
        } else {
            for i in 0..n {
                if parent_vals[i] > 0.0 {
                    let x = xcol[i];
                    let h = match dir {
                        Direction::Positive => (x - knot).max(0.0),
                        Direction::Negative => (knot - x).max(0.0),
                    };
                    col[i] = parent_vals[i] * h;
                }
            }
        }
        let mut q = match orthogonalize(&col, q_cols) {
            Some(q) => q,
            None => continue,
        };
        if let Some(fq) = &first_q {
            let d: f64 = q.iter().zip(fq).map(|(a, b)| a * b).sum();
            for i in 0..n {
                q[i] -= d * fq[i];
            }
            let nrm: f64 = q.iter().map(|v| v * v).sum::<f64>().sqrt();
            if nrm < DEP_TOL {
                continue;
            }
            for v in &mut q {
                *v /= nrm;
            }
        }
        let proj: f64 = q.iter().zip(resid).map(|(a, b)| a * b).sum();
        gain += proj * proj;
        if first_q.is_none() {
            first_q = Some(q);
        }
    }
    if gain > 0.0 {
        Some(Candidate {
            parent: parent_idx,
            variable,
            knot,
            gain,
        })
    } else {
        None
    }
}

/// Orthogonalizes `col` against the orthonormal set `q_cols` and normalizes.
/// Returns `None` if the column is (numerically) in the span already.
fn orthogonalize(col: &[f64], q_cols: &[Vec<f64>]) -> Option<Vec<f64>> {
    let norm0: f64 = col.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm0 == 0.0 {
        return None;
    }
    let mut u = col.to_vec();
    for q in q_cols {
        let d: f64 = u.iter().zip(q).map(|(a, b)| a * b).sum();
        for (ui, qi) in u.iter_mut().zip(q) {
            *ui -= d * qi;
        }
    }
    let nrm: f64 = u.iter().map(|v| v * v).sum::<f64>().sqrt();
    if nrm < DEP_TOL * norm0 {
        return None;
    }
    for v in &mut u {
        *v /= nrm;
    }
    Some(u)
}

/// Candidate knots for a variable over the active samples: up to
/// `max_knots` evenly spaced interior quantiles of the distinct values.
/// `xcol` is the variable's column-major slice, indexed by sample.
fn knot_candidates(xcol: &[f64], active: &[usize], max_knots: usize) -> Vec<f64> {
    let mut vals: Vec<f64> = active.iter().map(|&i| xcol[i]).collect();
    // chaos-lint: allow(R4) — fit() rejects non-finite design values
    // before the forward pass, so feature values never compare NaN.
    vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature value"));
    vals.dedup();
    if vals.len() < 3 {
        return Vec::new();
    }
    // Interior values only: a knot at the extremes makes one child zero.
    let interior = &vals[1..vals.len() - 1];
    if interior.len() <= max_knots {
        return interior.to_vec();
    }
    (0..max_knots)
        .map(|k| {
            let idx = (k * (interior.len() - 1)) / (max_knots - 1).max(1);
            interior[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MarsConfig;

    fn hinge_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 / 12.0]).collect();
        let y: Vec<f64> = (0..120)
            .map(|i| {
                let v = i as f64 / 12.0;
                1.0 + if v > 4.0 { 2.0 * (v - 4.0) } else { 0.0 }
            })
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn forward_adds_hinges_near_true_knot() {
        let (x, y) = hinge_data();
        let result = forward_pass(&x, &y, &MarsConfig::piecewise_linear());
        assert!(result.basis.len() >= 3, "got {} bases", result.basis.len());
        // Some hinge should sit near the true knot at 4.0.
        let near = result
            .basis
            .iter()
            .flat_map(|b| b.factors())
            .any(|t| (t.knot - 4.0).abs() < 1.0);
        assert!(near);
    }

    #[test]
    fn forward_respects_max_terms() {
        let (x, y) = hinge_data();
        let cfg = MarsConfig {
            max_terms: 3,
            ..MarsConfig::piecewise_linear()
        };
        let result = forward_pass(&x, &y, &cfg);
        assert!(result.basis.len() <= 3);
    }

    #[test]
    fn forward_on_constant_response_stays_minimal() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y = vec![5.0; 50];
        let result = forward_pass(&x, &y, &MarsConfig::piecewise_linear());
        assert_eq!(result.basis.len(), 1, "only intercept expected");
    }

    #[test]
    fn knot_candidates_skip_extremes() {
        let xcol = [1.0, 2.0, 3.0, 4.0];
        let ks = knot_candidates(&xcol, &[0, 1, 2, 3], 10);
        assert_eq!(ks, vec![2.0, 3.0]);
    }

    #[test]
    fn knot_candidates_subsample_to_max() {
        let xcol: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let active: Vec<usize> = (0..100).collect();
        let ks = knot_candidates(&xcol, &active, 7);
        assert_eq!(ks.len(), 7);
        for w in ks.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn orthogonalize_rejects_dependent_column() {
        let q = vec![vec![0.5; 4]];
        assert!(orthogonalize(&[1.0, 1.0, 1.0, 1.0], &q).is_none());
        assert!(orthogonalize(&[0.0; 4], &q).is_none());
        let q2 = orthogonalize(&[1.0, 0.0, 0.0, 0.0], &q).unwrap();
        let nrm: f64 = q2.iter().map(|v| v * v).sum();
        assert!((nrm - 1.0).abs() < 1e-12);
    }
}
