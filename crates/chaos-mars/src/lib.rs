//! Multivariate Adaptive Regression Splines (MARS) for the CHAOS
//! piecewise-linear and quadratic power models.
//!
//! The CHAOS paper's two strongest model families (Eq. 2 and Eq. 3) are
//! fitted "using an implementation of the Multivariate Adaptive Regression
//! Splines (MARS) algorithm" (Friedman, 1991):
//!
//! * **Piecewise linear** (Eq. 2): sums of hinge functions
//!   `B⁺(x, t) = max(x − t, 0)` and `B⁻(x, t) = max(t − x, 0)`, letting a
//!   feature such as CPU utilization contribute differently in different
//!   operating regions while remaining continuous.
//! * **Quadratic** (Eq. 3): the same construction with products of *two*
//!   hinge bases, capturing interactions (degree = 2).
//!
//! This crate implements the classic two-phase algorithm:
//!
//! 1. A **forward pass** greedily adds reflected hinge pairs (parent basis
//!    × variable × knot) chosen to maximize the drop in residual sum of
//!    squares, using Gram–Schmidt projections so each candidate costs
//!    `O(n·m)` rather than a full refit.
//! 2. A **backward pruning pass** removes bases one at a time and keeps
//!    the subset with the best Generalized Cross-Validation (GCV) score.
//!
//! The forward pass memoizes raw hinge vectors and can score candidates
//! in parallel under [`MarsConfig::exec`](model::MarsConfig) — both are
//! bit-identical to the plain serial computation, so the fitted model
//! never depends on the execution policy.
//!
//! # Example
//!
//! ```
//! use chaos_mars::{MarsConfig, MarsModel};
//! use chaos_stats::Matrix;
//!
//! # fn main() -> Result<(), chaos_stats::StatsError> {
//! // A hinge-shaped function: flat to 5, then rising.
//! let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
//! let x = Matrix::from_rows(&rows)?;
//! let y: Vec<f64> = (0..100)
//!     .map(|i| {
//!         let v = i as f64 / 10.0;
//!         2.0 + if v > 5.0 { 3.0 * (v - 5.0) } else { 0.0 }
//!     })
//!     .collect();
//! let model = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear())?;
//! let pred = model.predict_row(&[7.0])?;
//! assert!((pred - 8.0).abs() < 0.3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod backward;
pub mod basis;
mod forward;
pub mod model;

pub use basis::{BasisFunction, Direction, HingeTerm};
pub use model::{MarsConfig, MarsModel};
