//! The public MARS model type and its configuration.

use crate::backward::backward_pass;
use crate::basis::BasisFunction;
use crate::forward::forward_pass;
use chaos_stats::exec::ExecPolicy;
use chaos_stats::{Matrix, StatsError};
use serde::{Deserialize, Serialize};

/// Configuration of a MARS fit.
///
/// Use [`MarsConfig::piecewise_linear`] for the paper's Eq. 2 family
/// (additive hinges) and [`MarsConfig::quadratic`] for Eq. 3 (degree-2
/// interactions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarsConfig {
    /// Maximum number of basis functions (including the intercept) the
    /// forward pass may create.
    pub max_terms: usize,
    /// Maximum interaction degree: 1 = piecewise linear, 2 = quadratic.
    pub max_degree: usize,
    /// Maximum candidate knots per (parent, variable) pair, taken as
    /// quantiles of the active samples.
    pub max_knots_per_var: usize,
    /// GCV penalty per extra basis (Friedman's `d`; 2–4 typical).
    pub penalty: f64,
    /// Forward pass stops when the best candidate pair reduces RSS by less
    /// than this fraction of the initial (intercept-only) RSS.
    pub min_rss_fraction: f64,
    /// Execution policy for scoring forward-pass candidates. Serial and
    /// parallel scoring pick the same candidate every round (candidates
    /// are enumerated in a fixed order and compared with a strict
    /// first-maximum rule), so fitted models are bit-identical across
    /// policies.
    #[serde(default)]
    pub exec: ExecPolicy,
}

impl MarsConfig {
    /// Configuration for the paper's piecewise-linear model (Eq. 2).
    pub fn piecewise_linear() -> Self {
        MarsConfig {
            max_terms: 21,
            max_degree: 1,
            max_knots_per_var: 16,
            penalty: 2.0,
            min_rss_fraction: 1e-4,
            exec: ExecPolicy::Serial,
        }
    }

    /// Configuration for the paper's quadratic model (Eq. 3): the same
    /// algorithm with degree-2 basis interactions.
    pub fn quadratic() -> Self {
        MarsConfig {
            max_terms: 25,
            max_degree: 2,
            max_knots_per_var: 16,
            penalty: 3.0,
            min_rss_fraction: 1e-4,
            exec: ExecPolicy::Serial,
        }
    }

    fn validate(&self, n_rows: usize) -> Result<(), StatsError> {
        if self.max_degree == 0 {
            return Err(StatsError::InvalidParameter {
                context: "mars: max_degree must be at least 1".into(),
            });
        }
        if self.max_terms < 1 {
            return Err(StatsError::InvalidParameter {
                context: "mars: max_terms must be at least 1".into(),
            });
        }
        if self.max_knots_per_var < 2 {
            return Err(StatsError::InvalidParameter {
                context: "mars: max_knots_per_var must be at least 2".into(),
            });
        }
        if self.penalty.is_nan() || self.penalty < 0.0 {
            return Err(StatsError::InvalidParameter {
                context: format!("mars: penalty must be non-negative, got {}", self.penalty),
            });
        }
        if n_rows < 10 {
            return Err(StatsError::InsufficientData {
                observations: n_rows,
                required: 10,
            });
        }
        Ok(())
    }
}

impl Default for MarsConfig {
    fn default() -> Self {
        MarsConfig::quadratic()
    }
}

/// A fitted MARS model: `ŷ = Σᵢ aᵢ · Bᵢ(x)` over hinge-product bases.
///
/// # Example
///
/// ```
/// use chaos_mars::{MarsConfig, MarsModel};
/// use chaos_stats::Matrix;
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// // y = |x − 3| is exactly two mirrored hinges.
/// let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
/// let x = Matrix::from_rows(&rows)?;
/// let y: Vec<f64> = (0..60).map(|i| (i as f64 / 10.0 - 3.0).abs()).collect();
/// let model = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear())?;
/// assert!((model.predict_row(&[3.0])? - 0.0).abs() < 0.2);
/// assert!((model.predict_row(&[5.0])? - 2.0).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarsModel {
    basis: Vec<BasisFunction>,
    coefficients: Vec<f64>,
    gcv: f64,
    n_features: usize,
}

impl MarsModel {
    /// Fits a MARS model: forward hinge selection followed by GCV-driven
    /// backward pruning.
    ///
    /// `x` holds raw features (no intercept column — the intercept basis is
    /// implicit).
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    /// * [`StatsError::InsufficientData`] if fewer than 10 samples.
    /// * [`StatsError::InvalidParameter`] for a malformed configuration.
    pub fn fit(x: &Matrix, y: &[f64], config: &MarsConfig) -> Result<Self, StatsError> {
        if y.len() != x.rows() {
            return Err(StatsError::DimensionMismatch {
                context: format!("mars: y has {} entries, X has {} rows", y.len(), x.rows()),
            });
        }
        config.validate(x.rows())?;
        chaos_obs::add("mars.fits", 1);
        let forward = {
            let _span = chaos_obs::span("mars.forward");
            forward_pass(x, y, config)
        };
        let pruned = {
            let _span = chaos_obs::span("mars.backward");
            backward_pass(x, y, forward.basis, config)?
        };
        Ok(MarsModel {
            basis: pruned.basis,
            coefficients: pruned.coefficients,
            gcv: pruned.gcv,
            n_features: x.cols(),
        })
    }

    /// The surviving basis functions (index 0 is always the intercept).
    pub fn basis(&self) -> &[BasisFunction] {
        &self.basis
    }

    /// Coefficients aligned with [`MarsModel::basis`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The model's GCV score at the end of pruning.
    pub fn gcv(&self) -> f64 {
        self.gcv
    }

    /// Number of basis terms (including the intercept).
    pub fn n_terms(&self) -> usize {
        self.basis.len()
    }

    /// Number of input features the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predicts the response for one feature row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `row.len()` differs
    /// from the training feature count.
    // chaos-lint: hot — per-sample MARS evaluation; the streaming Technique-adapted predict path
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, StatsError> {
        if row.len() != self.n_features {
            return Err(StatsError::DimensionMismatch {
                // chaos-lint: allow(R6) — constructs the width-mismatch error; the predict path is branch-free
                context: format!(
                    "mars predict: row has {} features, model expects {}",
                    row.len(),
                    self.n_features
                ),
            });
        }
        Ok(self
            .basis
            .iter()
            .zip(&self.coefficients)
            .map(|(b, c)| c * b.eval(row))
            .sum())
    }

    /// Predicts the response for every row of a feature matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MarsModel::predict_row`].
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>, StatsError> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_noise(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
    }

    #[test]
    fn fits_absolute_value() {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 10.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..80)
            .map(|i| (i as f64 / 10.0 - 4.0).abs() + 1.0)
            .collect();
        let m = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap();
        for (probe, want) in [(0.0, 5.0), (4.0, 1.0), (7.9, 4.9)] {
            let got = m.predict_row(&[probe]).unwrap();
            assert!((got - want).abs() < 0.25, "f({probe}) = {got}, want {want}");
        }
    }

    #[test]
    fn quadratic_captures_interaction() {
        // y = x0 * x1 on a grid — needs degree 2.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let a = i as f64 / 2.0;
                let b = j as f64 / 2.0;
                rows.push(vec![a, b]);
                y.push(a * b);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let lin = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap();
        let quad = MarsModel::fit(&x, &y, &MarsConfig::quadratic()).unwrap();
        let rss = |m: &MarsModel| {
            m.predict(&x)
                .unwrap()
                .iter()
                .zip(&y)
                .map(|(p, a)| (p - a).powi(2))
                .sum::<f64>()
        };
        assert!(
            rss(&quad) < 0.5 * rss(&lin),
            "quadratic {} vs linear {}",
            rss(&quad),
            rss(&lin)
        );
        // At least one surviving basis should be degree 2.
        assert!(quad.basis().iter().any(|b| b.degree() == 2));
    }

    #[test]
    fn piecewise_config_never_produces_interactions() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![det_noise(i) * 5.0, det_noise(i + 1000) * 5.0])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| r[0].max(0.0) * r[1].max(0.0)).collect();
        let m = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap();
        assert!(m.basis().iter().all(|b| b.degree() <= 1));
    }

    #[test]
    fn prediction_is_continuous_at_knots() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..100)
            .map(|i| {
                let v = i as f64 / 10.0;
                v.powi(2) * 0.3 + det_noise(i) * 0.05
            })
            .collect();
        let m = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap();
        for b in m.basis() {
            for t in b.factors() {
                let eps = 1e-7;
                let lo = m.predict_row(&[t.knot - eps]).unwrap();
                let hi = m.predict_row(&[t.knot + eps]).unwrap();
                assert!((lo - hi).abs() < 1e-4, "discontinuity at {}", t.knot);
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(MarsModel::fit(&x, &[1.0], &MarsConfig::default()).is_err());
        assert!(MarsModel::fit(&x, &[1.0, 2.0], &MarsConfig::default()).is_err());
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let xg = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let bad = MarsConfig {
            max_degree: 0,
            ..MarsConfig::default()
        };
        assert!(MarsModel::fit(&xg, &y, &bad).is_err());
        let bad2 = MarsConfig {
            penalty: f64::NAN,
            ..MarsConfig::default()
        };
        assert!(MarsModel::fit(&xg, &y, &bad2).is_err());
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let m = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap();
        assert!(m.predict_row(&[1.0]).is_err());
        assert_eq!(m.n_features(), 2);
    }

    #[test]
    fn intercept_only_for_constant_response() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y = vec![7.0; 30];
        let m = MarsModel::fit(&x, &y, &MarsConfig::quadratic()).unwrap();
        assert_eq!(m.n_terms(), 1);
        assert!((m.predict_row(&[100.0]).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_scoring_is_bit_identical_to_serial() {
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![i as f64 / 10.0, det_noise(i * 3 + 1) * 8.0])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r[0] - 6.0).abs() + 0.4 * r[1].max(0.0) + 0.02 * det_noise(i * 17 + 5))
            .collect();
        for base in [MarsConfig::piecewise_linear(), MarsConfig::quadratic()] {
            let serial = MarsModel::fit(&x, &y, &base).unwrap();
            let par_cfg = MarsConfig {
                exec: ExecPolicy::Parallel { threads: 4 },
                ..base
            };
            let parallel = MarsModel::fit(&x, &y, &par_cfg).unwrap();
            assert_eq!(serial.basis(), parallel.basis());
            assert_eq!(serial.coefficients(), parallel.coefficients());
            assert_eq!(serial.gcv(), parallel.gcv());
        }
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..60).map(|i| (i as f64 / 6.0 - 5.0).abs()).collect();
        let m = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let m2: MarsModel = serde_json::from_str(&json).unwrap();
        for probe in [0.0, 2.5, 5.0, 9.9] {
            assert_eq!(
                m.predict_row(&[probe]).unwrap(),
                m2.predict_row(&[probe]).unwrap()
            );
        }
    }
}
