//! Property-based tests for the MARS implementation.

use chaos_mars::{MarsConfig, MarsModel};
use chaos_stats::Matrix;
use proptest::prelude::*;

/// A 1-D piecewise-linear ground truth with a random knot and slopes.
/// Knots stay interior — a knot at the data's edge leaves its hinge with
/// too few active samples, and GCV legitimately prunes that detail away.
fn hinge_truth() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (2.5..7.5f64, -3.0..3.0f64, -3.0..3.0f64, -5.0..5.0f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MARS prediction is continuous across every selected knot.
    #[test]
    fn prediction_continuous_at_knots((knot, s1, s2, c) in hinge_truth()) {
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 / 12.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                let v = r[0];
                c + s1 * (v - knot).max(0.0) + s2 * (knot - v).max(0.0)
            })
            .collect();
        let m = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap();
        for b in m.basis() {
            for t in b.factors() {
                let eps = 1e-7;
                let lo = m.predict_row(&[t.knot - eps]).unwrap();
                let hi = m.predict_row(&[t.knot + eps]).unwrap();
                prop_assert!((lo - hi).abs() < 1e-3, "jump at {}", t.knot);
            }
        }
    }

    /// On exact hinge data, MARS achieves near-zero training error.
    #[test]
    fn recovers_exact_hinge((knot, s1, s2, c) in hinge_truth()) {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| c + s1 * (r[0] - knot).max(0.0) + s2 * (knot - r[0]).max(0.0))
            .collect();
        let m = MarsModel::fit(&x, &y, &MarsConfig::piecewise_linear()).unwrap();
        let span = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - y.iter().cloned().fold(f64::INFINITY, f64::min);
        let preds = m.predict(&x).unwrap();
        let worst = preds
            .iter()
            .zip(&y)
            .map(|(p, a)| (p - a).abs())
            .fold(0.0, f64::max);
        prop_assert!(
            worst < 0.05 * span.max(1e-6) + 1e-6,
            "worst {worst} over span {span}"
        );
    }

    /// The pruned model never has more terms than the configured maximum,
    /// and the intercept basis is always present.
    #[test]
    fn respects_structcaps(
        seeds in proptest::collection::vec(-1.0..1.0f64, 60),
        max_terms in 3usize..9,
    ) {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, seeds[i] * 10.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 0.5 + r[1].max(0.0)).collect();
        let cfg = MarsConfig {
            max_terms,
            ..MarsConfig::quadratic()
        };
        let m = MarsModel::fit(&x, &y, &cfg).unwrap();
        prop_assert!(m.n_terms() <= max_terms);
        prop_assert_eq!(m.basis()[0].degree(), 0, "intercept first");
        for b in m.basis() {
            prop_assert!(b.degree() <= cfg.max_degree);
        }
    }

    /// Refitting the same data yields the identical model (determinism).
    #[test]
    fn fit_is_deterministic(noise in proptest::collection::vec(-0.5..0.5f64, 80)) {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 8.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..80)
            .map(|i| (i as f64 / 8.0 - 5.0).abs() + noise[i])
            .collect();
        let cfg = MarsConfig::piecewise_linear();
        let a = MarsModel::fit(&x, &y, &cfg).unwrap();
        let b = MarsModel::fit(&x, &y, &cfg).unwrap();
        prop_assert_eq!(a.coefficients(), b.coefficients());
        for probe in [0.0, 3.3, 7.7] {
            prop_assert_eq!(
                a.predict_row(&[probe]).unwrap(),
                b.predict_row(&[probe]).unwrap()
            );
        }
    }
}
