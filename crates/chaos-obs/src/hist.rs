//! Lock-free log-scale histograms.
//!
//! Span latencies across the pipeline range from sub-microsecond Gram
//! cache hits to multi-second sweep grids, so the histogram buckets by
//! `floor(log2(v))`: 65 buckets cover the full `u64` range at a fixed
//! ~2× resolution. Recording is a handful of relaxed atomic ops, so
//! hot paths can record without coordinating.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket 0 holds zero samples; bucket `i` (1..=64) holds samples in
/// `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (typically span latencies
/// in nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// An immutable view of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow, like the live counter).
    pub sum: u64,
    /// Smallest sample, or 0 when empty.
    pub min: u64,
    /// Largest sample, or 0 when empty.
    pub max: u64,
    /// Per-bucket counts; bucket 0 holds zeros, bucket `i` holds
    /// `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the inclusive upper bound of the bucket
    /// where the cumulative count first reaches `q * count`. Resolution
    /// is one log₂ bucket (a factor of two), which is plenty for "where
    /// does the time go" questions.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn snapshot_tracks_count_sum_min_max() {
        let h = Histogram::new();
        for v in [5u64, 100, 3, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 70_108);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 70_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn quantile_brackets_the_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1_000_000); // bucket [2^19, 2^20)
        let s = h.snapshot();
        // p50 falls in the bucket containing 10: upper bound 15.
        assert_eq!(s.quantile(0.5), 15);
        // p100 falls in the bucket containing 1e6.
        let p100 = s.quantile(1.0);
        assert!(p100 >= 1_000_000 && p100 < 2_000_000, "p100 = {p100}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 999);
    }
}
