//! The `CHAOS_OBS` gate: a process-global observability level.
//!
//! Every instrumentation site in the workspace checks the level before
//! touching the registry, so the disabled path costs one relaxed atomic
//! load — cheap enough to leave instrumentation in hot pipeline code.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the observability layer records.
///
/// The level never changes *results*: counters, histograms and events
/// are side channels that observe the pipeline without feeding back into
/// it, so `Full` and `Off` runs are bit-identical (pinned by the
/// determinism suite in `chaos-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Record nothing. Every instrumentation site reduces to a single
    /// relaxed atomic load.
    Off,
    /// Record counters and histograms; binaries print a summary and
    /// write a run manifest on exit.
    Summary,
    /// Everything in `Summary`, plus one JSON line per span/event
    /// through the installed sink.
    Full,
}

impl ObsLevel {
    /// Parses a `CHAOS_OBS` value: `summary`, `full`, or anything else
    /// (including `off` and the empty string) for [`ObsLevel::Off`].
    pub fn parse(s: &str) -> ObsLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" | "1" => ObsLevel::Summary,
            "full" | "2" => ObsLevel::Full,
            _ => ObsLevel::Off,
        }
    }

    /// Stable lowercase label (`off`, `summary`, `full`).
    pub fn label(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Summary => "summary",
            ObsLevel::Full => "full",
        }
    }

    /// Reads the level from `CHAOS_OBS`. This is the sanctioned (and
    /// only) place the observability layer touches the environment for
    /// its level, so one process run has exactly one obs config.
    pub fn from_env() -> ObsLevel {
        match std::env::var("CHAOS_OBS") {
            Ok(v) => ObsLevel::parse(&v),
            Err(_) => ObsLevel::Off,
        }
    }

    fn from_u8(v: u8) -> ObsLevel {
        match v {
            1 => ObsLevel::Summary,
            2 => ObsLevel::Full,
            _ => ObsLevel::Off,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

/// The current process-global observability level.
#[inline]
pub fn level() -> ObsLevel {
    ObsLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Whether any recording is enabled (`Summary` or `Full`).
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) != 0
}

/// Sets the process-global level. Binaries normally go through
/// [`crate::init_from_env`]; tests and benches set the level directly.
pub fn set_level(level: ObsLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_values() {
        assert_eq!(ObsLevel::parse("off"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse(""), ObsLevel::Off);
        assert_eq!(ObsLevel::parse("nonsense"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse("summary"), ObsLevel::Summary);
        assert_eq!(ObsLevel::parse(" SUMMARY "), ObsLevel::Summary);
        assert_eq!(ObsLevel::parse("full"), ObsLevel::Full);
        assert_eq!(ObsLevel::parse("2"), ObsLevel::Full);
    }

    #[test]
    fn labels_round_trip() {
        for l in [ObsLevel::Off, ObsLevel::Summary, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(l.label()), l);
        }
    }

    #[test]
    fn levels_are_ordered_by_verbosity() {
        assert!(ObsLevel::Off < ObsLevel::Summary);
        assert!(ObsLevel::Summary < ObsLevel::Full);
    }
}
