//! Structured observability for the CHAOS pipeline: scoped span timers,
//! monotonic counters, log-scale latency histograms, a JSON-lines event
//! sink, and per-run manifests.
//!
//! The paper's pipeline (Davis et al., IISWC 2012) is a tower of nested
//! stages — Algorithm 1's six selection steps, MARS forward/backward
//! passes, cross-validation folds, sweep grid cells, robust-estimation
//! tier walks — and production deployments of counter-based power
//! models run them continuously. This crate makes those stages visible
//! without perturbing them:
//!
//! * **Side-effect only.** Metrics never feed back into computation, so
//!   results under `CHAOS_OBS=full` are bit-identical to
//!   `CHAOS_OBS=off` (pinned by the `chaos-core` determinism suite).
//! * **Near-zero disabled cost.** Every entry point checks one relaxed
//!   atomic load before doing anything else; a disabled [`span`] does
//!   not even read the clock.
//! * **Zero dependencies.** Registry, histograms and JSON rendering are
//!   all std-only, so every crate in the workspace can depend on it.
//!
//! # Levels
//!
//! The `CHAOS_OBS` environment variable (read by [`init_from_env`])
//! selects a level:
//!
//! | value | effect |
//! |---|---|
//! | unset / `off` | nothing recorded |
//! | `summary` | counters + histograms; summary and manifest on exit |
//! | `full` | `summary` plus a JSON-lines event stream per span |
//!
//! # Example
//!
//! ```
//! use chaos_obs::ObsLevel;
//!
//! chaos_obs::set_level(ObsLevel::Summary);
//! chaos_obs::add("example.items", 3);
//! {
//!     let _span = chaos_obs::span("example.stage");
//!     // ... timed work ...
//! }
//! assert!(chaos_obs::counters()
//!     .iter()
//!     .any(|(name, v)| name == "example.items" && *v == 3));
//! assert!(chaos_obs::histograms()
//!     .iter()
//!     .any(|(name, _)| name == "span.example.stage"));
//! chaos_obs::set_level(ObsLevel::Off);
//! chaos_obs::reset();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod hist;
mod level;
mod manifest;
mod registry;
mod sink;
mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use level::{enabled, level, set_level, ObsLevel};
pub use manifest::{obs_dir, Manifest};
pub use sink::{event, install_sink, Value};
pub use span::{span, Span};

/// Increments counter `name` by `delta`. No-op when observability is
/// off.
pub fn add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    registry::global().add(name, delta);
}

/// Records `value` into histogram `name`. No-op when observability is
/// off.
pub fn record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    registry::global().record(name, value);
}

/// Snapshot of all counters, sorted by name.
pub fn counters() -> Vec<(String, u64)> {
    registry::global().counters_snapshot()
}

/// Current value of counter `name` (0 if it was never incremented or
/// observability is off). Lets long-running services (`chaos-serve`)
/// surface individual counters without snapshotting the whole registry.
pub fn counter(name: &str) -> u64 {
    counters()
        .into_iter()
        .find_map(|(n, v)| (n == name).then_some(v))
        .unwrap_or(0)
}

/// Snapshot of all histograms, sorted by name.
pub fn histograms() -> Vec<(String, HistogramSnapshot)> {
    registry::global().histograms_snapshot()
}

/// Clears all counters and histograms (tests and benches; the event
/// sink and level are left alone).
pub fn reset() {
    registry::global().reset_metrics();
}

/// Reads `CHAOS_OBS` and arms the layer for one binary run. At `full`,
/// also installs the event sink at `<obs_dir>/<bin>.events.jsonl`.
/// Call this first thing in `main`.
pub fn init_from_env(bin: &str) {
    let level = ObsLevel::from_env();
    set_level(level);
    if level == ObsLevel::Full {
        let path = obs_dir().join(format!("{bin}.events.jsonl"));
        if let Err(e) = install_sink(&path) {
            eprintln!(
                "chaos-obs: cannot open event sink at {}: {e}",
                path.display()
            );
        }
    }
}

/// Renders all counters and histogram summaries as an aligned,
/// deterministic text block.
pub fn summary_string() -> String {
    let mut out = String::from("== chaos-obs summary ==\n");
    let counters = counters();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &counters {
            out.push_str(&format!("  {name:<42} {v}\n"));
        }
    }
    let hists = histograms();
    if !hists.is_empty() {
        out.push_str("histograms (span values in ns):\n");
        for (name, h) in &hists {
            out.push_str(&format!(
                "  {name:<42} n={} mean={:.0} p50<={} p95<={} max={}\n",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.max
            ));
        }
    }
    out
}

/// Ends a run: prints the summary to stderr, flushes the event sink,
/// and writes the manifest. Returns the manifest path, or `None` when
/// observability is off or the write failed.
pub fn finish(manifest: Manifest) -> Option<std::path::PathBuf> {
    if !enabled() {
        return None;
    }
    eprint!("{}", summary_string());
    sink::flush_sink();
    match manifest.write() {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("chaos-obs: cannot write manifest: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that flip the process-global level.
    static LEVEL_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_layer_records_nothing() {
        let _guard = LEVEL_GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_level(ObsLevel::Off);
        add("lib_test.off_counter", 5);
        record("lib_test.off_hist", 5);
        let _span = span("lib_test.off_span");
        drop(_span);
        assert!(!counters()
            .iter()
            .any(|(n, _)| n.starts_with("lib_test.off")));
        assert!(!histograms()
            .iter()
            .any(|(n, _)| n.starts_with("span.lib_test.off")));
    }

    #[test]
    fn enabled_layer_records_counters_and_spans() {
        let _guard = LEVEL_GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_level(ObsLevel::Summary);
        add("lib_test.on_counter", 2);
        add("lib_test.on_counter", 3);
        {
            let _span = span("lib_test.on_span");
        }
        set_level(ObsLevel::Off);
        assert!(counters()
            .iter()
            .any(|(n, v)| n == "lib_test.on_counter" && *v == 5));
        let hists = histograms();
        let (_, h) = hists
            .iter()
            .find(|(n, _)| n == "span.lib_test.on_span")
            .expect("span histogram registered");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn single_counter_lookup_matches_snapshot() {
        let _guard = LEVEL_GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_level(ObsLevel::Summary);
        add("lib_test.lookup_counter", 7);
        set_level(ObsLevel::Off);
        assert_eq!(counter("lib_test.lookup_counter"), 7);
        assert_eq!(counter("lib_test.never_written"), 0);
    }

    #[test]
    fn summary_lists_metrics_in_sorted_order() {
        let _guard = LEVEL_GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_level(ObsLevel::Summary);
        add("lib_test.summary_b", 1);
        add("lib_test.summary_a", 1);
        set_level(ObsLevel::Off);
        let s = summary_string();
        let a = s.find("lib_test.summary_a").expect("a listed");
        let b = s.find("lib_test.summary_b").expect("b listed");
        assert!(a < b, "summary not sorted:\n{s}");
    }
}
