//! Per-run manifests.
//!
//! A manifest is one JSON document per experiment run capturing
//! everything needed to reproduce and audit it: binary name, seed,
//! serialized configuration, the `CHAOS_OBS` / `CHAOS_THREADS`
//! environment policies, crate version, wall-clock total, and the final
//! counter and histogram values. Written to `<obs_dir>/<bin>.manifest.json`.

use crate::level;
use crate::registry;
use crate::sink::json_escape;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Resolves the observability output directory: `CHAOS_OBS_DIR` when
/// set and non-empty, otherwise `results/obs/` at the workspace root.
pub fn obs_dir() -> PathBuf {
    // chaos-lint: allow(R3) — output-path override only: it decides where
    // side-channel artifacts land and never feeds back into estimates.
    if let Ok(dir) = std::env::var("CHAOS_OBS_DIR") {
        if !dir.trim().is_empty() {
            return PathBuf::from(dir);
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        // chaos-lint: allow(R4) — crate layout invariant: this file is
        // compiled from crates/chaos-obs, two levels below the root.
        .expect("chaos-obs lives two levels below the workspace root")
        .join("results")
        .join("obs")
}

/// Builder for a per-run manifest. Construct with [`Manifest::new`],
/// attach context with the `with_*` methods, then hand it to
/// [`crate::finish`] (or call [`Manifest::write`] directly).
#[derive(Debug, Clone)]
pub struct Manifest {
    bin: String,
    seed: Option<u64>,
    config_json: Option<String>,
    extra: Vec<(String, String)>,
}

impl Manifest {
    /// Starts a manifest for the named binary.
    pub fn new(bin: &str) -> Self {
        Manifest {
            bin: bin.to_string(),
            seed: None,
            config_json: None,
            extra: Vec::new(),
        }
    }

    /// Records the run's base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Embeds a pre-serialized configuration verbatim under `"config"`.
    /// The caller guarantees `json` is valid JSON.
    #[must_use]
    pub fn with_config_json(mut self, json: String) -> Self {
        self.config_json = Some(json);
        self
    }

    /// Attaches an extra string field under `"extra"`.
    #[must_use]
    pub fn with_field(mut self, key: &str, value: &str) -> Self {
        self.extra.push((key.to_string(), value.to_string()));
        self
    }

    /// Renders the manifest — including the current registry contents —
    /// as a JSON document.
    pub fn render(&self) -> String {
        let reg = registry::global();
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"chaos-obs-manifest/1\",\n");
        out.push_str(&format!("  \"bin\": \"{}\",\n", json_escape(&self.bin)));
        out.push_str(&format!(
            "  \"chaos_obs_version\": \"{}\",\n",
            env!("CARGO_PKG_VERSION")
        ));
        out.push_str(&format!(
            "  \"obs_level\": \"{}\",\n",
            level::level().label()
        ));
        // chaos-lint: allow(R3) — audit trail, not config: the manifest
        // *records* the policy string; the authoritative read that shapes
        // execution stays in ExecPolicy::from_env.
        let threads = std::env::var("CHAOS_THREADS").unwrap_or_else(|_| "unset".to_string());
        out.push_str(&format!(
            "  \"chaos_threads\": \"{}\",\n",
            json_escape(&threads)
        ));
        match self.seed {
            Some(seed) => out.push_str(&format!("  \"seed\": {seed},\n")),
            None => out.push_str("  \"seed\": null,\n"),
        }
        match &self.config_json {
            Some(config) => out.push_str(&format!("  \"config\": {config},\n")),
            None => out.push_str("  \"config\": null,\n"),
        }
        out.push_str("  \"extra\": {");
        let extras: Vec<String> = self
            .extra
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        out.push_str(&extras.join(", "));
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"wall_s\": {:.3},\n",
            reg.elapsed().as_secs_f64()
        ));
        // chaos-lint: allow(R2) — run metadata in a side-channel artifact;
        // estimates are bit-identical with manifests disabled.
        let unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        out.push_str(&format!("  \"finished_unix_s\": {unix},\n"));
        out.push_str("  \"counters\": {");
        let counters: Vec<String> = reg
            .counters_snapshot()
            .iter()
            .map(|(name, v)| format!("\"{}\": {v}", json_escape(name)))
            .collect();
        out.push_str(&counters.join(", "));
        out.push_str("},\n");
        out.push_str("  \"histograms\": {");
        let hists: Vec<String> = reg
            .histograms_snapshot()
            .iter()
            .map(|(name, h)| {
                format!(
                    "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p95\": {}}}",
                    json_escape(name),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.quantile(0.5),
                    h.quantile(0.95)
                )
            })
            .collect();
        out.push_str(&hists.join(", "));
        out.push_str("}\n");
        out.push_str("}\n");
        out
    }

    /// Writes the manifest to `<obs_dir>/<bin>.manifest.json` and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = obs_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.manifest.json", self.bin));
        fs::write(&path, self.render())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_balanced_json_with_expected_fields() {
        let manifest = Manifest::new("unit_test_bin")
            .with_seed(2012)
            .with_config_json("{\"k\": 1}".to_string())
            .with_field("note", "hello \"world\"");
        let json = manifest.render();
        assert!(json.contains("\"schema\": \"chaos-obs-manifest/1\""));
        assert!(json.contains("\"bin\": \"unit_test_bin\""));
        assert!(json.contains("\"seed\": 2012"));
        assert!(json.contains("\"config\": {\"k\": 1}"));
        assert!(json.contains("\"note\": \"hello \\\"world\\\"\""));
        assert!(json.contains("\"chaos_threads\""));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in:\n{json}");
    }

    #[test]
    fn default_fields_are_null() {
        let json = Manifest::new("bare").render();
        assert!(json.contains("\"seed\": null"));
        assert!(json.contains("\"config\": null"));
    }

    #[test]
    fn obs_dir_falls_back_to_workspace_results() {
        // Only exercise the fallback when the override is not set; tests
        // must not mutate process-global env.
        if std::env::var("CHAOS_OBS_DIR").is_err() {
            let dir = obs_dir();
            assert!(dir.ends_with("results/obs"), "dir = {}", dir.display());
        }
    }
}
