//! The process-global registry of counters and histograms.
//!
//! Names are registered lazily on first use and kept in `BTreeMap`s so
//! snapshots and summaries come out in a stable, deterministic order.
//! The maps are only locked to *look up* a metric; the metrics
//! themselves are atomics, so concurrent recording never contends on
//! the registry locks for more than a map read.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::sink::EventSink;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    pub(crate) sink: Mutex<Option<EventSink>>,
    start: Instant,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

pub(crate) fn global() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        sink: Mutex::new(None),
        // chaos-lint: allow(R2) — wall-clock anchor for the manifest's
        // wall_s field only; never read by estimation code.
        start: Instant::now(),
    })
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = lock(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    pub(crate) fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    pub(crate) fn counters_snapshot(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn histograms_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        lock(&self.histograms)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    pub(crate) fn reset_metrics(&self) {
        lock(&self.counters).clear();
        lock(&self.histograms).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_come_out_sorted_by_name() {
        let reg = Registry {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            sink: Mutex::new(None),
            start: Instant::now(),
        };
        reg.add("zebra", 1);
        reg.add("alpha", 2);
        reg.add("middle", 3);
        let snapshot = reg.counters_snapshot();
        let names: Vec<&str> = snapshot.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "middle", "zebra"]);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let reg = Registry {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            sink: Mutex::new(None),
            start: Instant::now(),
        };
        reg.add("c", 2);
        reg.add("c", 3);
        reg.record("h", 7);
        assert_eq!(reg.counters_snapshot(), vec![("c".to_string(), 5)]);
        assert_eq!(reg.histograms_snapshot()[0].1.count, 1);
        reg.reset_metrics();
        assert!(reg.counters_snapshot().is_empty());
        assert!(reg.histograms_snapshot().is_empty());
    }
}
