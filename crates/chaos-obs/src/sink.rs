//! The JSON-lines event sink.
//!
//! At `CHAOS_OBS=full`, spans and explicit events append one JSON
//! object per line to `<obs_dir>/<bin>.events.jsonl`. Every line
//! carries a monotonic sequence number and nanoseconds since process
//! start, so traces from a run can be replayed or diffed. JSON is
//! rendered by hand to keep the crate dependency-free.

use crate::level::{level, ObsLevel};
use crate::registry;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// A JSON-renderable event field value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Unsigned integer, rendered as a JSON number.
    U64(u64),
    /// Float, rendered as a JSON number (`null` when non-finite).
    F64(f64),
    /// String, escaped per JSON.
    Str(String),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(_) => "null".to_string(),
            Value::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }
}

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) struct EventSink {
    writer: BufWriter<File>,
    seq: u64,
    path: PathBuf,
}

/// Installs the event sink at `path`, creating parent directories.
/// Subsequent `Full`-level spans and events append one JSON line each.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or opening the file.
pub fn install_sink(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let file = File::create(path)?;
    *registry::lock(&registry::global().sink) = Some(EventSink {
        writer: BufWriter::new(file),
        seq: 0,
        path: path.to_path_buf(),
    });
    Ok(())
}

/// Emits one structured event. Only recorded at [`ObsLevel::Full`] with
/// a sink installed; dropped silently otherwise.
// chaos-lint: cold — callers fire events on state transitions (drift, quarantine, membership, refit), never on the quiet steady tick; alloc_regression pins that
pub fn event(kind: &str, fields: &[(&str, Value)]) {
    if level() != ObsLevel::Full {
        return;
    }
    emit(kind, fields);
}

pub(crate) fn emit(kind: &str, fields: &[(&str, Value)]) {
    let reg = registry::global();
    let t_ns = u64::try_from(reg.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut guard = registry::lock(&reg.sink);
    let Some(sink) = guard.as_mut() else {
        return;
    };
    let mut line = format!(
        "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\"",
        sink.seq,
        t_ns,
        json_escape(kind)
    );
    for (key, value) in fields {
        line.push_str(&format!(",\"{}\":{}", json_escape(key), value.render()));
    }
    line.push_str("}\n");
    let _ = sink.writer.write_all(line.as_bytes());
    sink.seq += 1;
}

/// Flushes the sink (if installed) and returns its path.
pub fn flush_sink() -> Option<PathBuf> {
    let reg = registry::global();
    let mut guard = registry::lock(&reg.sink);
    guard.as_mut().map(|sink| {
        let _ = sink.writer.flush();
        sink.path.clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("line\nbreak"), "line\\nbreak");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn values_render_as_json() {
        assert_eq!(Value::U64(42).render(), "42");
        assert_eq!(Value::F64(1.5).render(), "1.5");
        assert_eq!(Value::F64(f64::NAN).render(), "null");
        assert_eq!(Value::Str("x\"y".to_string()).render(), "\"x\\\"y\"");
    }
}
