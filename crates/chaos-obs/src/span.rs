//! Scoped span timers.
//!
//! A [`Span`] measures wall-clock time from creation to drop and
//! records it into the histogram `span.<label>`. When the level is
//! [`Full`](crate::ObsLevel::Full) it additionally emits a `span` event
//! through the JSON-lines sink. When observability is off, opening a
//! span does not even read the clock.

use crate::level::{enabled, level, ObsLevel};
use crate::registry;
use crate::sink::{self, Value};
use std::time::Instant;

/// An RAII span timer; see the [module docs](self).
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; bind it with `let _span = ...`"]
pub struct Span {
    label: &'static str,
    start: Option<Instant>,
}

/// Opens a span named `label`. Zero-cost (no clock read, no
/// allocation) when observability is off.
pub fn span(label: &'static str) -> Span {
    Span {
        label,
        // chaos-lint: allow(R2) — span timing is a pure side channel;
        // the determinism suite pins results bit-identical with obs off.
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        registry::global().record(&format!("span.{}", self.label), ns);
        if level() == ObsLevel::Full {
            sink::emit(
                "span",
                &[
                    ("name", Value::Str(self.label.to_string())),
                    ("ns", Value::U64(ns)),
                ],
            );
        }
    }
}
