//! Deterministic server construction: training, first boot, and
//! restore-from-snapshot.
//!
//! The server never persists its trained estimator. Instead, the
//! estimator is a *deterministic function of the [`FleetSpec`]*: the
//! same platform/seed always trains the same model (same simulated
//! calibration runs, same feature selection, same coefficients to the
//! bit). First boot and snapshot-restore therefore share one training
//! path, [`train_estimator`], and the restore path only has to check
//! that the snapshot's spec echo matches before rehydrating state.
//!
//! Held-out baseline DRE is fixed at [`BASELINE_DRE`] — the drift
//! detectors in every slot compare their rolling DRE against it, and
//! it must be identical across boots for restored engines to make the
//! same refit decisions.

use crate::fleet::{Fleet, MachineSlot};
use crate::protocol::TickResult;
use crate::snapshot::ServerState;
use chaos_core::robust::{strawman_position, EstimateTier, RobustConfig, RobustEstimator};
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, CounterCatalog, MachineRunTrace, RunTrace, ValidityMask};
use chaos_sim::FleetSpec;
use chaos_stats::ExecPolicy;
use chaos_stream::{SnapshotError, StreamConfig, StreamEngine, StreamOutput};
use std::collections::BTreeMap;

/// Held-out baseline DRE every slot's drift detector compares against.
pub const BASELINE_DRE: f64 = 0.05;

/// Machines in the synthetic calibration cluster (independent of fleet
/// size — training cost does not grow with the fleet).
const TRAIN_MACHINES: usize = 3;

/// Calibration runs fed to the fit.
const TRAIN_RUNS: u64 = 2;

/// Everything a server needs besides its fleet: stream configuration
/// and serving limits.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The fleet this server models.
    pub fleet: FleetSpec,
    /// Per-slot streaming configuration (the `exec` field is ignored —
    /// slots always run serial engines; the *fleet* parallelizes).
    pub stream: StreamConfig,
    /// Power-history ring capacity, ticks.
    pub history_cap: usize,
    /// Request body cap, bytes.
    pub max_body_bytes: usize,
}

impl ServeOptions {
    /// Test-shaped options: short windows, quick drift response, small
    /// history.
    pub fn quick(fleet: FleetSpec) -> ServeOptions {
        ServeOptions {
            fleet,
            stream: StreamConfig::fast(),
            history_cap: 64,
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
        }
    }

    /// Deployment-shaped options: five-minute windows, conservative
    /// drift response.
    pub fn paper(fleet: FleetSpec) -> ServeOptions {
        ServeOptions {
            fleet,
            stream: StreamConfig::paper(),
            history_cap: 1024,
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
        }
    }
}

/// Trains the estimator the fleet's slots share — a pure function of
/// the spec. Same spec, same model, to the bit.
///
/// # Errors
///
/// Propagates [`crate::ServeError::Internal`] if simulation or fitting
/// fails (degenerate spec).
pub fn train_estimator(spec: FleetSpec) -> Result<RobustEstimator, crate::ServeError> {
    let _span = chaos_obs::span("serve.train");
    let cluster = chaos_sim::Cluster::homogeneous(spec.platform, TRAIN_MACHINES, spec.seed);
    let catalog = CounterCatalog::for_platform(&spec.platform.spec());
    let sim = chaos_workloads::SimConfig::quick();
    let train: Vec<RunTrace> = (0..TRAIN_RUNS)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                chaos_workloads::Workload::Prime,
                &sim,
                spec.seed.wrapping_mul(1000).wrapping_add(r),
            )
            .map_err(|e| crate::ServeError::Internal {
                detail: format!("calibration run {r}: {e}"),
            })
        })
        .collect::<Result<_, _>>()?;
    let feature_spec = FeatureSpec::general(&catalog);
    let cpu = strawman_position(&feature_spec, &catalog);
    let idle = cluster.idle_power() / TRAIN_MACHINES as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(feature_spec.freq_column(&catalog)),
        ..RobustConfig::fast()
    };
    RobustEstimator::fit(&train, &feature_spec, cpu, idle, cfg).map_err(|e| {
        crate::ServeError::Internal {
            detail: format!("estimator fit: {e}"),
        }
    })
}

/// Builds a fresh fleet for first boot: train, then one slot per
/// machine.
///
/// # Errors
///
/// Propagates training or engine-construction failures.
pub fn build_fleet(opts: &ServeOptions, exec: ExecPolicy) -> Result<Fleet, crate::ServeError> {
    let estimator = train_estimator(opts.fleet)?;
    Fleet::new(&estimator, opts.fleet, opts.stream, exec, BASELINE_DRE)
}

/// Rehydrates a fleet from a decoded snapshot: retrains the estimator
/// from the spec (identical to first boot), restores every slot's
/// engine from its embedded `CHAOSNAP` bytes, and rebuilds the rolling
/// buffers.
///
/// # Errors
///
/// [`SnapshotError::Incompatible`] (wrapped in
/// [`crate::ServeError::Snapshot`]) when the snapshot's fleet echo
/// does not match `opts.fleet`; decode errors for damaged embedded
/// engine snapshots.
pub fn restore_fleet(
    opts: &ServeOptions,
    exec: ExecPolicy,
    state: &ServerState,
) -> Result<Fleet, crate::ServeError> {
    let spec = opts.fleet;
    if state.platform != spec.platform.name()
        || state.machines != spec.machines
        || state.seed != spec.seed
    {
        return Err(crate::ServeError::Snapshot(SnapshotError::Incompatible {
            context: format!(
                "snapshot is for fleet {}x{} seed {}, server configured for {}x{} seed {}",
                state.platform,
                state.machines,
                state.seed,
                spec.platform.name(),
                spec.machines,
                spec.seed
            ),
        }));
    }
    let estimator = train_estimator(spec)?;
    let width = CounterCatalog::for_platform(&spec.platform.spec()).len();
    if state.width != width {
        return Err(crate::ServeError::Snapshot(SnapshotError::Incompatible {
            context: format!(
                "snapshot carries counter width {}, this build's catalog has {}",
                state.width, width
            ),
        }));
    }
    let mut slots = Vec::with_capacity(state.slots.len());
    for slot_state in &state.slots {
        let engine = StreamEngine::restore(estimator.clone(), &slot_state.engine)?;
        let buf = RunTrace {
            workload: "serve".to_string(),
            run_seed: 0,
            machines: vec![MachineRunTrace {
                machine_id: 0,
                platform: spec.platform,
                counters: slot_state.counters.clone(),
                measured_power_w: slot_state.measured_power_w.clone(),
                true_power_w: vec![0.0; slot_state.measured_power_w.len()],
                validity: ValidityMask {
                    counters: slot_state.counter_ok.clone(),
                    meter: slot_state.meter_ok.clone(),
                    alive: slot_state.alive.clone(),
                },
            }],
            membership: Vec::new(),
        };
        slots.push(MachineSlot {
            engine,
            buf,
            base_t: slot_state.base_t,
            pending: None,
            samples_total: slot_state.samples_total,
            refit_counts: slot_state.refit_counts.clone(),
            last_refit_t: slot_state.last_refit_t,
            last: slot_state.last.clone(),
            out: StreamOutput {
                t: 0,
                cluster_power_w: 0.0,
                worst_tier: EstimateTier::Full,
                active_machines: 0,
                machines: Vec::new(),
            },
            spare_masks: Vec::new(),
        });
    }
    Ok(Fleet {
        slots,
        exec,
        t_next: state.t_next,
        spec,
        width,
    })
}

/// Restored auxiliary state the server carries besides the fleet.
#[derive(Debug, Clone, Default)]
pub struct RestoredExtras {
    /// Power-history ring, oldest first.
    pub history: Vec<TickResult>,
    /// The server's own counters.
    pub counters: BTreeMap<String, u64>,
}

/// Splits a decoded snapshot's non-fleet state out for the server.
pub fn restored_extras(state: &ServerState) -> RestoredExtras {
    RestoredExtras {
        history: state.history.clone(),
        counters: state.counters.clone(),
    }
}
