//! The sharded fleet: one single-machine [`StreamEngine`] per fleet
//! member, advanced in parallel under an [`ExecPolicy`] and composed
//! serially in machine order.
//!
//! # Why one engine per machine
//!
//! `chaos-stream` already proves per-machine streams independent
//! between membership events; the server leans on that by giving every
//! machine its *own* engine and rolling trace buffer
//! ([`MachineSlot`]). A tick then has three phases:
//!
//! 1. **Validate + stage** (serial): the tick is checked against the
//!    fleet shape and each sample staged into its slot.
//! 2. **Advance** (parallel via [`ExecPolicy::par_map_mut`]): each slot
//!    appends its staged row, pushes one second through its engine,
//!    drains refit outcomes, and compacts its buffer back to the lag
//!    row. Slots share nothing, so any shard count computes the same
//!    bits.
//! 3. **Compose** (serial, machine order): Eq. 5 summation, worst-tier
//!    max, and tallies — the order-sensitive float work never runs
//!    concurrently.
//!
//! That structure is what makes the wire-level determinism contract
//! (`docs/PROTOCOL.md`) hold for any `CHAOS_THREADS`: the only
//! parallel phase is over disjoint slots, pinned by
//! `tests/determinism.rs`.
//!
//! # The rolling buffer
//!
//! [`StreamEngine::push_second`] reads second `t` and its predecessor
//! from a [`RunTrace`], so a slot's buffer needs only *two* rows in
//! steady state: the lag row and the current row. After each advance
//! the slot compacts to the last row and calls
//! [`StreamEngine::rebase`], keeping memory O(window), not O(stream).

use crate::protocol::{LastSample, MachineStatus, TickResult, WireSample, WireTick};
use crate::ServeError;
use chaos_core::robust::EstimateTier;
use chaos_core::RobustEstimator;
use chaos_counters::{MachineRunTrace, RunTrace, ValidityMask};
use chaos_sim::FleetSpec;
use chaos_stats::ExecPolicy;
use chaos_stream::{StreamConfig, StreamEngine, StreamOutput, StreamSample};
use std::collections::BTreeMap;

/// One fleet member's serving state: a single-machine engine plus the
/// rolling two-row trace buffer it consumes.
#[derive(Debug)]
pub struct MachineSlot {
    /// The machine's private streaming engine (always serial — the
    /// fleet parallelizes *across* slots, never within one).
    pub(crate) engine: StreamEngine,
    /// Rolling single-machine trace: lag row + current row.
    pub(crate) buf: RunTrace,
    /// Absolute second the buffer's index space is offset by.
    pub(crate) base_t: u64,
    /// Sample staged by the validate phase for the next advance.
    pub(crate) pending: Option<WireSample>,
    /// Samples ingested for this machine.
    pub(crate) samples_total: u64,
    /// Applied-refit tallies by tier label (`"none"` for failed
    /// ladders).
    pub(crate) refit_counts: BTreeMap<String, u64>,
    /// Absolute second of the most recent refit attempt.
    pub(crate) last_refit_t: Option<u64>,
    /// Most recent emitted sample.
    pub(crate) last: Option<LastSample>,
    /// Reused per-tick engine output — the sample vector's storage
    /// survives across ticks so a steady-state advance allocates
    /// nothing inside the engine call.
    pub(crate) out: StreamOutput,
    /// Recycled validity-mask rows reclaimed at compaction, reused for
    /// samples that omit `counter_ok` (the common all-valid case).
    pub(crate) spare_masks: Vec<Vec<bool>>,
}

/// What one slot's advance phase hands back to the composer.
#[derive(Debug, Clone)]
struct SlotAdvance {
    sample: Option<StreamSample>,
    refits: u64,
}

fn empty_buffer(platform: chaos_sim::Platform) -> RunTrace {
    RunTrace {
        workload: "serve".to_string(),
        run_seed: 0,
        machines: vec![MachineRunTrace {
            machine_id: 0,
            platform,
            counters: Vec::new(),
            measured_power_w: Vec::new(),
            true_power_w: Vec::new(),
            validity: ValidityMask {
                counters: Vec::new(),
                meter: Vec::new(),
                alive: Vec::new(),
            },
        }],
        membership: Vec::new(),
    }
}

impl MachineSlot {
    fn new(engine: StreamEngine, platform: chaos_sim::Platform) -> MachineSlot {
        let buf = empty_buffer(platform);
        MachineSlot {
            engine,
            buf,
            base_t: 0,
            pending: None,
            samples_total: 0,
            refit_counts: BTreeMap::new(),
            last_refit_t: None,
            last: None,
            out: StreamOutput {
                t: 0,
                cluster_power_w: 0.0,
                worst_tier: EstimateTier::Full,
                active_machines: 0,
                machines: Vec::new(),
            },
            spare_masks: Vec::new(),
        }
    }

    /// Appends the staged sample, advances the engine one second,
    /// drains refit outcomes into the tallies, and compacts the buffer
    /// back to the lag row.
    fn advance(&mut self) -> Result<SlotAdvance, ServeError> {
        let sample = self.pending.take().ok_or_else(|| ServeError::Internal {
            detail: "slot advanced with no staged sample".to_string(),
        })?;
        let Some(m) = self.buf.machines.first_mut() else {
            return Err(ServeError::Internal {
                detail: "slot buffer lost its machine".to_string(),
            });
        };
        let width = sample.counters.len();
        m.counters.push(sample.counters);
        let meter_ok = sample.meter_ok && sample.power_w.is_some();
        m.measured_power_w.push(sample.power_w.unwrap_or(0.0));
        m.true_power_w.push(0.0);
        let mask = match sample.counter_ok {
            Some(mask) => mask,
            None => {
                // All-valid default built in recycled storage instead of
                // a fresh `vec![true; width]` every tick.
                let mut mask = self.spare_masks.pop().unwrap_or_default();
                mask.clear();
                mask.resize(width, true);
                mask
            }
        };
        m.validity.counters.push(mask);
        m.validity.meter.push(meter_ok);
        m.validity.alive.push(sample.alive);
        let rel = m.seconds() - 1;

        self.engine
            .push_second_into(&self.buf, rel, &mut self.out)?;
        let stream_sample = self.out.machines.pop();

        let drained = self.engine.drain_refit_outcomes();
        let refits = drained.len() as u64;
        for outcome in &drained {
            let label = outcome.applied.map_or("none", |tier| tier.label());
            match self.refit_counts.get_mut(label) {
                Some(count) => *count += 1,
                None => {
                    self.refit_counts.insert(label.to_string(), 1);
                }
            }
            self.last_refit_t = Some(self.base_t + outcome.t as u64);
        }

        self.samples_total += 1;
        if let Some(s) = &stream_sample {
            let t_abs = self.base_t + rel as u64;
            let tier_label = s.tier.label();
            match &mut self.last {
                // Update the previous sample in place: the tier string's
                // storage is reused unless the tier actually changed.
                Some(l) => {
                    l.t = t_abs;
                    l.power_w = s.power_w;
                    if l.tier != tier_label {
                        l.tier.clear();
                        l.tier.push_str(tier_label);
                    }
                    l.adapted = s.adapted;
                    l.imputed = s.imputed;
                    l.rolling_dre = s.rolling_dre;
                }
                None => {
                    self.last = Some(LastSample {
                        t: t_abs,
                        power_w: s.power_w,
                        tier: tier_label.to_string(),
                        adapted: s.adapted,
                        imputed: s.imputed,
                        rolling_dre: s.rolling_dre,
                    });
                }
            }
        }

        // Compact: keep only the just-consumed row as the next tick's
        // lag row, and shift the engine cursor to match. Evicted mask
        // rows are reclaimed for the next tick's all-valid default.
        if let Some(m) = self.buf.machines.first_mut() {
            m.counters.drain(..rel);
            m.measured_power_w.drain(..rel);
            m.true_power_w.drain(..rel);
            for mask in m.validity.counters.drain(..rel) {
                if self.spare_masks.len() < 2 {
                    self.spare_masks.push(mask);
                }
            }
            m.validity.meter.drain(..rel);
            m.validity.alive.drain(..rel);
        }
        self.engine.rebase(rel)?;
        self.base_t += rel as u64;

        Ok(SlotAdvance {
            sample: stream_sample,
            refits,
        })
    }

    /// The slot's serving status (for `/v1/machines`).
    fn status(&self, machine_id: usize) -> MachineStatus {
        let health = self
            .engine
            .health()
            .first()
            .map_or("healthy", |h| h.label())
            .to_string();
        MachineStatus {
            machine_id,
            health,
            samples: self.samples_total,
            last: self.last.clone(),
            refit_counts: self.refit_counts.clone(),
            last_refit_t: self.last_refit_t,
        }
    }
}

/// The sharded fleet: every machine's slot plus the shared cursor.
#[derive(Debug)]
pub struct Fleet {
    pub(crate) slots: Vec<MachineSlot>,
    pub(crate) exec: ExecPolicy,
    pub(crate) t_next: u64,
    pub(crate) spec: FleetSpec,
    pub(crate) width: usize,
}

impl Fleet {
    /// Builds a fleet of single-machine engines over a shared trained
    /// estimator. Each slot gets its own engine with the fleet's
    /// per-machine dynamic range; the estimator is cloned per slot so
    /// slots stay disjoint for the parallel advance phase.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeError::Stream`] if engine construction rejects
    /// the configuration.
    pub fn new(
        estimator: &RobustEstimator,
        spec: FleetSpec,
        stream: StreamConfig,
        exec: ExecPolicy,
        baseline_dre: f64,
    ) -> Result<Fleet, ServeError> {
        let cluster = spec.cluster();
        let max_w = spec.per_machine_max_w(&cluster);
        let idle_w = spec.per_machine_idle_w(&cluster);
        // Samples carry *raw* counter rows (catalog width); the
        // estimator assembles its model-input features from them.
        let width = chaos_counters::CounterCatalog::for_platform(&spec.platform.spec()).len();
        let per_slot = stream.with_exec(ExecPolicy::Serial);
        let slots = (0..spec.machines)
            .map(|_| {
                let engine =
                    StreamEngine::new(estimator.clone(), 1, max_w, idle_w, baseline_dre, per_slot)?;
                Ok(MachineSlot::new(engine, spec.platform))
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(Fleet {
            slots,
            exec,
            t_next: 0,
            spec,
            width,
        })
    }

    /// Validates one tick against the fleet shape and stages each
    /// sample into its slot. Serial, and mutates nothing until every
    /// sample has passed — a rejected tick leaves the fleet untouched.
    fn stage(&mut self, tick: &WireTick) -> Result<(), ServeError> {
        if tick.t != self.t_next {
            return Err(ServeError::OutOfOrder {
                expected: self.t_next,
                got: tick.t,
            });
        }
        if tick.machines.len() != self.slots.len() {
            return Err(ServeError::MachineCountMismatch {
                expected: self.slots.len(),
                got: tick.machines.len(),
            });
        }
        // chaos-lint: allow(R6) — one bounded duplicate-detection bitmap per wire tick; serve ticks are network-paced, not sample-paced
        let mut seen = vec![false; self.slots.len()];
        for sample in &tick.machines {
            if sample.machine_id >= self.slots.len() {
                return Err(ServeError::InvalidSample {
                    // chaos-lint: allow(R6) — constructs a tick-rejection error; valid ticks never take these branches
                    detail: format!(
                        "machine_id {} outside fleet of {}",
                        sample.machine_id,
                        self.slots.len()
                    ),
                });
            }
            if seen[sample.machine_id] {
                return Err(ServeError::InvalidSample {
                    // chaos-lint: allow(R6) — constructs a tick-rejection error; valid ticks never take these branches
                    detail: format!("machine_id {} appears twice in tick", sample.machine_id),
                });
            }
            seen[sample.machine_id] = true;
            if sample.counters.len() != self.width {
                return Err(ServeError::InvalidSample {
                    // chaos-lint: allow(R6) — constructs a tick-rejection error; valid ticks never take these branches
                    detail: format!(
                        "machine {}: counter row has {} values, catalog width is {}",
                        sample.machine_id,
                        sample.counters.len(),
                        self.width
                    ),
                });
            }
            if let Some(bad) = sample.counters.iter().find(|v| !v.is_finite()) {
                return Err(ServeError::InvalidSample {
                    // chaos-lint: allow(R6) — constructs a tick-rejection error; valid ticks never take these branches
                    detail: format!(
                        "machine {}: non-finite counter value {bad} (mark it with counter_ok instead)",
                        sample.machine_id
                    ),
                });
            }
            if let Some(p) = sample.power_w {
                if !p.is_finite() {
                    return Err(ServeError::InvalidSample {
                        // chaos-lint: allow(R6) — constructs a tick-rejection error; valid ticks never take these branches
                        detail: format!(
                            "machine {}: non-finite power_w {p} (omit the field instead)",
                            sample.machine_id
                        ),
                    });
                }
            }
            if let Some(mask) = &sample.counter_ok {
                if mask.len() != self.width {
                    return Err(ServeError::InvalidSample {
                        // chaos-lint: allow(R6) — constructs a tick-rejection error; valid ticks never take these branches
                        detail: format!(
                            "machine {}: counter_ok has {} entries, catalog width is {}",
                            sample.machine_id,
                            mask.len(),
                            self.width
                        ),
                    });
                }
            }
        }
        for sample in &tick.machines {
            // chaos-lint: allow(R6) — staging takes ownership of the wire sample; one copy per machine-tick is the ingest cost
            self.slots[sample.machine_id].pending = Some(sample.clone());
        }
        Ok(())
    }

    /// Ingests one tick: validate + stage, parallel advance, serial
    /// machine-order composition. Returns the cluster-composed result.
    ///
    /// # Errors
    ///
    /// Validation errors ([`ServeError::OutOfOrder`],
    /// [`ServeError::MachineCountMismatch`],
    /// [`ServeError::InvalidSample`]) reject the tick without touching
    /// any slot; an advance-phase failure surfaces as the slot's error.
    pub fn ingest_tick(&mut self, tick: &WireTick) -> Result<TickResult, ServeError> {
        self.stage(tick)?;

        let advanced: Vec<Result<SlotAdvance, ServeError>> = self
            .exec
            .par_map_mut(&mut self.slots, |slot| slot.advance());

        // Serial composition in machine order: Eq. 5 summation and the
        // worst-tier max are order-sensitive, so they never run inside
        // the parallel phase.
        let mut cluster_power_w = 0.0;
        let mut worst_tier = EstimateTier::Full;
        let mut active_machines = 0usize;
        let mut refits = 0u64;
        for result in advanced {
            let adv = result?;
            refits += adv.refits;
            if let Some(sample) = adv.sample {
                cluster_power_w += sample.power_w;
                worst_tier = worst_tier.max(sample.tier);
                active_machines += 1;
            }
        }
        let result = TickResult {
            t: tick.t,
            cluster_power_w,
            // chaos-lint: allow(R6) — wire-facing result field; one small string per tick response
            worst_tier: worst_tier.label().to_string(),
            active_machines,
            refits,
        };
        self.t_next += 1;
        Ok(result)
    }

    /// The next second the fleet will accept.
    pub fn t_next(&self) -> u64 {
        self.t_next
    }

    /// The fleet specification this instance models.
    pub fn spec(&self) -> FleetSpec {
        self.spec
    }

    /// Counter-row width every sample must carry.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Fleet size.
    pub fn machines(&self) -> usize {
        self.slots.len()
    }

    /// Machines currently inside the composition.
    pub fn active_count(&self) -> usize {
        self.slots.iter().map(|s| s.engine.active_count()).sum()
    }

    /// One machine's serving status.
    pub fn machine_status(&self, id: usize) -> Option<MachineStatus> {
        self.slots.get(id).map(|slot| slot.status(id))
    }

    /// Every machine's serving status, machine order.
    pub fn statuses(&self) -> Vec<MachineStatus> {
        self.slots
            .iter()
            .enumerate()
            .map(|(id, slot)| slot.status(id))
            .collect()
    }
}
