//! Hand-rolled HTTP/1.1 framing — the only wire dependency the server
//! has is `std`.
//!
//! The parser is deliberately minimal: request line, headers, and a
//! `Content-Length`-delimited body. That covers every client the wire
//! protocol (`docs/PROTOCOL.md`) admits — chunked transfer encoding,
//! multipart bodies, and HTTP/2 are out of scope by design. Every
//! malformed input maps to a typed [`HttpError`] so the server can
//! answer with a structured 4xx instead of panicking or hanging; the
//! edge-case suite (`tests/http_edge_cases.rs`) pins that behavior.
//!
//! Limits are hard: header bytes are capped at [`MAX_HEADER_BYTES`]
//! and bodies at the caller-supplied maximum, checked *before* any
//! allocation happens, so an adversarial `Content-Length` cannot
//! balloon memory.

use std::io::{BufRead, Read, Write};

/// Default cap on request body size (4 MiB — a 5000-machine tick of
/// counter JSON is well under 2 MiB).
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Cap on a single header line (and the request line), bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Cap on the number of header lines in one request.
pub const MAX_HEADER_LINES: usize = 100;

/// Why a request could not be framed. Each variant maps to one wire
/// error code (see `docs/PROTOCOL.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line was not `METHOD PATH VERSION`.
    BadRequestLine {
        /// The offending line.
        line: String,
    },
    /// The HTTP version is not 1.0 or 1.1.
    BadVersion {
        /// The version token received.
        got: String,
    },
    /// A header line had no `name: value` shape.
    BadHeader {
        /// The offending line.
        line: String,
    },
    /// `Content-Length` was present but not a base-10 integer.
    BadContentLength {
        /// The value received.
        got: String,
    },
    /// The declared body size exceeds the configured cap.
    BodyTooLarge {
        /// Bytes the request declared.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A header line (or the header block) exceeds the configured cap.
    HeadersTooLarge {
        /// The configured cap (bytes for lines, count for the block).
        limit: usize,
    },
    /// The connection ended mid-request.
    Truncated {
        /// What was being read when the stream ended.
        context: String,
    },
    /// A transport-level read failure.
    Io {
        /// The failed operation and OS error.
        context: String,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine { line } => {
                write!(f, "bad request line {line:?}")
            }
            HttpError::BadVersion { got } => {
                write!(f, "unsupported HTTP version {got:?} (need 1.0 or 1.1)")
            }
            HttpError::BadHeader { line } => write!(f, "bad header line {line:?}"),
            HttpError::BadContentLength { got } => {
                write!(f, "bad Content-Length {got:?}")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds cap {limit}")
            }
            HttpError::HeadersTooLarge { limit } => {
                write!(f, "headers exceed cap {limit}")
            }
            HttpError::Truncated { context } => {
                write!(f, "connection ended mid-request while reading {context}")
            }
            HttpError::Io { context } => write!(f, "transport error: {context}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One framed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, as received (e.g. `GET`).
    pub method: String,
    /// Request path, as received (e.g. `/v1/power`).
    pub path: String,
    /// Raw body bytes (`Content-Length` delimited; empty if absent).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

/// One response. The server speaks JSON exclusively, so the content
/// type is fixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }

    /// The standard reason phrase for the status codes this server
    /// emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body. The byte sequence is
    /// a pure function of `(status, body)` — the determinism contract
    /// covers entire response byte streams, not just bodies.
    pub fn to_bytes(&self) -> Vec<u8> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            self.status,
            Response::reason(self.status),
            self.body.len()
        );
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the serialized response to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.to_bytes())
    }
}

/// Reads one CRLF- (or LF-) terminated line, capped at `cap` bytes.
/// `Ok(None)` means clean EOF before any byte of the line.
fn read_line_capped<R: BufRead>(r: &mut R, cap: usize) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut limited = r.by_ref().take(cap as u64 + 1);
    let n = limited
        .read_until(b'\n', &mut buf)
        .map_err(|e| HttpError::Io {
            context: format!("read header line: {e}"),
        })?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if buf.len() > cap {
            return Err(HttpError::HeadersTooLarge { limit: cap });
        }
        return Err(HttpError::Truncated {
            context: "header line (no terminator before EOF)".to_string(),
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf.clone())
        .map(Some)
        .map_err(|_| HttpError::BadHeader {
            line: String::from_utf8_lossy(&buf).into_owned(),
        })
}

/// Reads and frames one request from `r`.
///
/// `Ok(None)` is a clean end of connection (EOF before any request
/// byte); every mid-request failure is a typed [`HttpError`].
///
/// # Errors
///
/// See [`HttpError`] — one variant per framing failure.
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line_capped(r, MAX_HEADER_BYTES)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine { line: line.clone() });
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadVersion {
            got: version.to_string(),
        });
    }
    let mut close = version == "HTTP/1.0";
    let mut content_length = 0usize;
    let mut header_lines = 0usize;
    loop {
        let Some(header) = read_line_capped(r, MAX_HEADER_BYTES)? else {
            return Err(HttpError::Truncated {
                context: "headers (EOF before blank line)".to_string(),
            });
        };
        if header.is_empty() {
            break;
        }
        header_lines += 1;
        if header_lines > MAX_HEADER_LINES {
            return Err(HttpError::HeadersTooLarge {
                limit: MAX_HEADER_LINES,
            });
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::BadHeader {
                line: header.clone(),
            });
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length =
                    value
                        .parse::<usize>()
                        .map_err(|_| HttpError::BadContentLength {
                            got: value.to_string(),
                        })?;
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::Truncated {
                context: format!("body (expected {content_length} bytes)"),
            }
        } else {
            HttpError::Io {
                context: format!("read body: {e}"),
            }
        }
    })?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        close,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes()), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn frames_a_simple_get() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
        assert!(!req.close);
    }

    #[test]
    fn frames_a_post_with_body() {
        let req = parse("POST /v1/ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn http10_defaults_to_close_and_11_to_keepalive() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(req.close);
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.close);
    }

    #[test]
    fn response_bytes_are_deterministic() {
        let a = Response::json(200, "{\"x\":1}").to_bytes();
        let b = Response::json(200, "{\"x\":1}").to_bytes();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }
}
