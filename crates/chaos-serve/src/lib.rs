//! chaos-serve — the fleet-scale power-estimation server.
//!
//! Turns the `chaos-stream` online-inference engine into a long-lived
//! network service: clients `POST` per-second counter samples for a
//! whole fleet, the server shards one [`StreamEngine`] per machine
//! across worker threads under an [`ExecPolicy`], composes cluster
//! power serially in machine order (Eq. 5 of the CHAOS paper), and
//! answers over a dependency-free HTTP/1.1 + JSON wire protocol.
//!
//! The protocol is documented normatively in `docs/PROTOCOL.md` and
//! the operator's guide in `docs/OPERATIONS.md`. Two contracts carry
//! over from the rest of the workspace:
//!
//! * **Determinism** — the same sample log produces bit-identical
//!   response bodies whatever `CHAOS_THREADS` is set to, because the
//!   only parallel phase operates on disjoint per-machine slots
//!   (`tests/determinism.rs` pins this).
//! * **Crash safety** — the full serving state snapshots into a
//!   versioned `CHAOSRVE` envelope ([`snapshot`]); a server killed and
//!   restored continues byte-identically (`tests/endpoints.rs` and the
//!   CI smoke drill pin this).
//!
//! Module map:
//!
//! * [`http`] — hand-rolled HTTP/1.1 framing over `std` I/O traits.
//! * [`protocol`] — wire request/response types and [`ServeError`].
//! * [`fleet`] — per-machine engine slots and the sharded tick path.
//! * [`snapshot`] — the `CHAOSRVE` snapshot envelope and codec.
//! * [`server`] — the request router and checkpoint cadence.
//! * [`bootstrap`] — deterministic training, first boot, and restore.
//!
//! [`StreamEngine`]: chaos_stream::StreamEngine
//! [`ExecPolicy`]: chaos_stats::ExecPolicy

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bootstrap;
pub mod fleet;
pub mod http;
pub mod protocol;
pub mod replay;
pub mod server;
pub mod snapshot;

pub use bootstrap::{ServeOptions, BASELINE_DRE};
pub use fleet::Fleet;
pub use http::{Request, Response};
pub use protocol::{ServeError, TickResult, WireSample, WireTick, PROTOCOL};
pub use replay::{replay_file, ReplayError, ReplayStats};
pub use server::Server;

// Re-exported so binaries and tests configure the server without
// depending on chaos-stream directly.
pub use chaos_stream::StreamConfig;
