//! `chaos-serve` — the fleet-scale power-estimation server.
//!
//! Deployment knobs arrive as CLI flags (see `--help`); the only
//! environment variables the process reads are the two sanctioned
//! ones: `CHAOS_THREADS` (via [`ExecPolicy::from_env`]) and
//! `CHAOS_OBS` (via [`chaos_obs::init_from_env`]). Operator guidance
//! lives in `docs/OPERATIONS.md`.

use chaos_serve::bootstrap::ServeOptions;
use chaos_serve::http::{self, DEFAULT_MAX_BODY_BYTES};
use chaos_serve::{Server, StreamConfig};
use chaos_sim::{FleetSpec, Platform};
use chaos_stats::ExecPolicy;
use chaos_stream::Checkpointer;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::{Arc, Mutex, PoisonError};

const USAGE: &str = "chaos-serve: fleet-scale power-estimation server

USAGE:
    chaos-serve [FLAGS]

FLAGS:
    --addr <host:port>             listen address   [default: 127.0.0.1:7878]
    --platform <name>              fleet platform   [default: Core2]
                                   (Atom, Core2, Athlon, Opteron, XeonSATA, XeonSAS)
    --machines <n>                 fleet size       [default: 8]
    --seed <n>                     calibration seed [default: 42]
    --profile <fast|paper>         stream config    [default: fast]
    --history <n>                  power-history ring capacity [default: 256]
    --max-body-bytes <n>           request body cap [default: 4194304]
    --checkpoint <path>            enable snapshots at <path> (restored on boot)
    --checkpoint-every-ticks <n>   snapshot cadence [default: 60; 0 = manual only]
    --replay <path>                replay a CHAOSCOL trace file through ingest
                                   before serving (machine count and width must
                                   match the fleet; seconds already covered by
                                   a restored checkpoint are skipped)
    --help                         print this text

ENVIRONMENT:
    CHAOS_THREADS   shard parallelism: auto = all cores (default) | serial | N
    CHAOS_OBS       observability level: off (default) | summary | full";

struct Cli {
    addr: String,
    fleet: FleetSpec,
    profile: StreamConfig,
    history: usize,
    max_body_bytes: usize,
    checkpoint: Option<String>,
    checkpoint_every_ticks: u64,
    replay: Option<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        addr: "127.0.0.1:7878".to_string(),
        fleet: FleetSpec::new(Platform::Core2, 8, 42),
        profile: StreamConfig::fast(),
        history: 256,
        max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        checkpoint: None,
        checkpoint_every_ticks: 60,
        replay: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--addr" => cli.addr = value("--addr")?,
            "--platform" => {
                cli.fleet.platform = value("--platform")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--machines" => {
                cli.fleet.machines = value("--machines")?
                    .parse()
                    .map_err(|e| format!("--machines: {e}"))?;
            }
            "--seed" => {
                cli.fleet.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--profile" => {
                cli.profile = match value("--profile")?.as_str() {
                    "fast" => StreamConfig::fast(),
                    "paper" => StreamConfig::paper(),
                    other => return Err(format!("--profile: unknown profile {other:?}")),
                };
            }
            "--history" => {
                cli.history = value("--history")?
                    .parse()
                    .map_err(|e| format!("--history: {e}"))?;
            }
            "--max-body-bytes" => {
                cli.max_body_bytes = value("--max-body-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-body-bytes: {e}"))?;
            }
            "--checkpoint" => cli.checkpoint = Some(value("--checkpoint")?),
            "--replay" => cli.replay = Some(value("--replay")?),
            "--checkpoint-every-ticks" => {
                cli.checkpoint_every_ticks = value("--checkpoint-every-ticks")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every-ticks: {e}"))?;
            }
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if cli.fleet.machines == 0 {
        return Err("--machines must be at least 1".to_string());
    }
    Ok(cli)
}

fn serve_connection(stream: TcpStream, server: &Arc<Mutex<Server>>, max_body: usize) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chaos-serve: clone connection: {e}");
            return;
        }
    });
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, max_body) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let resp = {
                    let mut guard = server.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.handle(&req)
                };
                if resp.write_to(&mut writer).is_err() {
                    return;
                }
                if req.close {
                    return;
                }
            }
            Err(err) => {
                // Answer with the structured error body, then close:
                // after a framing failure the stream offset is
                // unknowable.
                let resp = {
                    let mut guard = server.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.framing_error_response(err)
                };
                let _ = resp.write_to(&mut writer);
                return;
            }
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args)?;
    let exec = ExecPolicy::from_env();
    chaos_obs::init_from_env("chaos-serve");

    let opts = ServeOptions {
        fleet: cli.fleet,
        stream: cli.profile,
        history_cap: cli.history,
        max_body_bytes: cli.max_body_bytes,
    };
    let checkpointer = cli
        .checkpoint
        .as_ref()
        .map(|path| Checkpointer::new(path, 0));

    eprintln!(
        "chaos-serve: training estimator for {} x{} (seed {})...",
        cli.fleet.platform.name(),
        cli.fleet.machines,
        cli.fleet.seed
    );
    // Restore when a snapshot file exists; a *damaged* snapshot fails
    // the boot loudly rather than silently retraining from scratch.
    let server = match &checkpointer {
        Some(c) if c.path().exists() => {
            let bytes = c.load().map_err(|e| format!("load snapshot: {e}"))?;
            eprintln!("chaos-serve: restoring from {}", c.path().display());
            Server::restore(
                opts,
                exec,
                checkpointer.clone(),
                cli.checkpoint_every_ticks,
                &bytes,
            )
            .map_err(|e| format!("restore: {e}"))?
        }
        _ => Server::new(opts, exec, checkpointer.clone(), cli.checkpoint_every_ticks)
            .map_err(|e| format!("boot: {e}"))?,
    };
    let mut server = server;
    if let Some(path) = &cli.replay {
        eprintln!("chaos-serve: replaying trace {path}...");
        let stats = chaos_serve::replay::replay_file(&mut server, path)
            .map_err(|e| format!("replay {path}: {e}"))?;
        eprintln!(
            "chaos-serve: replayed {} ticks, skipped {} already-applied ({} samples, \
             {} counters sanitized, {} unmetered machine-seconds)",
            stats.ticks,
            stats.skipped_ticks,
            stats.samples,
            stats.sanitized_counters,
            stats.unmetered_seconds
        );
    }
    let t_next = server.t_next();
    let server = Arc::new(Mutex::new(server));

    let listener = TcpListener::bind(&cli.addr).map_err(|e| format!("bind {}: {e}", cli.addr))?;
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| cli.addr.clone());
    eprintln!("chaos-serve: listening on {local} (t_next = {t_next})");

    for incoming in listener.incoming() {
        match incoming {
            Ok(stream) => {
                let server = Arc::clone(&server);
                let max_body = cli.max_body_bytes;
                std::thread::spawn(move || serve_connection(stream, &server, max_body));
            }
            Err(e) => eprintln!("chaos-serve: accept: {e}"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
