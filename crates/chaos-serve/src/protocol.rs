//! The `chaos-serve/1` wire protocol: request/response schemas and the
//! typed error space.
//!
//! Everything on the wire is JSON over HTTP/1.1. The normative
//! description — endpoint table, schemas, error codes, versioning and
//! the determinism contract — lives in `docs/PROTOCOL.md`; the types
//! here are its single implementation. Two properties carry the
//! determinism contract down to bytes:
//!
//! * Response structs serialize with fixed field order (serde derives
//!   over plain structs) and every map is a [`BTreeMap`], so the same
//!   state always renders the same bytes.
//! * JSON cannot carry NaN or infinity, so the wire admits only finite
//!   numbers; sample *invalidity* travels as explicit masks
//!   ([`WireSample::counter_ok`], [`WireSample::meter_ok`],
//!   [`WireSample::alive`]) rather than as sentinel values.

use crate::http::HttpError;
use chaos_sim::FleetSpec;
use chaos_stream::{SnapshotError, StreamError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Protocol identifier echoed in every response body.
pub const PROTOCOL: &str = "chaos-serve/1";

fn default_true() -> bool {
    true
}

/// One machine's observation for one second, as ingested.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct WireSample {
    /// Machine id within the fleet (`0..machines`).
    pub machine_id: usize,
    /// Counter row for this second — one finite value per catalog
    /// counter, in catalog order.
    pub counters: Vec<f64>,
    /// Metered wall power, watts, when a trusted meter reading exists.
    /// Absent or `null` means "no usable meter this second" (the model
    /// still predicts; it just cannot train or drift-score).
    #[serde(default)]
    pub power_w: Option<f64>,
    /// Per-counter validity; absent means every counter is trustworthy.
    #[serde(default)]
    pub counter_ok: Option<Vec<bool>>,
    /// Whether the meter reading is trustworthy (default true).
    #[serde(default = "default_true")]
    pub meter_ok: bool,
    /// Whether the machine was alive this second (default true).
    #[serde(default = "default_true")]
    pub alive: bool,
}

/// One cluster-second of samples: every fleet machine exactly once.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct WireTick {
    /// Absolute second this tick describes. Ticks must arrive strictly
    /// in order: the first tick is `t = 0`, every subsequent tick
    /// increments by one.
    pub t: u64,
    /// Per-machine samples; any order, each machine exactly once.
    pub machines: Vec<WireSample>,
}

/// `POST /v1/ingest` request body.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct IngestRequest {
    /// Ticks to apply, in order.
    pub ticks: Vec<WireTick>,
}

/// The cluster-composed result of one tick (Eq. 5 over present
/// machines, machine order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickResult {
    /// The tick's absolute second.
    pub t: u64,
    /// Summed cluster power, watts, over present machines.
    pub cluster_power_w: f64,
    /// Least capable estimate tier any present machine needed.
    pub worst_tier: String,
    /// Machines that contributed to the composition.
    pub active_machines: usize,
    /// Refits applied across the fleet during this tick.
    pub refits: u64,
}

/// `POST /v1/ingest` response body.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IngestResponse {
    /// Protocol identifier (`chaos-serve/1`).
    pub protocol: String,
    /// Per-tick results, in the order the ticks were applied.
    pub results: Vec<TickResult>,
    /// The next second the server will accept.
    pub t_next: u64,
}

/// `GET /v1/healthz` response body.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HealthzResponse {
    /// Protocol identifier.
    pub protocol: String,
    /// Always `"ok"` when the server can answer at all.
    pub status: String,
    /// The next second the server will accept.
    pub t_next: u64,
    /// Fleet size.
    pub machines: usize,
    /// Machines currently inside the composition.
    pub active_machines: usize,
}

/// Checkpoint configuration echoed by `GET /v1/config`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CheckpointInfo {
    /// Snapshot path.
    pub path: String,
    /// Cadence in ticks between automatic snapshots.
    pub every_ticks: u64,
}

/// `GET /v1/config` response body.
///
/// This endpoint reports *deployment* configuration — including the
/// execution policy — and is therefore the one endpoint excluded from
/// the shard-count determinism contract (see `docs/PROTOCOL.md`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConfigResponse {
    /// Protocol identifier.
    pub protocol: String,
    /// The fleet this server models.
    pub fleet: FleetSpec,
    /// Counter-row width every sample must carry.
    pub width: usize,
    /// Sliding-window capacity per machine, seconds.
    pub window_s: usize,
    /// Minimum window occupancy before refits are attempted.
    pub min_refit_samples: usize,
    /// Execution policy label (`"serial"` or `"parallel:N"`).
    pub exec: String,
    /// Request body cap, bytes.
    pub max_body_bytes: usize,
    /// Power-history ring capacity, ticks.
    pub history_cap: usize,
    /// Checkpoint persistence, when configured.
    pub checkpoint: Option<CheckpointInfo>,
}

/// `GET /v1/power` response body.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerResponse {
    /// Protocol identifier.
    pub protocol: String,
    /// The next second the server will accept.
    pub t_next: u64,
    /// The most recent tick result, once any tick has been ingested.
    pub latest: Option<TickResult>,
    /// Bounded ring of recent tick results, oldest first.
    pub history: Vec<TickResult>,
}

/// A machine's most recent emitted sample.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LastSample {
    /// Absolute second of the sample.
    pub t: u64,
    /// Estimated power, watts.
    pub power_w: f64,
    /// Estimate tier label (`full`/`reduced`/`strawman`/`constant`).
    pub tier: String,
    /// Whether a window-adapted model produced the estimate.
    pub adapted: bool,
    /// Features imputation bridged this second.
    pub imputed: usize,
    /// Rolling DRE after this second, once the drift window is warm.
    pub rolling_dre: Option<f64>,
}

/// One machine's serving status.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachineStatus {
    /// Machine id within the fleet.
    pub machine_id: usize,
    /// Supervision state label (`healthy`/`ramping`/`quarantined`).
    pub health: String,
    /// Samples ingested for this machine.
    pub samples: u64,
    /// The machine's most recent emitted sample, if it produced one
    /// (quarantined machines produce none).
    pub last: Option<LastSample>,
    /// Applied-refit tallies by tier label (failed ladders under
    /// `"none"`).
    pub refit_counts: BTreeMap<String, u64>,
    /// Absolute second of the machine's most recent refit attempt.
    pub last_refit_t: Option<u64>,
}

/// `GET /v1/machines` response body.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachinesResponse {
    /// Protocol identifier.
    pub protocol: String,
    /// Per-machine statuses, machine order.
    pub machines: Vec<MachineStatus>,
}

/// `GET /v1/machines/<id>` response body.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachineResponse {
    /// Protocol identifier.
    pub protocol: String,
    /// The requested machine's status.
    pub machine: MachineStatus,
}

/// `GET /v1/stats` response body.
///
/// These counters are the server's *own* deterministic tallies,
/// mirrored into `chaos-obs` — the response is bit-identical whatever
/// `CHAOS_OBS` level the process runs at.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatsResponse {
    /// Protocol identifier.
    pub protocol: String,
    /// Monotonic counters since process start (`serve.*` namespace).
    pub counters: BTreeMap<String, u64>,
}

/// `POST /v1/snapshot` response body.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SnapshotResponse {
    /// Protocol identifier.
    pub protocol: String,
    /// Always `"persisted"` on success.
    pub status: String,
    /// Snapshot size, bytes.
    pub bytes: u64,
    /// The cursor the snapshot captures.
    pub t_next: u64,
}

/// Error response body, shared by every endpoint.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ErrorResponse {
    /// Protocol identifier.
    pub protocol: String,
    /// Stable machine-readable error code (see `docs/PROTOCOL.md`).
    pub error: String,
    /// Human-readable detail. Free-form; never parse it.
    pub detail: String,
}

/// Everything that can go wrong serving a request, each with a stable
/// wire code and HTTP status.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Request framing failed.
    Http(HttpError),
    /// No such endpoint.
    UnknownEndpoint {
        /// The path requested.
        path: String,
    },
    /// The endpoint exists but not for this method.
    MethodNotAllowed {
        /// The method used.
        method: String,
        /// The path requested.
        path: String,
    },
    /// The body was not valid JSON for the endpoint's schema.
    MalformedJson {
        /// Parser detail.
        detail: String,
    },
    /// A sample failed validation (id range, duplicate, row width,
    /// non-finite value, mask shape).
    InvalidSample {
        /// What was wrong.
        detail: String,
    },
    /// A tick arrived out of order.
    OutOfOrder {
        /// The second the server expected.
        expected: u64,
        /// The second the tick carried.
        got: u64,
    },
    /// A tick did not cover the fleet exactly once.
    MachineCountMismatch {
        /// Fleet size.
        expected: usize,
        /// Samples in the tick.
        got: usize,
    },
    /// `GET /v1/machines/<id>` for an id outside the fleet.
    UnknownMachine {
        /// The id requested.
        id: usize,
    },
    /// `POST /v1/snapshot` on a server started without a checkpoint
    /// path.
    CheckpointDisabled,
    /// Snapshot encode/decode/persist failure.
    Snapshot(SnapshotError),
    /// A streaming-engine error that validation should have made
    /// impossible.
    Stream(StreamError),
    /// Any other internal failure.
    Internal {
        /// What failed.
        detail: String,
    },
}

impl ServeError {
    /// The stable wire error code.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Http(e) => match e {
                HttpError::BadRequestLine { .. } => "malformed_request",
                HttpError::BadVersion { .. } => "bad_version",
                HttpError::BadHeader { .. } => "malformed_request",
                HttpError::BadContentLength { .. } => "bad_content_length",
                HttpError::BodyTooLarge { .. } => "body_too_large",
                HttpError::HeadersTooLarge { .. } => "headers_too_large",
                HttpError::Truncated { .. } => "truncated_request",
                HttpError::Io { .. } => "transport_error",
            },
            ServeError::UnknownEndpoint { .. } => "unknown_endpoint",
            ServeError::MethodNotAllowed { .. } => "method_not_allowed",
            ServeError::MalformedJson { .. } => "malformed_json",
            ServeError::InvalidSample { .. } => "invalid_sample",
            ServeError::OutOfOrder { .. } => "out_of_order",
            ServeError::MachineCountMismatch { .. } => "machine_count_mismatch",
            ServeError::UnknownMachine { .. } => "unknown_machine",
            ServeError::CheckpointDisabled => "checkpoint_disabled",
            ServeError::Snapshot(_) => "snapshot_failed",
            ServeError::Stream(_) => "stream_error",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// The HTTP status the error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Http(e) => match e {
                HttpError::BodyTooLarge { .. } => 413,
                HttpError::HeadersTooLarge { .. } => 431,
                _ => 400,
            },
            ServeError::UnknownEndpoint { .. } | ServeError::UnknownMachine { .. } => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::MalformedJson { .. } => 400,
            ServeError::InvalidSample { .. } => 422,
            ServeError::OutOfOrder { .. } | ServeError::MachineCountMismatch { .. } => 409,
            ServeError::CheckpointDisabled => 409,
            ServeError::Snapshot(_) | ServeError::Stream(_) | ServeError::Internal { .. } => 500,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Http(e) => write!(f, "{e}"),
            ServeError::UnknownEndpoint { path } => write!(f, "no endpoint at {path}"),
            ServeError::MethodNotAllowed { method, path } => {
                write!(f, "{method} not allowed on {path}")
            }
            ServeError::MalformedJson { detail } => write!(f, "malformed JSON body: {detail}"),
            ServeError::InvalidSample { detail } => write!(f, "invalid sample: {detail}"),
            ServeError::OutOfOrder { expected, got } => write!(
                f,
                "tick out of order: expected second {expected}, got {got}"
            ),
            ServeError::MachineCountMismatch { expected, got } => write!(
                f,
                "tick must carry each of the {expected} fleet machines exactly once, got {got} samples"
            ),
            ServeError::UnknownMachine { id } => write!(f, "no machine {id} in the fleet"),
            ServeError::CheckpointDisabled => {
                write!(f, "server started without --checkpoint; snapshots disabled")
            }
            ServeError::Snapshot(e) => write!(f, "{e}"),
            ServeError::Stream(e) => write!(f, "{e}"),
            ServeError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Http(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            ServeError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HttpError> for ServeError {
    fn from(e: HttpError) -> Self {
        ServeError::Http(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_error_has_a_code_and_a_4xx_or_5xx_status() {
        let errors = vec![
            ServeError::Http(HttpError::BodyTooLarge {
                declared: 10,
                limit: 5,
            }),
            ServeError::Http(HttpError::Truncated {
                context: "body".into(),
            }),
            ServeError::Http(HttpError::BadContentLength { got: "x".into() }),
            ServeError::UnknownEndpoint {
                path: "/nope".into(),
            },
            ServeError::MethodNotAllowed {
                method: "PUT".into(),
                path: "/v1/power".into(),
            },
            ServeError::MalformedJson { detail: "d".into() },
            ServeError::InvalidSample { detail: "d".into() },
            ServeError::OutOfOrder {
                expected: 1,
                got: 5,
            },
            ServeError::MachineCountMismatch {
                expected: 4,
                got: 3,
            },
            ServeError::UnknownMachine { id: 99 },
            ServeError::CheckpointDisabled,
            ServeError::Internal { detail: "d".into() },
        ];
        for e in errors {
            assert!(!e.code().is_empty());
            assert!((400..=599).contains(&e.status()), "{e}: {}", e.status());
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn http_error_statuses_are_specific() {
        let too_large = ServeError::Http(HttpError::BodyTooLarge {
            declared: 10,
            limit: 5,
        });
        assert_eq!(too_large.status(), 413);
        assert_eq!(too_large.code(), "body_too_large");
        let headers = ServeError::Http(HttpError::HeadersTooLarge { limit: 100 });
        assert_eq!(headers.status(), 431);
        assert_eq!(ServeError::UnknownMachine { id: 1 }.status(), 404);
        assert_eq!(
            ServeError::OutOfOrder {
                expected: 0,
                got: 2
            }
            .status(),
            409
        );
    }
}
