//! `--replay`: bootstrap a server's stream state from a CHAOSCOL trace.
//!
//! Operators restart estimation servers; fleets do not restart their
//! history. Replay reads a columnar trace file (written by
//! `chaos_counters::export_trace_path` or the collection pipeline),
//! converts each stored second into the exact [`WireTick`] a live
//! client would have POSTed to `/v1/ingest`, and routes it through
//! [`Server::apply_tick`] — so a replayed server is bit-identical, tick
//! counters and power history included, to one that ingested the same
//! seconds over the wire.
//!
//! Stored traces carry fault artifacts the wire protocol forbids
//! (non-finite counter values, NaN meter readings); replay translates
//! them into the protocol's own vocabulary instead of rejecting the
//! trace: a non-finite counter becomes `0.0` with `counter_ok = false`
//! for that position, and `power_w` is only present when the stored
//! meter reading is finite, trusted, and the machine was alive.

use crate::protocol::{WireSample, WireTick};
use crate::server::Server;
use chaos_trace::{TraceError, TraceReader};
use std::fmt;
use std::path::Path;

/// Errors from replay bootstrap: trace-store failures, shape mismatches
/// between the trace and the fleet, and tick rejections.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplayError {
    /// The trace file is unreadable or corrupt.
    Trace(TraceError),
    /// The trace does not fit the fleet this server models.
    Shape {
        /// What disagreed.
        context: String,
    },
    /// The server rejected a replayed tick.
    Rejected {
        /// Second whose tick was rejected.
        t: u64,
        /// The server's error, rendered.
        detail: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "replay: {e}"),
            ReplayError::Shape { context } => write!(f, "replay: {context}"),
            ReplayError::Rejected { t, detail } => {
                write!(f, "replay: tick {t} rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

/// What a replay did, for the boot log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Ticks applied.
    pub ticks: u64,
    /// Machine-samples applied.
    pub samples: u64,
    /// Counter values sanitized to `0.0` + `counter_ok = false`.
    pub sanitized_counters: u64,
    /// Machine-seconds replayed without a usable meter reading.
    pub unmetered_seconds: u64,
    /// Trace seconds below the server's cursor, skipped (a restored
    /// server replaying only the tail of a trace).
    pub skipped_ticks: u64,
}

/// Replays a CHAOSCOL trace file into `server`, tick by tick, starting
/// at the server's current cursor: seconds the server already applied
/// (a restored checkpoint) are skipped, so replay doubles as the
/// catch-up path after a crash.
///
/// The trace's machine count and counter width must match the fleet's;
/// trace machines map to fleet slots by position. Replay streams the
/// file block by block — working memory stays bounded regardless of
/// trace length.
///
/// # Errors
///
/// [`ReplayError::Trace`] for file corruption, [`ReplayError::Shape`]
/// for fleet mismatches, [`ReplayError::Rejected`] if the server
/// refuses a tick (e.g. the cursor was not where the trace starts).
pub fn replay_file(
    server: &mut Server,
    path: impl AsRef<Path>,
) -> Result<ReplayStats, ReplayError> {
    let reader = TraceReader::open_path(path.as_ref())?;
    let fleet_machines = server.machine_count();
    let width = server.width();
    if reader.machines() != fleet_machines {
        return Err(ReplayError::Shape {
            context: format!(
                "trace has {} machines, fleet has {fleet_machines}",
                reader.machines()
            ),
        });
    }
    for (i, m) in reader.meta().machines.iter().enumerate() {
        if m.width != width {
            return Err(ReplayError::Shape {
                context: format!(
                    "trace machine {i} has width {}, catalog width is {width}",
                    m.width
                ),
            });
        }
    }

    let mut stats = ReplayStats {
        ticks: 0,
        samples: 0,
        sanitized_counters: 0,
        unmetered_seconds: 0,
        skipped_ticks: 0,
    };
    let start = server.t_next();
    let mut stream = reader.stream();
    while stream.advance()? {
        let Some(second) = stream.second() else {
            break;
        };
        if second.t < start {
            stats.skipped_ticks += 1;
            continue;
        }
        let mut machines = Vec::with_capacity(fleet_machines);
        for i in 0..second.machines() {
            let Some(view) = second.machine(i) else {
                continue;
            };
            let mut counters = Vec::with_capacity(width);
            let mut counter_ok = vec![true; width];
            let mut any_bad = false;
            for (k, &v) in view.counters.iter().enumerate() {
                let trusted = view
                    .counter_ok
                    .map_or(true, |m| m.get(k).copied().unwrap_or(false));
                if v.is_finite() && trusted {
                    counters.push(v);
                } else {
                    counters.push(if v.is_finite() { v } else { 0.0 });
                    counter_ok[k] = false;
                    any_bad = true;
                    if !v.is_finite() {
                        stats.sanitized_counters += 1;
                    }
                }
            }
            let metered = view.meter_ok && view.alive && view.measured_power_w.is_finite();
            if !metered {
                stats.unmetered_seconds += 1;
            }
            machines.push(WireSample {
                machine_id: i,
                counters,
                power_w: metered.then_some(view.measured_power_w),
                counter_ok: any_bad.then_some(counter_ok),
                meter_ok: view.meter_ok && view.measured_power_w.is_finite(),
                alive: view.alive,
            });
        }
        let tick = WireTick {
            t: second.t,
            machines,
        };
        server
            .apply_tick(&tick)
            .map_err(|e| ReplayError::Rejected {
                t: second.t,
                detail: e.to_string(),
            })?;
        stats.ticks += 1;
        stats.samples += fleet_machines as u64;
    }
    Ok(stats)
}
