//! The request handler: routing, endpoint logic, and checkpoint
//! cadence.
//!
//! [`Server::handle`] is a pure-ish state machine — one framed
//! [`Request`] in, one [`Response`] out — with no transport code, so
//! the integration tests drive it directly and the TCP loop in
//! `main.rs` stays a thin shell. Everything the determinism contract
//! covers flows through here: response bodies are rendered from
//! fixed-field-order structs, counters live in the server's own
//! [`BTreeMap`] (mirrored into `chaos-obs`, never read back from it),
//! and the only parallelism is inside [`Fleet::ingest_tick`].

use crate::bootstrap::{self, RestoredExtras, ServeOptions};
use crate::fleet::Fleet;
use crate::http::{Request, Response};
use crate::protocol::{
    CheckpointInfo, ConfigResponse, ErrorResponse, HealthzResponse, IngestRequest, IngestResponse,
    MachineResponse, MachinesResponse, PowerResponse, ServeError, SnapshotResponse, StatsResponse,
    TickResult, WireTick, PROTOCOL,
};
use crate::snapshot;
use chaos_stats::ExecPolicy;
use chaos_stream::Checkpointer;
use std::collections::{BTreeMap, VecDeque};

/// Renders a serializable body to JSON bytes. Serialization of the
/// protocol structs cannot fail (no maps with non-string keys, no
/// non-finite floats survive validation), but a fallback keeps the
/// lib-crate panic-free.
fn render<T: serde::Serialize>(status: u16, body: &T) -> Response {
    match serde_json::to_vec(body) {
        Ok(bytes) => Response::json(status, bytes),
        Err(e) => Response::json(
            500,
            format!(
                "{{\"protocol\":\"{PROTOCOL}\",\"error\":\"internal\",\"detail\":\"render: {}\"}}",
                e.to_string().replace('"', "'")
            )
            .into_bytes(),
        ),
    }
}

/// The power-estimation server: a sharded [`Fleet`], the power-history
/// ring, the server's own counters, and optional checkpointing.
#[derive(Debug)]
pub struct Server {
    fleet: Fleet,
    opts: ServeOptions,
    history: VecDeque<TickResult>,
    counters: BTreeMap<String, u64>,
    checkpointer: Option<Checkpointer>,
    checkpoint_every_ticks: u64,
}

impl Server {
    /// First boot: trains the estimator from the fleet spec and starts
    /// at second 0.
    ///
    /// # Errors
    ///
    /// Propagates training or engine-construction failures.
    pub fn new(
        opts: ServeOptions,
        exec: ExecPolicy,
        checkpointer: Option<Checkpointer>,
        checkpoint_every_ticks: u64,
    ) -> Result<Server, ServeError> {
        let fleet = bootstrap::build_fleet(&opts, exec)?;
        Ok(Server {
            fleet,
            opts,
            history: VecDeque::new(),
            counters: BTreeMap::new(),
            checkpointer,
            checkpoint_every_ticks,
        })
    }

    /// Restore from a `CHAOSRVE` snapshot: retrains the estimator
    /// (deterministic from the spec), rehydrates every slot, and
    /// resumes at the snapshot's cursor. A restored server's
    /// subsequent responses are byte-identical to the uninterrupted
    /// server's.
    ///
    /// # Errors
    ///
    /// Decode and compatibility failures as
    /// [`ServeError::Snapshot`]; training failures as
    /// [`ServeError::Internal`].
    pub fn restore(
        opts: ServeOptions,
        exec: ExecPolicy,
        checkpointer: Option<Checkpointer>,
        checkpoint_every_ticks: u64,
        bytes: &[u8],
    ) -> Result<Server, ServeError> {
        let state = snapshot::decode(bytes)?;
        let fleet = bootstrap::restore_fleet(&opts, exec, &state)?;
        let RestoredExtras { history, counters } = bootstrap::restored_extras(&state);
        Ok(Server {
            fleet,
            opts,
            history: history.into(),
            counters,
            checkpointer,
            checkpoint_every_ticks,
        })
    }

    /// The next second the server will accept.
    pub fn t_next(&self) -> u64 {
        self.fleet.t_next()
    }

    /// Increments a server counter and mirrors it into `chaos-obs`.
    /// The server's copy is authoritative — `/v1/stats` reads it, so
    /// the response is identical at any `CHAOS_OBS` level.
    fn bump(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            // chaos-lint: allow(R6) — first sight of a counter name; steady-state bumps take the get_mut fast path above
            self.counters.insert(name.to_string(), by);
        }
        chaos_obs::add(name, by);
    }

    fn error_response(&mut self, err: &ServeError) -> Response {
        self.bump("serve.http.errors", 1);
        let body = ErrorResponse {
            protocol: PROTOCOL.to_string(),
            error: err.code().to_string(),
            detail: err.to_string(),
        };
        render(err.status(), &body)
    }

    /// Frames an [`HttpError`](crate::http::HttpError) into the same
    /// error body the router produces, for the transport loop.
    pub fn framing_error_response(&mut self, err: crate::http::HttpError) -> Response {
        self.error_response(&ServeError::Http(err))
    }

    /// Routes one framed request. Never panics; every failure is a
    /// structured JSON error body.
    // chaos-lint: no-panic — a panic here kills the connection thread; every failure must be a structured error response
    pub fn handle(&mut self, req: &Request) -> Response {
        self.bump("serve.http.requests", 1);
        let result = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/v1/healthz") => Ok(self.healthz()),
            ("GET", "/v1/config") => Ok(self.config()),
            ("GET", "/v1/power") => Ok(self.power()),
            ("GET", "/v1/machines") => Ok(self.machines()),
            ("GET", "/v1/stats") => Ok(self.stats()),
            ("POST", "/v1/ingest") => self.ingest(&req.body),
            ("POST", "/v1/snapshot") => self.snapshot_now(),
            ("GET", path) if path.starts_with("/v1/machines/") => self.machine(path),
            (method, path) => {
                let known = matches!(
                    path,
                    "/v1/healthz"
                        | "/v1/config"
                        | "/v1/power"
                        | "/v1/machines"
                        | "/v1/stats"
                        | "/v1/ingest"
                        | "/v1/snapshot"
                ) || path.starts_with("/v1/machines/");
                if known {
                    Err(ServeError::MethodNotAllowed {
                        method: method.to_string(),
                        path: path.to_string(),
                    })
                } else {
                    Err(ServeError::UnknownEndpoint {
                        path: path.to_string(),
                    })
                }
            }
        };
        match result {
            Ok(resp) => resp,
            Err(err) => self.error_response(&err),
        }
    }

    fn healthz(&mut self) -> Response {
        let body = HealthzResponse {
            protocol: PROTOCOL.to_string(),
            status: "ok".to_string(),
            t_next: self.fleet.t_next(),
            machines: self.fleet.machines(),
            active_machines: self.fleet.active_count(),
        };
        render(200, &body)
    }

    fn config(&mut self) -> Response {
        let body = ConfigResponse {
            protocol: PROTOCOL.to_string(),
            fleet: self.fleet.spec(),
            width: self.fleet.width(),
            window_s: self.opts.stream.window_s,
            min_refit_samples: self.opts.stream.min_refit_samples,
            exec: match self.fleet.exec {
                ExecPolicy::Serial => "serial".to_string(),
                ExecPolicy::Parallel { threads } => format!("parallel:{threads}"),
            },
            max_body_bytes: self.opts.max_body_bytes,
            history_cap: self.opts.history_cap,
            checkpoint: self.checkpointer.as_ref().map(|c| CheckpointInfo {
                path: c.path().display().to_string(),
                every_ticks: self.checkpoint_every_ticks,
            }),
        };
        render(200, &body)
    }

    fn power(&mut self) -> Response {
        let body = PowerResponse {
            protocol: PROTOCOL.to_string(),
            t_next: self.fleet.t_next(),
            latest: self.history.back().cloned(),
            history: self.history.iter().cloned().collect(),
        };
        render(200, &body)
    }

    fn machines(&mut self) -> Response {
        let body = MachinesResponse {
            protocol: PROTOCOL.to_string(),
            machines: self.fleet.statuses(),
        };
        render(200, &body)
    }

    fn machine(&mut self, path: &str) -> Result<Response, ServeError> {
        let tail = path.trim_start_matches("/v1/machines/");
        let id: usize = tail.parse().map_err(|_| ServeError::UnknownEndpoint {
            path: path.to_string(),
        })?;
        let machine = self
            .fleet
            .machine_status(id)
            .ok_or(ServeError::UnknownMachine { id })?;
        let body = MachineResponse {
            protocol: PROTOCOL.to_string(),
            machine,
        };
        Ok(render(200, &body))
    }

    fn stats(&mut self) -> Response {
        let body = StatsResponse {
            protocol: PROTOCOL.to_string(),
            counters: self.counters.clone(),
        };
        render(200, &body)
    }

    /// Fleet size this server models.
    pub fn machine_count(&self) -> usize {
        self.fleet.machines()
    }

    /// Counter-row width every ingested sample must carry.
    pub fn width(&self) -> usize {
        self.fleet.width()
    }

    /// Applies one tick through the full ingest bookkeeping — fleet
    /// advance, serve counters, the power-history ring — without the
    /// HTTP framing. The `/v1/ingest` handler and the `--replay`
    /// bootstrap both route through here, so a replayed trace leaves
    /// the server in exactly the state live ingestion of the same
    /// ticks would have.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeError`] from [`Fleet::ingest_tick`]; the tick
    /// is not applied and the serve counters record a rejection.
    // chaos-lint: hot — per-tick ingestion kernel shared by live serving and checkpoint replay
    pub fn apply_tick(&mut self, tick: &WireTick) -> Result<TickResult, ServeError> {
        match self.fleet.ingest_tick(tick) {
            Ok(result) => {
                self.bump("serve.ticks", 1);
                self.bump("serve.samples", tick.machines.len() as u64);
                if result.refits > 0 {
                    self.bump("serve.refits", result.refits);
                }
                // chaos-lint: allow(R6) — the bounded history ring keeps its own copy; the caller owns the returned result
                self.history.push_back(result.clone());
                while self.history.len() > self.opts.history_cap {
                    self.history.pop_front();
                }
                Ok(result)
            }
            Err(err) => {
                self.bump("serve.ticks.rejected", 1);
                Err(err)
            }
        }
    }

    fn ingest(&mut self, body: &[u8]) -> Result<Response, ServeError> {
        let _span = chaos_obs::span("serve.ingest");
        let request: IngestRequest =
            serde_json::from_slice(body).map_err(|e| ServeError::MalformedJson {
                detail: e.to_string(),
            })?;
        let mut results = Vec::with_capacity(request.ticks.len());
        for tick in &request.ticks {
            // Apply in order until the first failure; the error detail
            // reports how many ticks landed so the client can resync
            // from t_next.
            match self.apply_tick(tick) {
                Ok(result) => results.push(result),
                Err(err) => {
                    if results.is_empty() {
                        return Err(err);
                    }
                    // Partial batch: report what landed; the client
                    // sees the failure on its next aligned retry.
                    break;
                }
            }
        }
        self.maybe_checkpoint();
        let body = IngestResponse {
            protocol: PROTOCOL.to_string(),
            results,
            t_next: self.fleet.t_next(),
        };
        Ok(render(200, &body))
    }

    fn maybe_checkpoint(&mut self) {
        let due = match &self.checkpointer {
            Some(_) if self.checkpoint_every_ticks > 0 => {
                let t = self.fleet.t_next();
                t > 0 && t % self.checkpoint_every_ticks == 0
            }
            _ => false,
        };
        if !due {
            return;
        }
        let bytes = snapshot::encode(&self.fleet, self.history.make_contiguous(), &self.counters);
        let outcome = match &self.checkpointer {
            Some(c) => c.persist_bytes(&bytes),
            None => return,
        };
        match outcome {
            Ok(()) => self.bump("serve.checkpoint.persisted", 1),
            // A failed cadenced checkpoint must not fail ingest; the
            // operator sees it in /v1/stats and the obs summary.
            Err(_) => self.bump("serve.checkpoint.failed", 1),
        }
    }

    fn snapshot_now(&mut self) -> Result<Response, ServeError> {
        let Some(checkpointer) = &self.checkpointer else {
            return Err(ServeError::CheckpointDisabled);
        };
        let bytes = snapshot::encode(&self.fleet, self.history.make_contiguous(), &self.counters);
        checkpointer.persist_bytes(&bytes)?;
        self.bump("serve.checkpoint.persisted", 1);
        let body = SnapshotResponse {
            protocol: PROTOCOL.to_string(),
            status: "persisted".to_string(),
            bytes: bytes.len() as u64,
            t_next: self.fleet.t_next(),
        };
        Ok(render(200, &body))
    }

    /// Encodes the current state as a `CHAOSRVE` snapshot without
    /// persisting it (tests and the load generator use this for
    /// in-memory kill/restore drills).
    pub fn snapshot_bytes(&mut self) -> Vec<u8> {
        snapshot::encode(&self.fleet, self.history.make_contiguous(), &self.counters)
    }
}
