//! The server's snapshot format: the `CHAOSRVE` envelope.
//!
//! Mirrors the `CHAOSNAP` engine format (`chaos_stream::checkpoint`) —
//! magic, version, length-prefixed payload, FNV-1a64 checksum — and
//! embeds each slot's engine snapshot as opaque length-prefixed bytes,
//! so the engine format can evolve independently. Decode errors reuse
//! [`SnapshotError`] so operators see one error vocabulary for both
//! layers.
//!
//! What the snapshot captures: the cursor, a [`FleetSpec`] echo
//! (compatibility check on restore), every slot's rolling buffer and
//! tallies, the power-history ring, and the server's own counters.
//! The trained estimator is deliberately *not* captured — it is a
//! deterministic function of the spec, so restore retrains it (see
//! `crate::bootstrap`) exactly as first boot did.

use crate::fleet::{Fleet, MachineSlot};
use crate::protocol::{LastSample, TickResult};
use chaos_stream::SnapshotError;
use std::collections::BTreeMap;

/// Magic bytes opening every server snapshot.
pub const SERVE_MAGIC: [u8; 8] = *b"CHAOSRVE";

/// Current server snapshot format version.
pub const SERVE_SNAPSHOT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------
// Little-endian payload codec (mirrors chaos-stream's, kept private
// there).
// ---------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }
    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.f64(x);
            }
            None => self.bool(false),
        }
    }
    fn vec_f64(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
    fn vec_bool(&mut self, v: &[bool]) {
        self.usize(v.len());
        for &x in v {
            self.bool(x);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Malformed {
            context: "length overflow".to_string(),
        })?;
        if end > self.buf.len() {
            return Err(SnapshotError::Malformed {
                context: format!(
                    "payload truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Malformed {
            context: format!("length {v} exceeds platform usize"),
        })
    }
    fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(SnapshotError::Malformed {
                context: format!("declared length {n} exceeds remaining payload"),
            });
        }
        Ok(n)
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapshotError::Malformed {
                context: format!("bad bool byte {v}"),
            }),
        }
    }
    fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }
    fn string(&mut self) -> Result<String, SnapshotError> {
        String::from_utf8(self.bytes()?).map_err(|_| SnapshotError::Malformed {
            context: "non-UTF-8 string".to_string(),
        })
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }
    fn vec_f64(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len()?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn vec_bool(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let n = self.len()?;
        (0..n).map(|_| self.bool()).collect()
    }
    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Malformed {
                context: format!("{} trailing bytes after payload", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Decoded state
// ---------------------------------------------------------------------

/// One slot's decoded state, ready for `Fleet` reconstruction.
#[derive(Debug, Clone)]
pub struct SlotState {
    /// Absolute second offset of the buffer index space.
    pub base_t: u64,
    /// Samples ingested.
    pub samples_total: u64,
    /// Refit tallies by tier label.
    pub refit_counts: BTreeMap<String, u64>,
    /// Absolute second of the most recent refit attempt.
    pub last_refit_t: Option<u64>,
    /// Most recent emitted sample.
    pub last: Option<LastSample>,
    /// Buffered counter rows (the lag row, usually).
    pub counters: Vec<Vec<f64>>,
    /// Buffered meter readings.
    pub measured_power_w: Vec<f64>,
    /// Buffered per-row counter validity.
    pub counter_ok: Vec<Vec<bool>>,
    /// Buffered meter validity.
    pub meter_ok: Vec<bool>,
    /// Buffered liveness.
    pub alive: Vec<bool>,
    /// The slot engine's own `CHAOSNAP` snapshot.
    pub engine: Vec<u8>,
}

/// A fully decoded server snapshot.
#[derive(Debug, Clone)]
pub struct ServerState {
    /// The cursor: next second the server will accept.
    pub t_next: u64,
    /// Fleet echo: platform name.
    pub platform: String,
    /// Fleet echo: machine count.
    pub machines: usize,
    /// Fleet echo: calibration seed.
    pub seed: u64,
    /// Fleet echo: counter-row width.
    pub width: usize,
    /// Per-slot state, machine order.
    pub slots: Vec<SlotState>,
    /// Power-history ring, oldest first.
    pub history: Vec<TickResult>,
    /// The server's own counters.
    pub counters: BTreeMap<String, u64>,
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

fn encode_last(enc: &mut Enc, last: &Option<LastSample>) {
    match last {
        Some(s) => {
            enc.bool(true);
            enc.u64(s.t);
            enc.f64(s.power_w);
            enc.string(&s.tier);
            enc.bool(s.adapted);
            enc.usize(s.imputed);
            enc.opt_f64(s.rolling_dre);
        }
        None => enc.bool(false),
    }
}

fn encode_slot(enc: &mut Enc, slot: &MachineSlot) {
    enc.u64(slot.base_t);
    enc.u64(slot.samples_total);
    enc.usize(slot.refit_counts.len());
    for (label, count) in &slot.refit_counts {
        enc.string(label);
        enc.u64(*count);
    }
    enc.opt_u64(slot.last_refit_t);
    encode_last(enc, &slot.last);
    // chaos-lint: allow(R4, R7) — every slot buffer is built by
    // empty_buffer with exactly one machine and compaction never
    // removes it, so index 0 always exists.
    let m = &slot.buf.machines[0];
    enc.usize(m.counters.len());
    for row in &m.counters {
        enc.vec_f64(row);
    }
    enc.vec_f64(&m.measured_power_w);
    enc.usize(m.validity.counters.len());
    for row in &m.validity.counters {
        enc.vec_bool(row);
    }
    enc.vec_bool(&m.validity.meter);
    enc.vec_bool(&m.validity.alive);
    enc.bytes(&slot.engine.snapshot());
}

/// Encodes the full server state into a `CHAOSRVE` envelope.
pub fn encode(fleet: &Fleet, history: &[TickResult], counters: &BTreeMap<String, u64>) -> Vec<u8> {
    let mut enc = Enc::default();
    enc.u64(fleet.t_next());
    enc.string(fleet.spec().platform.name());
    enc.usize(fleet.spec().machines);
    enc.u64(fleet.spec().seed);
    enc.usize(fleet.width());
    enc.usize(fleet.slots.len());
    for slot in &fleet.slots {
        encode_slot(&mut enc, slot);
    }
    enc.usize(history.len());
    for r in history {
        enc.u64(r.t);
        enc.f64(r.cluster_power_w);
        enc.string(&r.worst_tier);
        enc.usize(r.active_machines);
        enc.u64(r.refits);
    }
    enc.usize(counters.len());
    for (name, value) in counters {
        enc.string(name);
        enc.u64(*value);
    }

    let payload = enc.buf;
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(&SERVE_MAGIC);
    out.extend_from_slice(&SERVE_SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out
}

// ---------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------

fn decode_last(dec: &mut Dec<'_>) -> Result<Option<LastSample>, SnapshotError> {
    if !dec.bool()? {
        return Ok(None);
    }
    Ok(Some(LastSample {
        t: dec.u64()?,
        power_w: dec.f64()?,
        tier: dec.string()?,
        adapted: dec.bool()?,
        imputed: dec.usize()?,
        rolling_dre: dec.opt_f64()?,
    }))
}

fn decode_slot(dec: &mut Dec<'_>) -> Result<SlotState, SnapshotError> {
    let base_t = dec.u64()?;
    let samples_total = dec.u64()?;
    let n_tallies = dec.len()?;
    let mut refit_counts = BTreeMap::new();
    for _ in 0..n_tallies {
        let label = dec.string()?;
        let count = dec.u64()?;
        refit_counts.insert(label, count);
    }
    let last_refit_t = dec.opt_u64()?;
    let last = decode_last(dec)?;
    let n_rows = dec.len()?;
    let counters = (0..n_rows)
        .map(|_| dec.vec_f64())
        .collect::<Result<Vec<_>, _>>()?;
    let measured_power_w = dec.vec_f64()?;
    let n_vrows = dec.len()?;
    let counter_ok = (0..n_vrows)
        .map(|_| dec.vec_bool())
        .collect::<Result<Vec<_>, _>>()?;
    let meter_ok = dec.vec_bool()?;
    let alive = dec.vec_bool()?;
    let engine = dec.bytes()?;
    Ok(SlotState {
        base_t,
        samples_total,
        refit_counts,
        last_refit_t,
        last,
        counters,
        measured_power_w,
        counter_ok,
        meter_ok,
        alive,
        engine,
    })
}

/// Validates the `CHAOSRVE` envelope and decodes the full server
/// state.
///
/// # Errors
///
/// [`SnapshotError`] — the same vocabulary as engine snapshots:
/// `BadMagic`, `UnsupportedVersion`, `LengthMismatch`,
/// `ChecksumMismatch`, or `Malformed` for payload-level damage.
pub fn decode(bytes: &[u8]) -> Result<ServerState, SnapshotError> {
    if bytes.len() < 28 {
        return Err(SnapshotError::TooShort { got: bytes.len() });
    }
    if bytes[0..8] != SERVE_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(v);
    if version != SERVE_SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { got: version });
    }
    let mut l = [0u8; 8];
    l.copy_from_slice(&bytes[12..20]);
    let declared = u64::from_le_bytes(l);
    let have = (bytes.len() - 28) as u64;
    if declared != have {
        return Err(SnapshotError::LengthMismatch {
            declared,
            got: have,
        });
    }
    let declared = declared as usize;
    let payload = &bytes[20..20 + declared];
    let mut c = [0u8; 8];
    c.copy_from_slice(&bytes[20 + declared..28 + declared]);
    if u64::from_le_bytes(c) != fnv1a64(payload) {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut dec = Dec::new(payload);
    let t_next = dec.u64()?;
    let platform = dec.string()?;
    let machines = dec.usize()?;
    let seed = dec.u64()?;
    let width = dec.usize()?;
    let n_slots = dec.len()?;
    if n_slots != machines {
        return Err(SnapshotError::Malformed {
            context: format!("snapshot carries {n_slots} slots for a fleet of {machines}"),
        });
    }
    let slots = (0..n_slots)
        .map(|_| decode_slot(&mut dec))
        .collect::<Result<Vec<_>, _>>()?;
    let n_hist = dec.len()?;
    let history = (0..n_hist)
        .map(|_| {
            Ok(TickResult {
                t: dec.u64()?,
                cluster_power_w: dec.f64()?,
                worst_tier: dec.string()?,
                active_machines: dec.usize()?,
                refits: dec.u64()?,
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let n_counters = dec.len()?;
    let mut counters = BTreeMap::new();
    for _ in 0..n_counters {
        let name = dec.string()?;
        let value = dec.u64()?;
        counters.insert(name, value);
    }
    dec.done()?;
    Ok(ServerState {
        t_next,
        platform,
        machines,
        seed,
        width,
        slots,
        history,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_rejects_damage() {
        assert!(matches!(
            decode(&[0u8; 10]),
            Err(SnapshotError::TooShort { .. })
        ));
        let mut bad_magic = vec![0u8; 40];
        bad_magic[0..8].copy_from_slice(b"NOTCHAOS");
        assert!(matches!(decode(&bad_magic), Err(SnapshotError::BadMagic)));
        let mut bad_version = vec![0u8; 40];
        bad_version[0..8].copy_from_slice(&SERVE_MAGIC);
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&bad_version),
            Err(SnapshotError::UnsupportedVersion { got: 99 })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
