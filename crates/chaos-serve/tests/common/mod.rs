//! Shared fixtures for the chaos-serve integration suites: a small
//! fleet, a deterministic sample stream derived from the simulator,
//! and helpers to drive the server request-by-request.

// Each integration suite compiles this module independently and uses a
// different subset of the helpers.
#![allow(dead_code)]

use chaos_counters::{collect_run, CounterCatalog};
use chaos_serve::bootstrap::ServeOptions;
use chaos_serve::http::Request;
use chaos_serve::{Server, WireSample, WireTick};
use chaos_sim::{FleetSpec, Platform};
use chaos_stats::ExecPolicy;
use chaos_workloads::{SimConfig, Workload};

/// The suite's standard small fleet.
pub fn small_spec() -> FleetSpec {
    FleetSpec::new(Platform::Core2, 3, 42)
}

/// Test-shaped server options over the standard fleet.
pub fn opts() -> ServeOptions {
    ServeOptions::quick(small_spec())
}

/// A fresh serial server over the standard fleet with no
/// checkpointing.
pub fn server() -> Server {
    Server::new(opts(), ExecPolicy::Serial, None, 0).expect("boot test server")
}

/// Derives a deterministic per-second sample stream for `spec` from
/// the simulator: one [`WireTick`] per second, every machine present,
/// metered power attached.
pub fn ticks(spec: FleetSpec, run_seed: u64, seconds: usize) -> Vec<WireTick> {
    let cluster = spec.cluster();
    let catalog = CounterCatalog::for_platform(&spec.platform.spec());
    let run = collect_run(
        &cluster,
        &catalog,
        Workload::Prime,
        &SimConfig::quick(),
        run_seed,
    )
    .expect("collect serving trace");
    let n = seconds.min(run.seconds());
    (0..n)
        .map(|t| WireTick {
            t: t as u64,
            machines: run
                .machines
                .iter()
                .map(|m| WireSample {
                    machine_id: m.machine_id,
                    counters: m.counters[t].clone(),
                    power_w: Some(m.measured_power_w[t]),
                    counter_ok: None,
                    meter_ok: true,
                    alive: true,
                })
                .collect(),
        })
        .collect()
}

/// Frames a request the way the TCP loop would.
pub fn request(method: &str, path: &str, body: impl Into<Vec<u8>>) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        body: body.into(),
        close: false,
    }
}

/// POSTs one batch of ticks to `/v1/ingest` and returns the raw
/// response.
pub fn post_ticks(server: &mut Server, ticks: &[WireTick]) -> chaos_serve::Response {
    let body = serde_json::to_vec(&serde_json::json!({
        "ticks": ticks
            .iter()
            .map(|tick| {
                serde_json::json!({
                    "t": tick.t,
                    "machines": tick
                        .machines
                        .iter()
                        .map(|s| {
                            serde_json::json!({
                                "machine_id": s.machine_id,
                                "counters": s.counters,
                                "power_w": s.power_w,
                            })
                        })
                        .collect::<Vec<_>>(),
                })
            })
            .collect::<Vec<_>>(),
    }))
    .expect("encode ingest body");
    server.handle(&request("POST", "/v1/ingest", body))
}
