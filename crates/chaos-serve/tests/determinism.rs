//! The serving determinism contract: the same sample log produces
//! **byte-identical** response bodies whatever the shard/thread count
//! is. `/v1/config` is the documented exception (it reports the
//! execution policy).

mod common;

use chaos_serve::Server;
use chaos_stats::ExecPolicy;

fn drive(exec: ExecPolicy) -> Vec<Vec<u8>> {
    let mut server = Server::new(common::opts(), exec, None, 0).expect("boot server");
    let ticks = common::ticks(common::small_spec(), 555, 45);
    let mut responses = Vec::new();
    // Interleave ingest batches with reads, the way a poller would.
    for chunk in ticks.chunks(9) {
        responses.push(common::post_ticks(&mut server, chunk).to_bytes());
        for path in ["/v1/power", "/v1/machines", "/v1/healthz", "/v1/stats"] {
            responses.push(
                server
                    .handle(&common::request("GET", path, Vec::new()))
                    .to_bytes(),
            );
        }
    }
    for id in 0..3 {
        responses.push(
            server
                .handle(&common::request(
                    "GET",
                    &format!("/v1/machines/{id}"),
                    Vec::new(),
                ))
                .to_bytes(),
        );
    }
    responses
}

#[test]
fn sharded_replay_is_byte_identical_to_serial() {
    let serial = drive(ExecPolicy::Serial);
    for threads in [2, 4, 8] {
        let sharded = drive(ExecPolicy::Parallel { threads });
        assert_eq!(
            serial.len(),
            sharded.len(),
            "response count diverged at {threads} threads"
        );
        for (i, (a, b)) in serial.iter().zip(&sharded).enumerate() {
            assert_eq!(
                a,
                b,
                "response {i} diverged at {threads} threads:\nserial:  {}\nsharded: {}",
                String::from_utf8_lossy(a),
                String::from_utf8_lossy(b)
            );
        }
    }
}

#[test]
fn repeated_serial_replays_are_byte_identical() {
    // Pins that the pipeline itself is deterministic (no time, no
    // entropy) before blaming the parallel phase for any divergence.
    assert_eq!(drive(ExecPolicy::Serial), drive(ExecPolicy::Serial));
}
