//! Every documented endpoint of the `chaos-serve/1` protocol has a
//! passing integration test here (the acceptance bar in
//! `docs/PROTOCOL.md`), plus the kill/restore drill: a server restored
//! from its `CHAOSRVE` snapshot continues byte-identically.

mod common;

use chaos_serve::bootstrap::ServeOptions;
use chaos_serve::{Server, PROTOCOL};
use chaos_stats::ExecPolicy;
use chaos_stream::Checkpointer;
use serde_json::Value;

fn body_json(resp: &chaos_serve::Response) -> Value {
    serde_json::from_slice(&resp.body).expect("response body is JSON")
}

fn get(server: &mut Server, path: &str) -> chaos_serve::Response {
    server.handle(&common::request("GET", path, Vec::new()))
}

#[test]
fn healthz_reports_fleet_shape() {
    let mut server = common::server();
    let resp = get(&mut server, "/v1/healthz");
    assert_eq!(resp.status, 200);
    let v = body_json(&resp);
    assert_eq!(v.get("protocol").and_then(Value::as_str), Some(PROTOCOL));
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(v.get("t_next").and_then(Value::as_f64), Some(0.0));
    assert_eq!(v.get("machines").and_then(Value::as_f64), Some(3.0));
}

#[test]
fn config_echoes_the_deployment() {
    let mut server = common::server();
    let resp = get(&mut server, "/v1/config");
    assert_eq!(resp.status, 200);
    let v = body_json(&resp);
    assert_eq!(v.get("exec").and_then(Value::as_str), Some("serial"));
    assert!(v.get("width").and_then(Value::as_f64).unwrap_or(0.0) > 0.0);
    assert!(v.get("checkpoint").is_some());
    let fleet = v.get("fleet").expect("fleet echo");
    assert_eq!(fleet.get("machines").and_then(Value::as_f64), Some(3.0));
}

#[test]
fn ingest_then_power_then_machines_then_stats() {
    let mut server = common::server();
    let ticks = common::ticks(common::small_spec(), 2024, 30);
    let resp = common::post_ticks(&mut server, &ticks);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let v = body_json(&resp);
    assert_eq!(v.get("t_next").and_then(Value::as_f64), Some(30.0));
    let results = v.get("results").and_then(Value::as_array).expect("results");
    assert_eq!(results.len(), 30);
    for r in results {
        let p = r
            .get("cluster_power_w")
            .and_then(Value::as_f64)
            .expect("power");
        assert!(p.is_finite() && p > 0.0, "cluster power {p} out of range");
        let tier = r.get("worst_tier").and_then(Value::as_str).expect("tier");
        assert!(["full", "reduced", "strawman", "constant"].contains(&tier));
        assert_eq!(r.get("active_machines").and_then(Value::as_f64), Some(3.0));
    }

    let resp = get(&mut server, "/v1/power");
    assert_eq!(resp.status, 200);
    let v = body_json(&resp);
    let latest = v.get("latest").expect("latest");
    assert_eq!(latest.get("t").and_then(Value::as_f64), Some(29.0));
    let history = v.get("history").and_then(Value::as_array).expect("history");
    assert_eq!(history.len(), 30);

    let resp = get(&mut server, "/v1/machines");
    assert_eq!(resp.status, 200);
    let v = body_json(&resp);
    let machines = v
        .get("machines")
        .and_then(Value::as_array)
        .expect("machines");
    assert_eq!(machines.len(), 3);
    for (id, m) in machines.iter().enumerate() {
        assert_eq!(m.get("machine_id").and_then(Value::as_f64), Some(id as f64));
        assert_eq!(m.get("samples").and_then(Value::as_f64), Some(30.0));
        let health = m.get("health").and_then(Value::as_str).expect("health");
        assert!(["healthy", "ramping", "quarantined"].contains(&health));
        let last = m.get("last").expect("last sample");
        assert_eq!(last.get("t").and_then(Value::as_f64), Some(29.0));
    }

    let resp = get(&mut server, "/v1/machines/1");
    assert_eq!(resp.status, 200);
    let v = body_json(&resp);
    assert_eq!(
        v.get("machine")
            .and_then(|m| m.get("machine_id"))
            .and_then(Value::as_f64),
        Some(1.0)
    );

    let resp = get(&mut server, "/v1/stats");
    assert_eq!(resp.status, 200);
    let v = body_json(&resp);
    let counters = v.get("counters").expect("counters");
    assert_eq!(
        counters.get("serve.ticks").and_then(Value::as_f64),
        Some(30.0)
    );
    assert_eq!(
        counters.get("serve.samples").and_then(Value::as_f64),
        Some(90.0)
    );
}

#[test]
fn unknown_machine_is_404_and_snapshot_without_checkpoint_is_409() {
    let mut server = common::server();
    let resp = get(&mut server, "/v1/machines/99");
    assert_eq!(resp.status, 404);
    assert_eq!(
        body_json(&resp).get("error").and_then(Value::as_str),
        Some("unknown_machine")
    );

    let resp = server.handle(&common::request("POST", "/v1/snapshot", Vec::new()));
    assert_eq!(resp.status, 409);
    assert_eq!(
        body_json(&resp).get("error").and_then(Value::as_str),
        Some("checkpoint_disabled")
    );
}

#[test]
fn snapshot_endpoint_persists_and_server_restores_byte_identically() {
    let dir = std::env::temp_dir().join(format!("chaos-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("server.snap");
    let ckpt = Checkpointer::new(&path, 0);

    let mut live = Server::new(common::opts(), ExecPolicy::Serial, Some(ckpt.clone()), 0)
        .expect("boot server");
    let ticks = common::ticks(common::small_spec(), 7, 40);
    let resp = common::post_ticks(&mut live, &ticks[..20]);
    assert_eq!(resp.status, 200);

    // Operator-triggered snapshot.
    let resp = live.handle(&common::request("POST", "/v1/snapshot", Vec::new()));
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let v = body_json(&resp);
    assert_eq!(v.get("status").and_then(Value::as_str), Some("persisted"));
    assert_eq!(v.get("t_next").and_then(Value::as_f64), Some(20.0));

    // Kill: drop the live server, restore a new one from disk.
    let bytes = ckpt.load().expect("read snapshot");
    let mut restored = Server::restore(common::opts(), ExecPolicy::Serial, Some(ckpt), 0, &bytes)
        .expect("restore server");
    assert_eq!(restored.t_next(), 20);

    // Both servers consume the identical remainder; every response must
    // match byte-for-byte (the snapshot captured the /v1/snapshot
    // request's counter bumps, and both replicas see the same requests
    // afterwards).
    let live_resp = common::post_ticks(&mut live, &ticks[20..]);
    let restored_resp = common::post_ticks(&mut restored, &ticks[20..]);
    assert_eq!(live_resp.to_bytes(), restored_resp.to_bytes());
    for path in ["/v1/power", "/v1/machines", "/v1/healthz", "/v1/stats"] {
        let a = get(&mut live, path);
        let b = get(&mut restored, path);
        assert_eq!(a.to_bytes(), b.to_bytes(), "divergence at {path}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restore_rejects_a_mismatched_fleet() {
    let mut server = common::server();
    let ticks = common::ticks(common::small_spec(), 3, 5);
    common::post_ticks(&mut server, &ticks);
    let bytes = server.snapshot_bytes();

    let other = ServeOptions::quick(chaos_sim::FleetSpec::new(
        chaos_sim::Platform::Core2,
        3,
        43, // different calibration seed
    ));
    let err = Server::restore(other, ExecPolicy::Serial, None, 0, &bytes)
        .err()
        .expect("mismatched restore must fail");
    assert_eq!(err.code(), "snapshot_failed");
}

#[test]
fn cadenced_checkpoint_fires_during_ingest() {
    let dir = std::env::temp_dir().join(format!("chaos-serve-cadence-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("cadence.snap");
    let ckpt = Checkpointer::new(&path, 0);

    let mut server =
        Server::new(common::opts(), ExecPolicy::Serial, Some(ckpt), 10).expect("boot server");
    let ticks = common::ticks(common::small_spec(), 11, 10);
    let resp = common::post_ticks(&mut server, &ticks);
    assert_eq!(resp.status, 200);
    assert!(path.exists(), "cadenced checkpoint did not land on disk");

    let resp = get(&mut server, "/v1/stats");
    let v = body_json(&resp);
    assert_eq!(
        v.get("counters")
            .and_then(|c| c.get("serve.checkpoint.persisted"))
            .and_then(Value::as_f64),
        Some(1.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}
