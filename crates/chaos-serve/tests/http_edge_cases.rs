//! HTTP edge cases (satellite of the serving PR): oversized bodies,
//! truncated requests, bad content-lengths, unknown endpoints, and
//! malformed JSON must each produce a *typed* 4xx with a structured
//! JSON body — never a panic, never a hang, never a silent drop.

mod common;

use chaos_serve::http::{read_request, HttpError, MAX_HEADER_BYTES};
use chaos_serve::Server;
use serde_json::Value;
use std::io::Cursor;
use std::sync::{Mutex, OnceLock};

const MAX_BODY: usize = 64 * 1024;

fn parse(raw: &[u8]) -> Result<Option<chaos_serve::Request>, HttpError> {
    read_request(&mut Cursor::new(raw), MAX_BODY)
}

/// One shared trained server for the routing-level cases (training is
/// the expensive part; the cases only need *a* fleet).
fn shared() -> &'static Mutex<Server> {
    static SERVER: OnceLock<Mutex<Server>> = OnceLock::new();
    SERVER.get_or_init(|| Mutex::new(common::server()))
}

fn error_code(resp: &chaos_serve::Response) -> String {
    let v: Value = serde_json::from_slice(&resp.body).expect("error body is JSON");
    v.get("error")
        .and_then(Value::as_str)
        .expect("error code present")
        .to_string()
}

// ---------------------------------------------------------------------
// Framing layer
// ---------------------------------------------------------------------

#[test]
fn oversized_declared_body_is_rejected_before_allocation() {
    let raw = format!(
        "POST /v1/ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY + 1
    );
    assert_eq!(
        parse(raw.as_bytes()),
        Err(HttpError::BodyTooLarge {
            declared: MAX_BODY + 1,
            limit: MAX_BODY,
        })
    );
    // Absurd declarations must not allocate either.
    let raw = "POST /v1/ingest HTTP/1.1\r\nContent-Length: 99999999999999\r\n\r\n";
    assert!(matches!(
        parse(raw.as_bytes()),
        Err(HttpError::BodyTooLarge { .. })
    ));
}

#[test]
fn truncated_body_is_a_typed_error() {
    let raw = "POST /v1/ingest HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
    assert!(matches!(
        parse(raw.as_bytes()),
        Err(HttpError::Truncated { .. })
    ));
}

#[test]
fn truncated_headers_are_a_typed_error() {
    assert!(matches!(
        parse(b"GET /v1/power HTTP/1.1\r\nHost: x\r\n"),
        Err(HttpError::Truncated { .. })
    ));
    assert!(matches!(
        parse(b"GET /v1/power HT"),
        Err(HttpError::Truncated { .. })
    ));
}

#[test]
fn bad_content_length_is_a_typed_error() {
    for bad in ["abc", "-5", "1e3", ""] {
        let raw = format!("POST /v1/ingest HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
        assert!(
            matches!(
                parse(raw.as_bytes()),
                Err(HttpError::BadContentLength { .. })
            ),
            "Content-Length {bad:?} was not rejected"
        );
    }
}

#[test]
fn bad_request_line_and_version_are_typed_errors() {
    assert!(matches!(
        parse(b"GARBAGE\r\n\r\n"),
        Err(HttpError::BadRequestLine { .. })
    ));
    assert!(matches!(
        parse(b"GET /v1/power HTTP/1.1 extra\r\n\r\n"),
        Err(HttpError::BadRequestLine { .. })
    ));
    assert!(matches!(
        parse(b"GET /v1/power HTTP/2.0\r\n\r\n"),
        Err(HttpError::BadVersion { .. })
    ));
}

#[test]
fn oversized_header_line_is_bounded() {
    let raw = format!(
        "GET /v1/power HTTP/1.1\r\nX-Big: {}\r\n\r\n",
        "a".repeat(MAX_HEADER_BYTES + 10)
    );
    assert!(matches!(
        parse(raw.as_bytes()),
        Err(HttpError::HeadersTooLarge { .. })
    ));
}

#[test]
fn unbounded_header_count_is_bounded() {
    let mut raw = String::from("GET /v1/power HTTP/1.1\r\n");
    for i in 0..200 {
        raw.push_str(&format!("X-H{i}: v\r\n"));
    }
    raw.push_str("\r\n");
    assert!(matches!(
        parse(raw.as_bytes()),
        Err(HttpError::HeadersTooLarge { .. })
    ));
}

#[test]
fn header_without_colon_is_a_typed_error() {
    assert!(matches!(
        parse(b"GET /v1/power HTTP/1.1\r\nnocolonhere\r\n\r\n"),
        Err(HttpError::BadHeader { .. })
    ));
}

// ---------------------------------------------------------------------
// Routing layer
// ---------------------------------------------------------------------

#[test]
fn unknown_endpoint_is_404() {
    let mut server = shared().lock().expect("server lock");
    let resp = server.handle(&common::request("GET", "/v1/nope", Vec::new()));
    assert_eq!(resp.status, 404);
    assert_eq!(error_code(&resp), "unknown_endpoint");
    // Non-numeric machine id is an unknown endpoint, not a 500.
    let resp = server.handle(&common::request("GET", "/v1/machines/abc", Vec::new()));
    assert_eq!(resp.status, 404);
    assert_eq!(error_code(&resp), "unknown_endpoint");
}

#[test]
fn wrong_method_on_known_endpoint_is_405() {
    let mut server = shared().lock().expect("server lock");
    let resp = server.handle(&common::request("POST", "/v1/power", Vec::new()));
    assert_eq!(resp.status, 405);
    assert_eq!(error_code(&resp), "method_not_allowed");
    let resp = server.handle(&common::request("GET", "/v1/ingest", Vec::new()));
    assert_eq!(resp.status, 405);
}

#[test]
fn malformed_json_is_400() {
    let mut server = shared().lock().expect("server lock");
    for body in [&b"{not json"[..], b"", b"[1,2,3]", b"{\"ticks\": 5}"] {
        let resp = server.handle(&common::request("POST", "/v1/ingest", body.to_vec()));
        assert_eq!(resp.status, 400, "body {:?}", String::from_utf8_lossy(body));
        assert_eq!(error_code(&resp), "malformed_json");
    }
}

#[test]
fn invalid_samples_are_422_and_do_not_advance_the_cursor() {
    let mut server = shared().lock().expect("server lock");
    let t = {
        let resp = server.handle(&common::request("GET", "/v1/healthz", Vec::new()));
        let v: Value = serde_json::from_slice(&resp.body).expect("healthz JSON");
        v.get("t_next").and_then(Value::as_f64).expect("t_next")
    };
    // Wrong row width.
    let body = format!(
        "{{\"ticks\":[{{\"t\":{t},\"machines\":[\
         {{\"machine_id\":0,\"counters\":[1.0]}},\
         {{\"machine_id\":1,\"counters\":[1.0]}},\
         {{\"machine_id\":2,\"counters\":[1.0]}}]}}]}}"
    );
    let resp = server.handle(&common::request("POST", "/v1/ingest", body.into_bytes()));
    assert_eq!(resp.status, 422);
    assert_eq!(error_code(&resp), "invalid_sample");

    // Out-of-range machine id.
    let body = format!(
        "{{\"ticks\":[{{\"t\":{t},\"machines\":[\
         {{\"machine_id\":0,\"counters\":[]}},\
         {{\"machine_id\":1,\"counters\":[]}},\
         {{\"machine_id\":7,\"counters\":[]}}]}}]}}"
    );
    let resp = server.handle(&common::request("POST", "/v1/ingest", body.into_bytes()));
    assert_eq!(resp.status, 422);

    // Cursor unchanged after the rejections.
    let resp = server.handle(&common::request("GET", "/v1/healthz", Vec::new()));
    let v: Value = serde_json::from_slice(&resp.body).expect("healthz JSON");
    assert_eq!(v.get("t_next").and_then(Value::as_f64), Some(t));
}

#[test]
fn out_of_order_and_short_ticks_are_409() {
    let mut server = shared().lock().expect("server lock");
    // A tick far in the future.
    let body = "{\"ticks\":[{\"t\":999999,\"machines\":[]}]}";
    let resp = server.handle(&common::request(
        "POST",
        "/v1/ingest",
        body.as_bytes().to_vec(),
    ));
    assert_eq!(resp.status, 409);
    assert_eq!(error_code(&resp), "out_of_order");
}

#[test]
fn framing_errors_render_as_structured_responses() {
    let mut server = shared().lock().expect("server lock");
    let resp = server.framing_error_response(HttpError::BodyTooLarge {
        declared: 10_000_000,
        limit: MAX_BODY,
    });
    assert_eq!(resp.status, 413);
    assert_eq!(error_code(&resp), "body_too_large");

    let resp = server.framing_error_response(HttpError::HeadersTooLarge { limit: 100 });
    assert_eq!(resp.status, 431);
    assert_eq!(error_code(&resp), "headers_too_large");

    let resp = server.framing_error_response(HttpError::Truncated {
        context: "body".to_string(),
    });
    assert_eq!(resp.status, 400);
    assert_eq!(error_code(&resp), "truncated_request");
}
