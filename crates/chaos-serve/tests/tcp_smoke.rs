//! End-to-end smoke over real TCP sockets: boot a server on an
//! ephemeral port, speak raw HTTP/1.1 to it (keep-alive and close),
//! kill it, restore from its snapshot, and check the continuation is
//! byte-identical. This is the in-repo version of the CI smoke job.

mod common;

use chaos_serve::http::{read_request, DEFAULT_MAX_BODY_BYTES};
use chaos_serve::Server;
use chaos_stats::ExecPolicy;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, PoisonError};

/// Minimal accept loop sharing the bin's framing path. Serves until the
/// listener is dropped.
fn spawn_server(server: Server) -> (std::net::SocketAddr, Arc<Mutex<Server>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let shared = Arc::new(Mutex::new(server));
    let handle = Arc::clone(&shared);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let server = Arc::clone(&handle);
            std::thread::spawn(move || {
                let mut reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut writer = stream;
                loop {
                    match read_request(&mut reader, DEFAULT_MAX_BODY_BYTES) {
                        Ok(None) => return,
                        Ok(Some(req)) => {
                            let resp = server
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .handle(&req);
                            if resp.write_to(&mut writer).is_err() || req.close {
                                return;
                            }
                        }
                        Err(err) => {
                            let resp = server
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .framing_error_response(err);
                            let _ = resp.write_to(&mut writer);
                            return;
                        }
                    }
                }
            });
        }
    });
    (addr, shared)
}

/// One raw HTTP exchange on a fresh connection; returns (status, body).
fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("parse status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, body)
}

fn post_ingest(addr: std::net::SocketAddr, ticks_json: &str) -> (u16, Vec<u8>) {
    roundtrip(
        addr,
        &format!(
            "POST /v1/ingest HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            ticks_json.len(),
            ticks_json
        ),
    )
}

fn ticks_json(ticks: &[chaos_serve::WireTick]) -> String {
    let body = serde_json::json!({
        "ticks": ticks.iter().map(|tick| serde_json::json!({
            "t": tick.t,
            "machines": tick.machines.iter().map(|s| serde_json::json!({
                "machine_id": s.machine_id,
                "counters": s.counters,
                "power_w": s.power_w,
            })).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    });
    serde_json::to_string(&body).expect("encode ticks")
}

#[test]
fn tcp_ingest_query_kill_restore_continuation_is_byte_identical() {
    let ticks = common::ticks(common::small_spec(), 90, 30);
    let json_first = ticks_json(&ticks[..15]);
    let json_rest = ticks_json(&ticks[15..]);

    // Boot over TCP, ingest the first half, snapshot in memory.
    let (addr, shared) = spawn_server(
        Server::new(common::opts(), ExecPolicy::Serial, None, 0).expect("boot server"),
    );
    let (status, body) = post_ingest(addr, &json_first);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

    let (status, health) = roundtrip(
        addr,
        "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&health).contains("\"t_next\":15"));

    let snapshot = shared
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .snapshot_bytes();

    // "Kill": boot a restored replica on a new port; drive both with
    // the identical remainder.
    let restored = Server::restore(common::opts(), ExecPolicy::Serial, None, 0, &snapshot)
        .expect("restore server");
    let (addr_b, _shared_b) = spawn_server(restored);

    let (status_a, body_a) = post_ingest(addr, &json_rest);
    let (status_b, body_b) = post_ingest(addr_b, &json_rest);
    assert_eq!(status_a, 200);
    assert_eq!(status_b, 200);
    assert_eq!(
        body_a, body_b,
        "restored continuation diverged from uninterrupted server"
    );

    for path in ["/v1/power", "/v1/machines", "/v1/stats"] {
        let req = format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n");
        let a = roundtrip(addr, &req);
        let b = roundtrip(addr_b, &req);
        assert_eq!(a, b, "divergence at {path}");
    }
}

#[test]
fn tcp_keepalive_serves_multiple_requests_on_one_connection() {
    let (addr, _shared) = spawn_server(common::server());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for _ in 0..3 {
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
            .expect("send");
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status");
        assert!(status_line.starts_with("HTTP/1.1 200"), "{status_line}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some((name, value)) = line.trim_end().split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
    }
}

#[test]
fn tcp_malformed_request_gets_an_error_response_then_close() {
    let (addr, _shared) = spawn_server(common::server());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"NONSENSE\r\n\r\n").expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read until close");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    assert!(text.contains("malformed_request"), "{text}");
}
