//! Fleet churn: membership events and seeded churn-scenario generation.
//!
//! The paper's clusters are static five-machine testbeds, but the
//! deployment story CHAOS argues for (an agent per machine feeding a
//! live model) runs on fleets whose membership changes: machines are
//! drained and re-imaged, replacements arrive with different silicon,
//! capacity is added mid-run. A [`MembershipEvent`] describes one such
//! transition at a specific second of a run; a [`ChurnPlan`] generates a
//! reproducible schedule of them for a cluster, the same way
//! `chaos_counters::FaultPlan` generates reproducible sample faults.
//!
//! Event semantics (enforced by the streaming engine):
//!
//! * **Join** — the machine starts (or resumes) contributing at `t`.
//!   A machine whose *first* event is a join starts the run inactive.
//!   Joins may name a donor machine whose model coefficients warm-start
//!   the joiner.
//! * **Leave** — the machine stops contributing at `t`; its trace data
//!   from `t` on is ignored.
//! * **Replace** — the machine's slot keeps running but the hardware
//!   behind it changed at `t`: learned per-machine state is reset and
//!   optionally warm-started from a donor.
//!
//! Generation is deterministic: the same plan and cluster shape yield
//! the same event schedule, so churn scenarios replay bit-identically.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What kind of membership transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipKind {
    /// The machine starts (or resumes) contributing, optionally
    /// warm-started from `donor`'s model coefficients.
    Join {
        /// Machine whose coefficients seed the joiner, if any.
        donor: Option<usize>,
    },
    /// The machine stops contributing.
    Leave,
    /// The slot keeps running but the hardware changed: per-machine
    /// learned state resets, optionally warm-started from `donor`.
    Replace {
        /// Machine whose coefficients seed the replacement, if any.
        donor: Option<usize>,
    },
}

/// One membership transition of one machine at one second of a run.
///
/// ```
/// use chaos_sim::{MembershipEvent, MembershipKind};
///
/// // Machine 2 leaves at second 30; machine 3 arrives at second 45,
/// // warm-started from machine 0's model coefficients.
/// let leave = MembershipEvent::leave(30, 2);
/// let join = MembershipEvent::join(45, 3, Some(0));
/// assert_eq!(leave.kind, MembershipKind::Leave);
/// assert_eq!(join.kind, MembershipKind::Join { donor: Some(0) });
///
/// // Attached to a `RunTrace` (sorted by `t`), the streaming engine
/// // applies each event before processing that second's samples.
/// assert!(leave.t < join.t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipEvent {
    /// Second the transition takes effect (before that second's sample
    /// is processed).
    pub t: usize,
    /// Machine the transition applies to.
    pub machine_id: usize,
    /// The transition.
    pub kind: MembershipKind,
}

impl MembershipEvent {
    /// A join at `t`, warm-started from `donor` when given.
    pub fn join(t: usize, machine_id: usize, donor: Option<usize>) -> Self {
        MembershipEvent {
            t,
            machine_id,
            kind: MembershipKind::Join { donor },
        }
    }

    /// A leave at `t`.
    pub fn leave(t: usize, machine_id: usize) -> Self {
        MembershipEvent {
            t,
            machine_id,
            kind: MembershipKind::Leave,
        }
    }

    /// A replace at `t`, warm-started from `donor` when given.
    pub fn replace(t: usize, machine_id: usize, donor: Option<usize>) -> Self {
        MembershipEvent {
            t,
            machine_id,
            kind: MembershipKind::Replace { donor },
        }
    }
}

/// A seeded, reproducible churn scenario: which machines leave, rejoin,
/// arrive late, or get replaced over the course of a run.
///
/// Machine 0 is never churned — every scenario keeps at least one
/// machine continuously active so cluster composition (Eq. 5) and donor
/// warm starts always have an anchor. The default plan (any seed, all
/// counts zero) generates no events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Seed for the event-schedule RNG stream.
    pub seed: u64,
    /// Number of leave-then-rejoin cycles to schedule.
    pub leave_rejoin: usize,
    /// Number of machines that arrive mid-run (first event is a join).
    pub late_joins: usize,
    /// Number of in-place hardware replacements.
    pub replaces: usize,
    /// Minimum seconds between consecutive events on one machine.
    pub min_gap_s: usize,
}

impl ChurnPlan {
    /// An identity plan (no events) with the given seed.
    pub fn new(seed: u64) -> Self {
        ChurnPlan {
            seed,
            leave_rejoin: 0,
            late_joins: 0,
            replaces: 0,
            min_gap_s: 10,
        }
    }

    /// Returns a copy scheduling `n` leave-then-rejoin cycles.
    pub fn with_leave_rejoin(mut self, n: usize) -> Self {
        self.leave_rejoin = n;
        self
    }

    /// Returns a copy scheduling `n` mid-run arrivals.
    pub fn with_late_joins(mut self, n: usize) -> Self {
        self.late_joins = n;
        self
    }

    /// Returns a copy scheduling `n` in-place replacements.
    pub fn with_replaces(mut self, n: usize) -> Self {
        self.replaces = n;
        self
    }

    /// Returns a copy with a different per-machine event spacing floor.
    pub fn with_min_gap_s(mut self, gap: usize) -> Self {
        self.min_gap_s = gap;
        self
    }

    /// Whether this plan generates no events.
    pub fn is_identity(&self) -> bool {
        self.leave_rejoin == 0 && self.late_joins == 0 && self.replaces == 0
    }

    /// Generates the event schedule for a `machines`-wide cluster over a
    /// `seconds`-long run: sorted by time, machine 0 untouched, at most
    /// one scenario per machine, donors always machine 0.
    ///
    /// Deterministic: the same plan and shape produce the same schedule.
    /// Degenerate shapes (fewer than two machines, or runs too short for
    /// the configured gap) yield an empty schedule rather than an error.
    pub fn generate(&self, machines: usize, seconds: usize) -> Vec<MembershipEvent> {
        let gap = self.min_gap_s.max(1);
        // Events need room: earliest at gap, latest one gap before the
        // end, and leave/rejoin needs a further gap between its pair.
        if machines < 2 || self.is_identity() || seconds < 3 * gap + 2 {
            return Vec::new();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ (machines as u64).rotate_left(24)
                ^ (seconds as u64),
        );
        let mut events = Vec::new();
        // Each churned machine hosts exactly one scenario; machine 0 is
        // the permanent anchor and default donor.
        let mut candidates: Vec<usize> = (1..machines).collect();
        let scenarios = self
            .leave_rejoin
            .saturating_add(self.late_joins)
            .saturating_add(self.replaces)
            .min(candidates.len());
        let mut kinds = Vec::with_capacity(scenarios);
        for i in 0..scenarios {
            if i < self.leave_rejoin {
                kinds.push(0u8);
            } else if i < self.leave_rejoin + self.late_joins {
                kinds.push(1);
            } else {
                kinds.push(2);
            }
        }
        for kind in kinds {
            let slot = rng.gen_range(0..candidates.len());
            let machine = candidates.swap_remove(slot);
            match kind {
                0 => {
                    let leave_at = rng.gen_range(gap..seconds - 2 * gap);
                    let rejoin_at = rng.gen_range(leave_at + gap..seconds - gap);
                    events.push(MembershipEvent::leave(leave_at, machine));
                    events.push(MembershipEvent::join(rejoin_at, machine, Some(0)));
                }
                1 => {
                    let join_at = rng.gen_range(gap..seconds - gap);
                    events.push(MembershipEvent::join(join_at, machine, Some(0)));
                }
                _ => {
                    let replace_at = rng.gen_range(gap..seconds - gap);
                    events.push(MembershipEvent::replace(replace_at, machine, Some(0)));
                }
            }
        }
        // Stable sort by time keeps per-machine event order (a leave
        // always precedes its rejoin) and makes same-second ordering
        // deterministic by generation order.
        events.sort_by_key(|e| e.t);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_plan_generates_nothing() {
        assert!(ChurnPlan::new(7).generate(5, 200).is_empty());
        assert!(ChurnPlan::new(7).is_identity());
    }

    #[test]
    fn generation_is_deterministic() {
        let plan = ChurnPlan::new(42)
            .with_leave_rejoin(1)
            .with_late_joins(1)
            .with_replaces(1);
        let a = plan.generate(6, 300);
        let b = plan.generate(6, 300);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn machine_zero_is_never_churned_and_events_are_sorted() {
        let plan = ChurnPlan::new(3)
            .with_leave_rejoin(2)
            .with_late_joins(2)
            .with_replaces(2);
        let events = plan.generate(8, 400);
        assert!(events.iter().all(|e| e.machine_id != 0));
        assert!(events.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(events.iter().all(|e| e.t < 400));
    }

    #[test]
    fn leave_precedes_rejoin_per_machine() {
        let plan = ChurnPlan::new(11).with_leave_rejoin(3);
        let events = plan.generate(6, 500);
        for m in 1..6 {
            let mine: Vec<_> = events.iter().filter(|e| e.machine_id == m).collect();
            if mine.len() == 2 {
                assert_eq!(mine[0].kind, MembershipKind::Leave);
                assert!(matches!(mine[1].kind, MembershipKind::Join { .. }));
                assert!(mine[0].t < mine[1].t);
            }
        }
    }

    #[test]
    fn degenerate_shapes_yield_no_events() {
        let plan = ChurnPlan::new(5).with_replaces(2);
        assert!(plan.generate(1, 300).is_empty(), "single machine");
        assert!(plan.generate(5, 8).is_empty(), "run shorter than gaps");
    }

    #[test]
    fn scenario_count_caps_at_available_machines() {
        let plan = ChurnPlan::new(9).with_late_joins(50);
        let events = plan.generate(4, 300);
        // Only machines 1..4 are available, one scenario each.
        assert!(events.len() <= 3);
        let mut ids: Vec<_> = events.iter().map(|e| e.machine_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), events.len(), "one event per late-joiner");
    }

    #[test]
    fn serde_round_trip() {
        let plan = ChurnPlan::new(13).with_leave_rejoin(1);
        let events = plan.generate(4, 200);
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<MembershipEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(events, back);
    }
}
