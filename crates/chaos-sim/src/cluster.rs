//! Homogeneous and heterogeneous clusters of simulated machines.

use crate::machine::Machine;
use crate::platform::Platform;
use crate::state::MachineState;
use crate::variation::MachineVariation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A group of machines evaluated together, as in the paper's six
/// homogeneous 5-machine clusters and the 10-machine heterogeneous
/// Core2+Opteron cluster.
///
/// # Example
///
/// ```
/// use chaos_sim::{Cluster, Platform};
///
/// let hetero = Cluster::heterogeneous(&[(Platform::Core2, 5), (Platform::Opteron, 5)], 7);
/// assert_eq!(hetero.len(), 10);
/// assert!(!hetero.is_homogeneous());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    machines: Vec<Machine>,
    seed: u64,
}

impl Cluster {
    /// Builds a homogeneous cluster of `n` machines of one platform, with
    /// per-machine variation drawn deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn homogeneous(platform: Platform, n: usize, seed: u64) -> Self {
        Cluster::heterogeneous(&[(platform, n)], seed)
    }

    /// Builds a heterogeneous cluster from `(platform, count)` groups.
    ///
    /// # Panics
    ///
    /// Panics if the total machine count is zero.
    pub fn heterogeneous(groups: &[(Platform, usize)], seed: u64) -> Self {
        let total: usize = groups.iter().map(|(_, n)| n).sum();
        assert!(total > 0, "cluster must contain at least one machine");
        let mut machines = Vec::with_capacity(total);
        let mut id = 0;
        for &(platform, n) in groups {
            for _ in 0..n {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let variation = MachineVariation::sample(&mut rng);
                machines.push(Machine::new(platform.spec(), id, variation));
                id += 1;
            }
        }
        Cluster { machines, seed }
    }

    /// The machines, in id order.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the cluster has no machines (never after construction).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The seed the cluster's variations were drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether every machine shares one platform.
    pub fn is_homogeneous(&self) -> bool {
        self.machines
            .windows(2)
            // chaos-lint: allow(R4) — windows(2) yields exactly two
            // elements per window.
            .all(|w| w[0].spec().platform == w[1].spec().platform)
    }

    /// Distinct platforms present, in first-appearance order.
    pub fn platforms(&self) -> Vec<Platform> {
        let mut out: Vec<Platform> = Vec::new();
        for m in &self.machines {
            if !out.contains(&m.spec().platform) {
                out.push(m.spec().platform);
            }
        }
        out
    }

    /// Ground-truth cluster power: the sum of every machine's power for
    /// its own state (the paper's Eq. 5, applied to the truth rather than
    /// a model).
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != self.len()`.
    pub fn true_power(&self, states: &[MachineState]) -> f64 {
        assert_eq!(
            states.len(),
            self.machines.len(),
            "one state per machine required"
        );
        self.machines
            .iter()
            .zip(states)
            .map(|(m, s)| m.true_power(s))
            .sum()
    }

    /// Sum of the machines' calibrated idle powers.
    pub fn idle_power(&self) -> f64 {
        self.machines.iter().map(Machine::idle_power).sum()
    }

    /// Sum of the machines' calibrated maximum powers.
    pub fn max_power(&self) -> f64 {
        self.machines.iter().map(Machine::max_power).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ResourceDemand;
    use rand::SeedableRng;

    #[test]
    fn homogeneous_cluster_has_varied_machines() {
        let c = Cluster::homogeneous(Platform::Core2, 5, 42);
        assert_eq!(c.len(), 5);
        assert!(c.is_homogeneous());
        assert_eq!(c.platforms(), vec![Platform::Core2]);
        // Variation: no two machines have identical idle power.
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(
                    c.machines()[i].idle_power(),
                    c.machines()[j].idle_power(),
                    "machines {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn construction_is_deterministic_by_seed() {
        let a = Cluster::homogeneous(Platform::Athlon, 3, 9);
        let b = Cluster::homogeneous(Platform::Athlon, 3, 9);
        for (ma, mb) in a.machines().iter().zip(b.machines()) {
            assert_eq!(ma.idle_power(), mb.idle_power());
        }
        let c = Cluster::homogeneous(Platform::Athlon, 3, 10);
        assert_ne!(a.machines()[0].idle_power(), c.machines()[0].idle_power());
    }

    #[test]
    fn heterogeneous_cluster_mixes_platforms() {
        let c = Cluster::heterogeneous(&[(Platform::Core2, 5), (Platform::Opteron, 5)], 1);
        assert_eq!(c.len(), 10);
        assert!(!c.is_homogeneous());
        assert_eq!(c.platforms(), vec![Platform::Core2, Platform::Opteron]);
        assert_eq!(c.machines()[9].id(), 9);
    }

    #[test]
    fn cluster_power_is_sum_of_machine_powers() {
        let c = Cluster::homogeneous(Platform::Atom, 4, 5);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let states: Vec<_> = c
            .machines()
            .iter()
            .map(|m| m.apply_demand(&ResourceDemand::cpu_only(1.0), &mut rng))
            .collect();
        let total = c.true_power(&states);
        let manual: f64 = c
            .machines()
            .iter()
            .zip(&states)
            .map(|(m, s)| m.true_power(s))
            .sum();
        assert_eq!(total, manual);
        assert!(total > c.idle_power());
        assert!(total < c.max_power());
    }

    #[test]
    fn core2_cluster_range_matches_figure_1() {
        // Figure 1: 5 Core 2 Duo machines, cluster power 120–220 W.
        let c = Cluster::homogeneous(Platform::Core2, 5, 0);
        assert!(
            (110.0..135.0).contains(&c.idle_power()),
            "{}",
            c.idle_power()
        );
        assert!((210.0..245.0).contains(&c.max_power()), "{}", c.max_power());
    }

    #[test]
    #[should_panic(expected = "one state per machine")]
    fn true_power_rejects_wrong_state_count() {
        let c = Cluster::homogeneous(Platform::Atom, 2, 0);
        c.true_power(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_cluster_rejected() {
        Cluster::heterogeneous(&[], 0);
    }
}
