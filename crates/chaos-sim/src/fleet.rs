//! Fleet specifications: the deployment-shaped description of a
//! homogeneous machine fleet.
//!
//! `chaos-serve` and its load generator both need to agree on *which*
//! fleet a server instance models — the platform, the machine count,
//! and the seed that calibrates per-machine variation. [`FleetSpec`]
//! is that agreement as one serializable value: the server echoes it
//! from `GET /v1/config`, the load generator derives its synthetic
//! traces from it, and both sides construct the identical [`Cluster`]
//! from it deterministically.

use crate::cluster::Cluster;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// A homogeneous fleet of `machines` instances of `platform`, with
/// per-machine variation drawn deterministically from `seed`.
///
/// ```
/// use chaos_sim::{FleetSpec, Platform};
///
/// let spec = FleetSpec::new(Platform::Core2, 5, 42);
/// let a = spec.cluster();
/// let b = spec.cluster();
/// // Same spec, same fleet — bit-identical calibration.
/// assert_eq!(a.idle_power().to_bits(), b.idle_power().to_bits());
/// assert_eq!(a.machines().len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Hardware platform every fleet member runs on.
    pub platform: Platform,
    /// Number of machines in the fleet.
    pub machines: usize,
    /// Seed for the per-machine variation stream.
    pub seed: u64,
}

impl FleetSpec {
    /// A fleet of `machines` instances of `platform` calibrated from
    /// `seed`.
    pub fn new(platform: Platform, machines: usize, seed: u64) -> Self {
        FleetSpec {
            platform,
            machines,
            seed,
        }
    }

    /// Materializes the fleet as a [`Cluster`] — the same spec always
    /// yields the same calibration.
    pub fn cluster(&self) -> Cluster {
        Cluster::homogeneous(self.platform, self.machines, self.seed)
    }

    /// Average per-machine idle power, watts — the `power_idle_w` the
    /// streaming engine's DRE normalization (Eq. 6) takes per stream.
    pub fn per_machine_idle_w(&self, cluster: &Cluster) -> f64 {
        cluster.idle_power() / self.machines.max(1) as f64
    }

    /// Average per-machine maximum power, watts.
    pub fn per_machine_max_w(&self, cluster: &Cluster) -> f64 {
        cluster.max_power() / self.machines.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_serde() {
        let spec = FleetSpec::new(Platform::XeonSas, 500, 7);
        let json = serde_json::to_string(&spec).unwrap();
        let back: FleetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn per_machine_power_sums_back_to_cluster_power() {
        let spec = FleetSpec::new(Platform::Atom, 4, 11);
        let cluster = spec.cluster();
        let idle = spec.per_machine_idle_w(&cluster) * 4.0;
        assert!((idle - cluster.idle_power()).abs() < 1e-9);
        assert!(spec.per_machine_max_w(&cluster) > spec.per_machine_idle_w(&cluster));
    }
}
