//! Machine and cluster simulator: the hardware substrate for the CHAOS
//! reproduction.
//!
//! The CHAOS paper measures wall power on six physical 5-machine clusters
//! (Table I) — embedded Atom, mobile Core 2 Duo, desktop Athlon, and three
//! dual-socket servers — each machine individually instrumented with a
//! WattsUp? Pro power meter. This crate replaces that testbed with a
//! parametric simulation that reproduces the *behaviors the paper's
//! findings depend on*:
//!
//! * **Nonlinear power vs. utilization** — per-core DVFS with
//!   voltage-squared dynamic power, C1 sleep on the server parts, and a
//!   power-supply efficiency curve, so a linear model genuinely cannot
//!   cover the full dynamic range (the paper's Figure 5 argument).
//! * **Hidden frequency states** — an ondemand-style governor picks
//!   P-states from demanded utilization; mobile/desktop parts share one
//!   chip-wide frequency (the paper reports 99.8% agreement), servers
//!   drift per-core 12–20% of the time, and the Atom has no DVFS at all.
//! * **Machine-to-machine variation** — up to ~10% per-machine power
//!   variation at idle and load (the paper's motivation for pooling in
//!   feature selection), sampled deterministically from a seed.
//! * **Table I power ranges** — each platform is calibrated so that its
//!   simulated idle/max wall power lands in the paper's reported range
//!   (e.g. Atom 22–26 W, Xeon SAS 260–380 W).
//!
//! The key types are [`Platform`] (the six platforms), [`Machine`]
//! (calibrated per-machine power model + DVFS governor), [`Cluster`]
//! (homogeneous or heterogeneous groups), [`ResourceDemand`] (what a
//! workload asks of a machine in one second), [`MachineState`] (the hidden
//! hardware state that second), and [`PowerMeter`] (a WattsUp-class meter
//! with 1.5% error).
//!
//! # Example
//!
//! ```
//! use chaos_sim::{Cluster, Platform, ResourceDemand};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let cluster = Cluster::homogeneous(Platform::Core2, 5, 42);
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let demand = ResourceDemand::cpu_only(1.6); // 1.6 of 2 cores busy
//! let machine = &cluster.machines()[0];
//! let state = machine.apply_demand(&demand, &mut rng);
//! let watts = machine.true_power(&state);
//! assert!(watts > machine.idle_power());
//! assert!(watts <= machine.max_power() * 1.001);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod churn;
pub mod cluster;
pub mod fleet;
pub mod machine;
pub mod meter;
pub mod platform;
pub mod power;
pub mod state;
pub mod thermal;
pub mod variation;

pub use churn::{ChurnPlan, MembershipEvent, MembershipKind};
pub use cluster::Cluster;
pub use fleet::FleetSpec;
pub use machine::Machine;
pub use meter::PowerMeter;
pub use platform::{
    DiskKind, DiskSpec, PState, ParsePlatformError, Platform, PlatformSpec, SystemClass,
};
pub use state::{CoreState, MachineState, ResourceDemand};
pub use thermal::ThermalModel;
pub use variation::MachineVariation;
